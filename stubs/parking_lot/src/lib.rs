//! Offline stand-in for `parking_lot`: the same guard-returning lock API
//! over `std::sync` primitives (poisoning is swallowed, matching
//! parking_lot's no-poisoning semantics).

use std::sync;

/// Mutual exclusion with non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume and return the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after a panicking holder");
    }
}
