//! Offline stand-in for `serde_json`.
//!
//! A real (if small) JSON implementation over the stub `serde`'s concrete
//! `Content` tree: text parser, compact and pretty printers, a [`Value`]
//! type, and a simplified `json!` macro covering flat object / array /
//! expression forms. Round-trips of the workspace's derived types work;
//! exotic serde features do not exist here.

use serde::de::Deserialize;
use serde::__private::{from_content, to_content, Content};
use std::fmt;

/// Errors from parsing or printing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ Value

/// A JSON value (map entries keep insertion order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
}

impl Value {
    fn from_content(c: Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::I64(v) => Value::Number(Number::I64(v)),
            Content::U64(v) => Value::Number(Number::U64(v)),
            Content::F64(v) => Value::Number(Number::F64(v)),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries.into_iter().map(|(k, v)| (k, Value::from_content(v))).collect(),
            ),
        }
    }

    fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Number(Number::I64(v)) => Content::I64(v),
            Value::Number(Number::U64(v)) => Content::U64(v),
            Value::Number(Number::F64(v)) => Content::F64(v),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(entries) => Content::Map(
                entries.into_iter().map(|(k, v)| (k, v.into_content())).collect(),
            ),
        }
    }

    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, s: S) -> std::result::Result<S::Ok, S::Error> {
        s.serialize_content(self.clone().into_content())
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(
        d: D,
    ) -> std::result::Result<Self, D::Error> {
        d.take_content().map(Value::from_content)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(&self.clone().into_content(), None, 0))
    }
}

/// Convert any serializable value into a [`Value`] (macro support).
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(Value::from_content(to_content(&value)))
}

// ---------------------------------------------------------------- printer

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(v: f64) -> String {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string() // serde_json representation of non-finite floats
    }
}

/// Render a content tree; `indent = Some(step)` selects pretty printing.
fn render(c: &Content, indent: Option<usize>, depth: usize) -> String {
    let mut out = String::new();
    write_content(&mut out, c, indent, depth);
    out
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&render_f64(*v)),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(step * depth));
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(render(&to_content(value), None, 0))
}

/// Serialize to pretty (2-space indented) JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(render(&to_content(value), Some(2), 0))
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error { msg: format!("{msg} at byte {}", self.pos) })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null").map(|_| Content::Null),
            Some(b't') => self.eat_lit("true").map(|_| Content::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(Error { msg: "truncated \\u escape".into() })?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error { msg: "bad \\u escape".into() })?,
                                16,
                            )
                            .map_err(|_| Error { msg: "bad \\u escape".into() })?;
                            // Surrogate pairs are not reconstructed; BMP only.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance one UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error { msg: "invalid UTF-8".into() })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error { msg: format!("bad number `{text}`") })
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error { msg: format!("bad number `{text}`") })
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error { msg: format!("bad number `{text}`") })
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Parse JSON text into any deserializable type.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    from_content(content)
}

// ------------------------------------------------------------------ macro

/// Simplified `json!`: objects with literal keys and expression values,
/// arrays of such, `null`, and any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val).expect("json! value")) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value")
    };
}
