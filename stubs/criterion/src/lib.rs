//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a lightweight
//! timer: a short calibration pass sizes the batch, then the best of a
//! few batches is reported as ns/iter. No statistics, plots, or CLI
//! parsing; `cargo bench` stays fast and dependency-free.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark (calibration + measurement).
const BUDGET: Duration = Duration::from_millis(200);
/// Measurement batches; the minimum is reported.
const BATCHES: u32 = 5;

/// Measures one closure.
pub struct Bencher {
    /// Best observed per-iteration time, in nanoseconds.
    best_ns: f64,
}

impl Bencher {
    /// Time `f`, keeping the fastest batch average.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // calibration: how many iterations fit in a slice of the budget?
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = (BUDGET.as_nanos() / (BATCHES as u128 + 1)).max(1);
        let iters = ((per_batch / once.as_nanos().max(1)) as u64).clamp(1, 1_000_000);

        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns = best;
    }
}

/// Identifies a parameterised benchmark (`group/function/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

/// Anything usable as a benchmark id.
pub trait IntoBenchmarkId {
    /// Render to the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}
impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { best_ns: f64::NAN };
    f(&mut b);
    if b.best_ns.is_finite() {
        println!("{label:<60} time: {}", fmt_ns(b.best_ns));
    } else {
        println!("{label:<60} time: (no measurement)");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b));
        self
    }

    /// Benchmark a closure with a borrowed input under this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b, input));
        self
    }

    /// End the group (no-op; prints happen eagerly).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Benchmark a closure at top level.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), |b| f(b));
        self
    }
}

/// Prevent the optimiser from deleting a value (compat re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
