//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a minimal `serde` with the same *public surface*
//! the codebase uses: the `Serialize` / `Deserialize` traits, the derive
//! macros (via the sibling `serde_derive` stub), and a `Serializer` /
//! `Deserializer` pair. Instead of serde's visitor-based data model, both
//! sides speak a small concrete [`__private::Content`] tree, which is
//! enough for `serde_json`-style round-trips of the types this workspace
//! derives.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization half of the API.
pub mod ser {
    use crate::__private::Content;

    /// A type that can serialize itself through any [`Serializer`].
    pub trait Serialize {
        /// Feed `self` to the serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// Sink for serialization. The stub collapses serde's 30-method data
    /// model into one content-tree entry point plus the convenience
    /// methods this workspace's hand-written impls call.
    pub trait Serializer: Sized {
        /// Success value.
        type Ok;
        /// Failure value.
        type Error;

        /// Accept a whole content tree.
        fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

        /// Serialize a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::Str(v.to_owned()))
        }

        /// Serialize a bool.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::Bool(v))
        }

        /// Serialize a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::I64(v))
        }

        /// Serialize an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::U64(v))
        }

        /// Serialize a float.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::F64(v))
        }

        /// Serialize a unit value.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::Null)
        }
    }
}

/// Deserialization half of the API.
pub mod de {
    use crate::__private::Content;
    use std::fmt;

    /// Errors a deserializer can construct (mirrors `serde::de::Error`).
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Build an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A type that can deserialize itself from any [`Deserializer`].
    pub trait Deserialize<'de>: Sized {
        /// Read `Self` out of the deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// Source of deserialization. The stub hands out a whole content tree
    /// instead of driving a visitor.
    pub trait Deserializer<'de>: Sized {
        /// Failure value.
        type Error: Error;

        /// Surrender the input as a content tree.
        fn take_content(self) -> Result<Content, Self::Error>;
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

/// Support machinery shared with the derive macro and `serde_json`.
/// Public because generated code references it; not a stable API.
pub mod __private {
    use crate::de::{self, Deserialize, Deserializer};
    use crate::ser::{Serialize, Serializer};
    use std::collections::{BTreeMap, HashMap};
    use std::marker::PhantomData;

    /// The stub's concrete data model: a JSON-shaped tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Content {
        /// Absent / unit.
        Null,
        /// Boolean.
        Bool(bool),
        /// Signed integer.
        I64(i64),
        /// Unsigned integer.
        U64(u64),
        /// Floating point.
        F64(f64),
        /// String.
        Str(String),
        /// Ordered sequence.
        Seq(Vec<Content>),
        /// Ordered key/value map (insertion order preserved).
        Map(Vec<(String, Content)>),
    }

    /// Error that cannot happen: content collection is infallible.
    #[derive(Debug)]
    pub enum Never {}

    impl std::fmt::Display for Never {
        fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match *self {}
        }
    }

    impl de::Error for Never {
        fn custom<T: std::fmt::Display>(_msg: T) -> Self {
            unreachable!("content collection is infallible")
        }
    }

    struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = Never;
        fn serialize_content(self, content: Content) -> Result<Content, Never> {
            Ok(content)
        }
    }

    /// Collect any `Serialize` value into a content tree.
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
        match value.serialize(ContentSerializer) {
            Ok(content) => content,
            Err(never) => match never {},
        }
    }

    /// A deserializer that replays a content tree, with a caller-chosen
    /// error type so derived code can thread through `D::Error`.
    pub struct ContentDeserializer<E> {
        content: Content,
        marker: PhantomData<E>,
    }

    impl<E> ContentDeserializer<E> {
        /// Wrap a content tree.
        pub fn new(content: Content) -> Self {
            ContentDeserializer { content, marker: PhantomData }
        }
    }

    impl<'de, E: de::Error> Deserializer<'de> for ContentDeserializer<E> {
        type Error = E;
        fn take_content(self) -> Result<Content, E> {
            Ok(self.content)
        }
    }

    /// Deserialize a `T` out of a content tree.
    pub fn from_content<'de, T: Deserialize<'de>, E: de::Error>(
        content: Content,
    ) -> Result<T, E> {
        T::deserialize(ContentDeserializer::<E>::new(content))
    }

    /// Remove `key` from a content map and deserialize it; error if absent.
    pub fn field<'de, T: Deserialize<'de>, E: de::Error>(
        map: &mut Vec<(String, Content)>,
        key: &str,
    ) -> Result<T, E> {
        match map.iter().position(|(k, _)| k == key) {
            Some(i) => from_content(map.remove(i).1),
            None => Err(E::custom(format_args!("missing field `{key}`"))),
        }
    }

    /// Remove `key` if present and deserialize it; `None` when absent.
    pub fn field_opt<'de, T: Deserialize<'de>, E: de::Error>(
        map: &mut Vec<(String, Content)>,
        key: &str,
    ) -> Result<Option<T>, E> {
        match map.iter().position(|(k, _)| k == key) {
            Some(i) => from_content(map.remove(i).1).map(Some),
            None => Ok(None),
        }
    }

    /// Expect a map (derived struct deserialization entry point).
    pub fn expect_map<E: de::Error>(content: Content) -> Result<Vec<(String, Content)>, E> {
        match content {
            Content::Map(m) => Ok(m),
            other => Err(E::custom(format_args!("expected map, found {other:?}"))),
        }
    }

    // ---- Serialize impls for std types --------------------------------

    macro_rules! ser_int {
        ($($t:ty => $variant:ident as $wide:ty),* $(,)?) => {$(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                    s.serialize_content(Content::$variant(*self as $wide))
                }
            }
        )*};
    }
    ser_int! {
        i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
        isize => I64 as i64,
        u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
        usize => U64 as u64,
    }

    impl Serialize for f32 {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_content(Content::F64(*self as f64))
        }
    }
    impl Serialize for f64 {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_content(Content::F64(*self))
        }
    }
    impl Serialize for bool {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_content(Content::Bool(*self))
        }
    }
    impl Serialize for str {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(self)
        }
    }
    impl Serialize for String {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(self)
        }
    }
    impl Serialize for char {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(&self.to_string())
        }
    }
    impl Serialize for () {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_unit()
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }
    impl<T: Serialize> Serialize for Box<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }
    impl<T: Serialize> Serialize for Option<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            match self {
                Some(v) => v.serialize(s),
                None => s.serialize_content(Content::Null),
            }
        }
    }
    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(s)
        }
    }
    impl<T: Serialize> Serialize for [T] {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
        }
    }
    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(s)
        }
    }
    impl<A: Serialize, B: Serialize> Serialize for (A, B) {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_content(Content::Seq(vec![to_content(&self.0), to_content(&self.1)]))
        }
    }
    /// Render a key's content as the string JSON requires of map keys.
    fn key_string(content: Content) -> String {
        match content {
            Content::Str(s) => s,
            Content::I64(v) => v.to_string(),
            Content::U64(v) => v.to_string(),
            Content::F64(v) => v.to_string(),
            Content::Bool(v) => v.to_string(),
            other => panic!("map key does not serialize to a string: {other:?}"),
        }
    }

    impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_content(Content::Map(
                self.iter().map(|(k, v)| (key_string(to_content(k)), to_content(v))).collect(),
            ))
        }
    }
    impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            let mut entries: Vec<(String, Content)> =
                self.iter().map(|(k, v)| (key_string(to_content(k)), to_content(v))).collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            s.serialize_content(Content::Map(entries))
        }
    }

    // ---- Deserialize impls for std types ------------------------------

    fn int_of<E: de::Error>(content: Content, what: &str) -> Result<i128, E> {
        match content {
            Content::I64(v) => Ok(v as i128),
            Content::U64(v) => Ok(v as i128),
            Content::F64(v) if v.fract() == 0.0 => Ok(v as i128),
            other => Err(E::custom(format_args!("expected {what}, found {other:?}"))),
        }
    }

    macro_rules! de_int {
        ($($t:ty),* $(,)?) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                    let v = int_of::<D::Error>(d.take_content()?, stringify!($t))?;
                    <$t>::try_from(v).map_err(|_| {
                        de::Error::custom(format_args!("integer out of range for {}", stringify!($t)))
                    })
                }
            }
        )*};
    }
    de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl<'de> Deserialize<'de> for f64 {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.take_content()? {
                Content::F64(v) => Ok(v),
                Content::I64(v) => Ok(v as f64),
                Content::U64(v) => Ok(v as f64),
                other => Err(de::Error::custom(format_args!("expected f64, found {other:?}"))),
            }
        }
    }
    impl<'de> Deserialize<'de> for f32 {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            f64::deserialize(d).map(|v| v as f32)
        }
    }
    impl<'de> Deserialize<'de> for bool {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.take_content()? {
                Content::Bool(v) => Ok(v),
                other => Err(de::Error::custom(format_args!("expected bool, found {other:?}"))),
            }
        }
    }
    impl<'de> Deserialize<'de> for String {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.take_content()? {
                Content::Str(v) => Ok(v),
                other => Err(de::Error::custom(format_args!("expected string, found {other:?}"))),
            }
        }
    }
    impl<'de> Deserialize<'de> for () {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            d.take_content().map(|_| ())
        }
    }
    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.take_content()? {
                Content::Null => Ok(None),
                other => from_content(other).map(Some),
            }
        }
    }
    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            T::deserialize(d).map(Box::new)
        }
    }
    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.take_content()? {
                Content::Seq(items) => items.into_iter().map(from_content).collect(),
                other => Err(de::Error::custom(format_args!("expected sequence, found {other:?}"))),
            }
        }
    }
    impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let items: Vec<T> = Vec::deserialize(d)?;
            let n = items.len();
            <[T; N]>::try_from(items).map_err(|_| {
                de::Error::custom(format_args!("expected array of {N} elements, found {n}"))
            })
        }
    }
    impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.take_content()? {
                Content::Seq(items) if items.len() == 2 => {
                    let mut it = items.into_iter();
                    Ok((from_content(it.next().unwrap())?, from_content(it.next().unwrap())?))
                }
                other => Err(de::Error::custom(format_args!("expected pair, found {other:?}"))),
            }
        }
    }
    impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
        for BTreeMap<K, V>
    {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.take_content()? {
                Content::Map(entries) => entries
                    .into_iter()
                    .map(|(k, v)| Ok((from_content(Content::Str(k))?, from_content(v)?)))
                    .collect(),
                other => Err(de::Error::custom(format_args!("expected map, found {other:?}"))),
            }
        }
    }
    impl<'de, K: Deserialize<'de> + Eq + std::hash::Hash, V: Deserialize<'de>> Deserialize<'de>
        for HashMap<K, V>
    {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match d.take_content()? {
                Content::Map(entries) => entries
                    .into_iter()
                    .map(|(k, v)| Ok((from_content(Content::Str(k))?, from_content(v)?)))
                    .collect(),
                other => Err(de::Error::custom(format_args!("expected map, found {other:?}"))),
            }
        }
    }
}
