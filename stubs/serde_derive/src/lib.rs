//! Offline stand-in for `serde_derive`.
//!
//! Parses the derived item with a hand-rolled token walk (no `syn` in an
//! offline build) and emits impls that speak the stub `serde`'s concrete
//! `Content` tree. Supports what this workspace actually uses: structs
//! with named fields, enums with unit / tuple / struct variants, and the
//! field attributes `#[serde(rename = "…")]`, `#[serde(skip)]`,
//! `#[serde(default)]`, and `#[serde(default = "path")]`. Generics are
//! intentionally rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- model

#[derive(Default, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    skip: bool,
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

impl Field {
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// --------------------------------------------------------------- parser

type Toks = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Toks = input.into_iter().peekable();
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => {}
            None => panic!("derive input has no struct or enum"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    let body_group = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break Some(g),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("stub serde_derive does not support generic type `{name}`")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break None,
            Some(_) => {}
            None => panic!("unexpected end of `{name}` definition"),
        }
    };
    let body = match (kind.as_str(), body_group) {
        ("struct", Some(g)) => Body::Struct(parse_fields(g.stream())),
        ("struct", None) => Body::Struct(Vec::new()),
        ("enum", Some(g)) => Body::Enum(parse_variants(g.stream())),
        _ => panic!("enum `{name}` without a body"),
    };
    Item { name, body }
}

/// Collect leading attributes, returning the serde-relevant ones.
fn parse_attrs(toks: &mut Toks) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        let group = match toks.next() {
            Some(TokenTree::Group(g)) => g,
            other => panic!("expected attribute body, found {other:?}"),
        };
        let mut inner = group.stream().into_iter();
        match inner.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
            _ => continue, // doc comment or unrelated attribute
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) => g.stream(),
            _ => continue,
        };
        let mut args = args.into_iter().peekable();
        while let Some(tt) = args.next() {
            let TokenTree::Ident(id) = tt else { continue };
            let key = id.to_string();
            let value = match args.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    args.next();
                    match args.next() {
                        Some(TokenTree::Literal(l)) => Some(unquote(&l.to_string())),
                        other => panic!("expected literal after `{key} =`, found {other:?}"),
                    }
                }
                _ => None,
            };
            match (key.as_str(), value) {
                ("rename", Some(v)) => attrs.rename = Some(v),
                ("skip", None) => attrs.skip = true,
                ("default", v) => attrs.default = Some(v),
                _ => {} // attribute this stub does not need
            }
        }
    }
    attrs
}

fn unquote(lit: &str) -> String {
    lit.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(lit).to_string()
}

/// Skip a type (or discriminant expression) up to a top-level comma,
/// tracking `<…>` nesting so commas inside generics don't split fields.
fn skip_until_comma(toks: &mut Toks) {
    let mut angle = 0i32;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                toks.next();
                return;
            }
            _ => {}
        }
        toks.next();
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = parse_attrs(&mut toks);
        // visibility
        if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            toks.next();
            if matches!(toks.peek(), Some(TokenTree::Group(_))) {
                toks.next(); // pub(crate) etc.
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_until_comma(&mut toks);
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _attrs = parse_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // optional discriminant, then the separating comma
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            toks.next();
            skip_until_comma(&mut toks);
        } else if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut n = 0;
    while toks.peek().is_some() {
        skip_until_comma(&mut toks);
        n += 1;
    }
    n
}

// ----------------------------------------------------------- generators

const CONTENT: &str = "::serde::__private::Content";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut code = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                 ::serde::__private::Content)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.attrs.skip) {
                code.push_str(&format!(
                    "__fields.push(({key:?}.to_string(), \
                     ::serde::__private::to_content(&self.{field})));\n",
                    key = f.key(),
                    field = f.name,
                ));
            }
            code.push_str(&format!(
                "__serializer.serialize_content({CONTENT}::Map(__fields))"
            ));
            code
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_content(\
                         {CONTENT}::Str({vname:?}.to_string())),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => __serializer.serialize_content(\
                         {CONTENT}::Map(vec![({vname:?}.to_string(), \
                         ::serde::__private::to_content(__f0))])),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::__private::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => __serializer.serialize_content(\
                             {CONTENT}::Map(vec![({vname:?}.to_string(), \
                             {CONTENT}::Seq(vec![{items}]))])),\n",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip)
                            .map(|f| {
                                format!(
                                    "({key:?}.to_string(), ::serde::__private::to_content({field}))",
                                    key = f.key(),
                                    field = f.name,
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => __serializer.serialize_content(\
                             {CONTENT}::Map(vec![({vname:?}.to_string(), \
                             {CONTENT}::Map(vec![{entries}]))])),\n",
                            binds = binds.join(", "),
                            entries = entries.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// Expression producing one struct field inside the `Self { … }` literal.
fn de_field_expr(f: &Field) -> String {
    if f.attrs.skip {
        return "::std::default::Default::default()".to_string();
    }
    match &f.attrs.default {
        None => format!("::serde::__private::field(&mut __map, {:?})?", f.key()),
        Some(None) => format!(
            "match ::serde::__private::field_opt(&mut __map, {:?})? {{ \
             ::std::option::Option::Some(__v) => __v, \
             ::std::option::Option::None => ::std::default::Default::default() }}",
            f.key()
        ),
        Some(Some(path)) => format!(
            "match ::serde::__private::field_opt(&mut __map, {:?})? {{ \
             ::std::option::Option::Some(__v) => __v, \
             ::std::option::Option::None => {path}() }}",
            f.key()
        ),
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, de_field_expr(f)))
                .collect();
            format!(
                "let mut __map = ::serde::__private::expect_map::<__D::Error>(\
                 __deserializer.take_content()?)?;\n\
                 let _ = &mut __map;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})",
                inits = inits.join(", "),
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::__private::from_content(__v)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|_| {
                                "::serde::__private::from_content(__items.remove(0))?".to_string()
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let mut __items = match __v {{\n\
                                 {CONTENT}::Seq(__s) if __s.len() == {n} => __s,\n\
                                 __other => return ::std::result::Result::Err(\
                                     ::serde::de::Error::custom(format_args!(\
                                     \"variant {vname} expects {n} elements, found {{:?}}\", __other))),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                             }}\n",
                            elems = elems.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, de_field_expr(f)))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let mut __map = ::serde::__private::expect_map::<__D::Error>(__v)?;\n\
                             let _ = &mut __map;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             }}\n",
                            inits = inits.join(", "),
                        ));
                    }
                }
            }
            format!(
                "match __deserializer.take_content()? {{\n\
                 {CONTENT}::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                         format_args!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 {CONTENT}::Map(mut __m) if __m.len() == 1 => {{\n\
                     let (__k, __v) = __m.remove(0);\n\
                     let _ = &__v;\n\
                     match __k.as_str() {{\n\
                         {data_arms}\
                         __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                             format_args!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                     format_args!(\"invalid {name} representation: {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::std::result::Result<Self, __D::Error> {{\n{body}\n}}\n\
         }}"
    )
}
