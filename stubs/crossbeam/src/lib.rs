//! Offline stand-in for `crossbeam`. The workspace declares the
//! dependency but currently uses none of its API; scoped threads are
//! re-exported from std for any future call site.

/// Scoped threads (std's implementation).
pub mod thread {
    pub use std::thread::{scope, Scope};
}
