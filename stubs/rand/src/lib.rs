//! Offline stand-in for `rand 0.8`.
//!
//! Provides the subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::{from_seed, seed_from_u64}`, the `Rng` extension methods
//! (`gen`, `gen_bool`, `gen_range`), `seq::SliceRandom::{choose, shuffle}`
//! and the `Standard` distribution — over a xoshiro256++ core seeded via
//! SplitMix64. Streams differ from the real crate's ChaCha-based `StdRng`
//! (nothing in the workspace depends on rand's exact byte streams, only on
//! seeded determinism within a build), but the statistical quality is fine
//! for the generators, samplers, and index builds that consume it.

use std::ops::{Range, RangeInclusive};

/// Distribution types ([`Standard`] only).
pub mod distributions {
    use crate::Rng;

    /// A distribution that can produce values of `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values for integers,
    /// uniform in `[0, 1)` for floats.
    pub struct Standard;

    macro_rules! std_int {
        ($($t:ty),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1)
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

use distributions::{Distribution, Standard};

/// Types with a uniform range sampler (mirrors `rand::distributions::uniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics when empty.
    fn sample_exclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics when empty.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
uniform_int! {
    u8 as u8, u16 as u16, u32 as u32, u64 as u64, usize as usize,
    i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize,
}

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_exclusive(lo, hi, rng)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics when empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Core RNG interface plus the extension methods user code calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Uniform value from a range.
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named RNGs ([`rngs::StdRng`]).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start at all-zero state
            if s == [0, 0, 0, 0] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 0xbb67ae8584caa73b, 1];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers ([`seq::SliceRandom`]).
pub mod seq {
    use super::Rng;

    /// Random operations over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element (`None` when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=12);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let neg = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
