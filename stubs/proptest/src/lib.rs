//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro with a `proptest_config` attribute and `arg in
//! strategy` parameters, integer-range strategies, `prop::collection::vec`,
//! and the `prop_assert*` macros. Instead of random exploration with
//! shrinking, cases are driven by a deterministic per-test SplitMix64
//! stream — every run explores the same inputs, and a failure prints the
//! sampled arguments via the panic message of the underlying `assert!`.

use std::ops::Range;

/// Test-runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic case RNG handed to strategies.
pub mod test_runner {
    /// SplitMix64 stream seeded from the test's source location and case
    /// index, so each test explores a stable but distinct input set.
    #[derive(Debug, Clone)]
    pub struct CaseRng {
        state: u64,
    }

    impl CaseRng {
        /// RNG for one test case.
        pub fn for_case(file: &str, line: u32, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            h ^= (line as u64) << 32 | case as u64;
            CaseRng { state: h }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Strategy trait and range implementations.
pub mod strategy {
    use super::test_runner::CaseRng;
    use std::ops::Range;

    /// Generates values for one test parameter.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut CaseRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty as $u:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut CaseRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    self.start.wrapping_add((rng.next_u64() % span as u64) as $t)
                }
            }
        )*};
    }
    range_strategy! {
        u8 as u8, u16 as u16, u32 as u32, u64 as u64, usize as usize,
        i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::CaseRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut CaseRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirror of `proptest::prelude::prop`.
pub mod prop_reexport {
    pub use crate::collection;
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
    /// `prop::collection::vec(...)` namespace.
    pub use crate::prop_reexport as prop;
}

// keep `Range` referenced so the root import is not dead when macros expand
#[doc(hidden)]
pub type __UsizeRange = Range<usize>;

/// Define property tests: each `arg in strategy` parameter is sampled per
/// case from a deterministic stream and the body runs `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::CaseRng::for_case(file!(), line!(), __case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    // Bodies may `return Ok(())` early, matching real
                    // proptest's Result-returning test closures.
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// `assert!` that reports through the proptest harness (plain assert here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 0usize..24, b in 0u64..500, c in 1i64..6) {
            prop_assert!(a < 24);
            prop_assert!(b < 500);
            prop_assert!((1..6).contains(&c));
        }

        #[test]
        fn vec_strategy_respects_size(xs in prop::collection::vec(-50i64..50, 1..12)) {
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            prop_assert!(xs.iter().all(|x| (-50..50).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = crate::test_runner::CaseRng::for_case("f", 1, 0);
        let mut r2 = crate::test_runner::CaseRng::for_case("f", 1, 0);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
