//! Dirty values: why Extraction's value retrieval and the Agent Alignment
//! exist (paper §3.4, Listing 6).
//!
//! The generated databases store values in mangled forms ('OSL' for
//! "Oslo", 'C_tier_two' for "tier two"). This example shows the retrieval
//! index bridging question wording to stored forms, and the alignment
//! agent repairing a hallucinated WHERE literal and a misused aggregate —
//! the exact repairs of the paper's Listing 6.
//!
//! ```sh
//! cargo run --release --example dirty_values
//! ```

use opensearch_sql::{align_candidate, CostLedger, ValueIndex};

fn main() {
    // a quirk-heavy healthcare database
    let theme = &datagen::domain::themes()[0];
    let db = datagen::build::build_db(
        theme,
        "clinic",
        "healthcare",
        datagen::RowScale::tiny(),
        0.9, // almost every text column stores mangled values
        0xD1277,
    );
    let values = ValueIndex::build(&db);
    println!("indexed {} stored string values\n", values.len());

    // 1. value retrieval: question wording → stored forms
    for (table, col) in [("Patient", "City"), ("Treatment", "Status")] {
        let stored = db.stored_values(table, col);
        let Some(first) = stored.first() else { continue };
        let display = db.display_form(table, col, first).unwrap_or(first);
        let hits = values.retrieve(display, 5, 0.4);
        println!("question says {display:?}; retrieval finds:");
        for h in hits.iter().take(3) {
            println!("    {}.{} = '{}' (score {:.2})", h.table, h.column, h.stored, h.score);
        }
    }
    println!();

    // 2. Agent Alignment repairs a wrong-case literal (Listing 6, first
    //    example) and a mangled column name
    let stored_city = db.stored_values("Patient", "City")[0].clone();
    let display_city = db.display_form("Patient", "City", &stored_city).unwrap().to_owned();
    let broken = format!(
        "SELECT First_Date FROM Patient WHERE City = '{display_city}'"
    );
    let mut ledger = CostLedger::new();
    let fixed = align_candidate(&broken, &db.database.schema, &values, None, &mut ledger);
    println!("raw SQL:     {broken}");
    println!("aligned SQL: {}", fixed.sql);
    assert!(fixed.changed);
    db.database.query(&fixed.sql).expect("aligned SQL executes");

    // 3. Function + Style Alignment (Listing 6, second and third examples)
    let broken = "SELECT Name FROM Patient ORDER BY MAX(Age)";
    let fixed = align_candidate(broken, &db.database.schema, &values, None, &mut ledger);
    println!("\nraw SQL:     {broken}");
    println!("aligned SQL: {}", fixed.sql);

    let broken = "SELECT Name FROM Patient WHERE Age = (SELECT MAX(Age) FROM Patient)";
    let fixed = align_candidate(broken, &db.database.schema, &values, None, &mut ledger);
    println!("\nraw SQL:     {broken}");
    println!("aligned SQL: {}", fixed.sql);
    db.database.query(&fixed.sql).expect("aligned SQL executes");
}
