//! Ablation lab: flip pipeline modules and watch EX_G / EX_R / EX move —
//! a miniature of the paper's Table 4 you can iterate on in seconds.
//!
//! ```sh
//! cargo run --release --example ablation_lab
//! ```

use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::{evaluate, Pipeline, PipelineConfig, Preprocessed};
use std::sync::Arc;

fn main() {
    let mut profile = datagen::Profile::tiny();
    profile.train = 80;
    profile.dev = 60;
    profile.n_databases = 3;
    profile.n_domains = 3;
    let benchmark = Arc::new(datagen::generate(&profile));
    let llm = Arc::new(SimLlm::new(
        Arc::new(Oracle::new(benchmark.clone())),
        ModelProfile::gpt_4o(),
        11,
    ));
    let pre = Arc::new(Preprocessed::run(benchmark.clone(), llm.as_ref()));
    let dev = benchmark.dev.clone();

    let full = PipelineConfig::fast(); // 3 candidates to stay quick
    let configs = vec![
        ("full pipeline".to_string(), full.clone()),
        ("w/o extraction".to_string(), full.clone().without_extraction()),
        ("w/o few-shot".to_string(), full.clone().without_gen_fewshot()),
        ("w/o alignments".to_string(), full.clone().without_alignments()),
        ("w/o vote".to_string(), full.clone().without_self_consistency()),
    ];

    println!("{:<18} {:>6} {:>6} {:>6}", "config", "EX_G", "EX_R", "EX");
    for (name, config) in configs {
        let pipeline = Pipeline::new(pre.clone(), llm.clone(), config);
        let report = evaluate(&pipeline, &dev, 4);
        println!(
            "{:<18} {:>6.1} {:>6.1} {:>6.1}",
            name, report.ex_g, report.ex_r, report.ex
        );
    }

    // difficulty breakdown of the full pipeline (Figure 3's x-axis)
    let pipeline = Pipeline::new(pre, llm, full);
    let report = evaluate(&pipeline, &dev, 4);
    println!("\nby difficulty (full pipeline):");
    for d in datagen::Difficulty::all() {
        println!("  {:<12} {:>5.1}", d.as_str(), report.ex_of(d));
    }
}
