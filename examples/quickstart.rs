//! Quickstart: build a benchmark world, assemble the OpenSearch-SQL
//! pipeline, and answer questions — both benchmark questions and your own.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::{Pipeline, PipelineConfig, Preprocessed};
use std::sync::Arc;

fn main() {
    // 1. A benchmark world: synthetic databases plus question/SQL splits.
    //    (`Profile::bird()` generates the full-size BIRD-style benchmark;
    //    `tiny()` keeps this example fast.)
    let benchmark = Arc::new(datagen::generate(&datagen::Profile::tiny()));

    // 2. A language model. The simulator is deterministic and offline; any
    //    `llmsim::LanguageModel` implementation can be dropped in instead.
    let llm = Arc::new(SimLlm::new(
        Arc::new(Oracle::new(benchmark.clone())),
        ModelProfile::gpt_4o(),
        0xC0FFEE,
    ));

    // 3. Preprocessing (paper §3.3): value/column vector indexes per
    //    database plus the self-taught Query-CoT-SQL few-shot library.
    let pre = Arc::new(Preprocessed::run(benchmark.clone(), llm.as_ref()));
    println!(
        "preprocessed {} databases, {} few-shot entries\n",
        benchmark.dbs.len(),
        pre.fewshot.len()
    );

    // 4. The pipeline: Extraction → Generation → Refinement with
    //    consistency alignment throughout.
    let pipeline = Pipeline::new(pre, llm, PipelineConfig::fast());

    // Answer a benchmark question.
    let ex = &benchmark.dev[0];
    println!("Q: {}", ex.question);
    if !ex.evidence.is_empty() {
        println!("evidence: {}", ex.evidence);
    }
    let (run, result) = pipeline.query(&ex.db_id, &ex.question, &ex.evidence);
    println!("SQL: {}", run.final_sql);
    match &result {
        Ok(rs) => println!("rows: {:?}\n", rs.rows.iter().take(3).collect::<Vec<_>>()),
        Err(e) => println!("error: {e}\n"),
    }

    // Answer an ad-hoc question of your own against any database.
    let db = &benchmark.dbs[0];
    let question = format!("How many {} are there?", db.tables[0].noun);
    println!("Q: {question} (db: {})", db.id);
    let (run, result) = pipeline.query(&db.id, &question, "");
    println!("SQL: {}", run.final_sql);
    if let Ok(rs) = result {
        println!("answer: {}", rs.rows[0][0]);
    }
}
