//! Hospital analytics: the paper's motivating domain, end to end.
//!
//! Builds a BIRD-style healthcare database (dirty stored values included),
//! runs several questions through the full pipeline, and prints what each
//! stage contributed — retrieved values, the generated structured CoT, the
//! aligned SQL, and the per-module cost ledger (paper Table 6's rows).
//!
//! ```sh
//! cargo run --release --example hospital_analytics
//! ```

use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::{Module, Pipeline, PipelineConfig, Preprocessed};
use std::sync::Arc;

fn main() {
    // a single-domain benchmark: only healthcare databases
    let mut profile = datagen::Profile::tiny();
    profile.n_databases = 1;
    profile.n_domains = 1;
    profile.train = 60;
    profile.dev = 25;
    profile.seed = 0x40511;
    let benchmark = Arc::new(datagen::generate(&profile));
    let db = &benchmark.dbs[0];
    println!("database: {} (domain {})", db.id, db.domain);
    for t in &db.tables {
        println!(
            "  {} ({} rows): {}",
            t.name,
            db.database.rows(&t.name).map(|r| r.len()).unwrap_or(0),
            t.cols.iter().map(|c| c.name.as_str()).collect::<Vec<_>>().join(", ")
        );
    }
    println!();

    let llm = Arc::new(SimLlm::new(
        Arc::new(Oracle::new(benchmark.clone())),
        ModelProfile::gpt_4o(),
        7,
    ));
    let pre = Arc::new(Preprocessed::run(benchmark.clone(), llm.as_ref()));
    let pipeline = Pipeline::new(pre, llm, PipelineConfig::fast());

    let mut correct = 0;
    let shown = benchmark.dev.iter().take(6).collect::<Vec<_>>();
    for ex in &shown {
        println!("Q: {}", ex.question);
        if !ex.evidence.is_empty() {
            println!("   evidence: {}", ex.evidence);
        }
        let run = pipeline.answer(&ex.db_id, &ex.question, &ex.evidence);
        println!("   predicted: {}", run.final_sql);
        println!("   gold:      {}", ex.gold_sql);
        let gold = db.database.query(&ex.gold_sql).expect("gold executes");
        let ok = db
            .database
            .query(&run.final_sql)
            .map(|rs| rs.same_answer(&gold))
            .unwrap_or(false);
        println!("   correct:   {ok}");
        if ok {
            correct += 1;
        }
        // the cost ledger mirrors Table 6's module rows
        let gen = run.ledger.get(Module::Generation);
        let align = run.ledger.get(Module::Alignments);
        println!(
            "   cost: generation {:.0} ms / {} tokens, alignments {:.2} ms, {} candidates\n",
            gen.time_ms,
            gen.tokens,
            align.time_ms,
            run.candidates.len()
        );
    }
    println!("{correct}/{} correct", shown.len());
}
