//! Measures the cost of always-on tracing on the hottest engine path:
//! warm plan-cache execution with and without an active trace, sampled in
//! interleaved chunks so clock drift and allocator state cancel out.
//! The acceptance bar for the instrumentation is < 5% median overhead.
//!
//! ```sh
//! cargo run --release --example trace_overhead
//! ```

use datagen::{build::build_db, domain::themes, RowScale};

const CASES: [(&str, &str); 2] = [
    ("scan_filter", "SELECT Name FROM Patient WHERE Age > 40"),
    (
        "hash_join",
        "SELECT T1.Name, T2.IGA FROM Patient AS T1 \
         INNER JOIN Laboratory AS T2 ON T1.PatientID = T2.PatientID",
    ),
];

const REPS: usize = 40;
const CHUNK: usize = 200;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let built = build_db(&themes()[0], "bench", "healthcare", RowScale::bird(), 0.55, 42);
    for (name, sql) in CASES {
        let cache = sqlkit::PlanCache::new(64);
        cache.execute(&built.database, sql).unwrap();
        let mut off = Vec::with_capacity(REPS);
        let mut on = Vec::with_capacity(REPS);
        let mut sat = Vec::with_capacity(REPS);
        let chunk = |mode: u8| {
            match mode {
                1 => osql_trace::active::push(),
                2 => osql_trace::active::push_with_capacity(1),
                _ => {}
            }
            let t0 = std::time::Instant::now();
            for _ in 0..CHUNK {
                std::hint::black_box(cache.execute(&built.database, sql).unwrap());
            }
            let per_exec = t0.elapsed().as_nanos() as f64 / CHUNK as f64;
            if mode != 0 {
                let _ = osql_trace::active::pop();
            }
            per_exec
        };
        // rotate which variant runs first so within-rep warm-up
        // systematically favouring later chunks cancels out
        for rep in 0..REPS {
            for slot in 0..3u8 {
                match (rep as u8 + slot) % 3 {
                    0 => off.push(chunk(0)),
                    1 => on.push(chunk(1)),
                    _ => sat.push(chunk(2)),
                }
            }
        }
        let (off, on, sat) = (median(&mut off), median(&mut on), median(&mut sat));
        println!(
            "{name:<14} off {off:>9.0} ns/exec   on {on:>9.0} ns/exec ({:+.2}%)   saturated {sat:>9.0} ns/exec ({:+.2}%)",
            (on / off - 1.0) * 100.0,
            (sat / off - 1.0) * 100.0
        );
    }
}
