#!/usr/bin/env bash
# The gate every change must pass: release build, fast engine gate, full
# test suite, bench compilation, warnings-as-errors lint, concurrency
# model checking, and the workspace source lint. Referenced from
# README.md ("Install & build").
#
# Flags:
#   --sanitize   additionally run the concurrency-sensitive test suites
#                under ThreadSanitizer (requires a nightly toolchain with
#                rust-src; skipped with a notice when unavailable).
set -euo pipefail
cd "$(dirname "$0")"

sanitize=0
for arg in "$@"; do
    case "$arg" in
        --sanitize) sanitize=1 ;;
        *) echo "ci: unknown flag $arg" >&2; exit 2 ;;
    esac
done

cargo build --release
cargo test -q -p sqlkit          # fast gate: the SQL substrate everything sits on
cargo test -q --test analyze_gold_clean  # corpus gate: analyzer silent on all gold SQL
cargo test -q --test trace_shape # trace-determinism gate: two identical runs (and any
                                 # refine thread count) render identical logical traces,
                                 # timestamps and volatile events excluded
cargo test -q --test planner_differential # planner gate: cost-based physical plans and the
                                 # pipelined executor return byte-identical rows to the
                                 # legacy interpreter (corpus gold SQL, sampled specs,
                                 # paged round trips, index-set invalidation)

# Store gate: the crash-recovery fault matrix (every-byte truncation +
# corruption of the WAL, ~3.3k injection points), then pack a benchmark
# through the CLI and fsck every produced page file — fsck must exit 0
# on clean stores and non-zero on a corrupted one.
cargo test -q -p osql-store
cargo test -q -p osql-store --test recovery
store_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir"' EXIT
cargo run --release -q -p osql-cli -- pack "$store_dir" --profile tiny
for f in "$store_dir"/*.store; do
    cargo run --release -q -p osql-cli -- fsck "$f"
done
first_store="$(ls "$store_dir"/*.store | head -n1)"
printf 'X' | dd of="$first_store" bs=1 seek=100 count=1 conv=notrunc status=none
if cargo run --release -q -p osql-cli -- fsck "$first_store" >/dev/null 2>&1; then
    echo "ci: fsck failed to flag an injected corruption" >&2
    exit 1
fi

# Server gate: the HTTP serving layer must build, pass its conformance
# smoke tests (malformed input, header/body limits, keep-alive, quota
# and queue-full 429 paths, graceful drain) and the coalescing
# determinism tests (one pipeline execution, byte-identical responses),
# and stay clippy-clean.
cargo build -p osql-server
cargo test -q -p osql-server --test http_smoke
cargo test -q -p osql-server --test coalesce
cargo clippy -p osql-server --all-targets -- -D warnings

# Replication gate: segment/manifest round-trips and the ship→apply→
# promote fault matrix (no committed-and-shipped txn lost, no unshipped
# suffix invented); follower admission (bounded-staleness floors, 503 +
# Retry-After, /healthz + /metrics exposition); the differential suite
# pinning follower responses byte-identical to the primary whenever the
# floor is met; and a CLI round-trip on a freshly packed world:
# ship → follow (exit 0, caught up) → promote → fsck-clean replicas.
cargo test -q -p osql-repl
cargo test -q -p osql-repl --test failover
cargo test -q -p osql-server --test follower
cargo test -q --test repl_differential
repl_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir" "$repl_dir"' EXIT
cargo run --release -q -p osql-cli -- pack "$repl_dir/primary" --profile tiny
cargo run --release -q -p osql-cli -- repl ship "$repl_dir/primary" "$repl_dir/ship"
cargo run --release -q -p osql-cli -- repl follow "$repl_dir/ship" "$repl_dir/replica"
cargo run --release -q -p osql-cli -- repl promote "$repl_dir/replica"
for f in "$repl_dir/replica"/*.store; do
    cargo run --release -q -p osql-cli -- fsck "$f"
done

# Observability gate: trace-ID round-trip and the four /debug endpoints
# (flight lookup, recent/slow listings, SLO report) answer over real
# HTTP; the shared Retry-After rounding stays pinned; the flight
# recorder's invariants hold under exhaustive model exploration; and the
# windowed/SLO exposition stays byte-deterministic (trace_shape above).
cargo test -q -p osql-server --test http_smoke -- \
    trace_ids_round_trip_and_debug_endpoints_answer \
    retry_after_rounding_is_shared_and_pinned

# Concurrency gates (osql-chk). Three layers:
#   1. workspace-lint: no raw std::sync primitives in checked crates, no
#      lock().unwrap() outside the sanctioned helper, no wall-clock reads
#      in logical-trace code.
#   2. chk self-tests: the explorer finds its seeded bugs, the lock-order
#      analyzer flags cycles, the lint fires on fixtures.
#   3. model suites: every migrated structure's invariants explored
#      exhaustively under --cfg osql_model (separate target dir so the
#      model-world cfg does not thrash the main build cache).
cargo run --release -q -p osql-chk --bin workspace-lint
cargo test -q -p osql-chk
for crate in osql-chk osql-repl osql-runtime osql-server osql-store osql-trace sqlkit; do
    RUSTFLAGS="--cfg osql_model" CARGO_TARGET_DIR=target/model \
        cargo test -q -p "$crate" --test model
done

cargo test -q
cargo bench --no-run             # benches must always compile
cargo clippy -p osql-store --all-targets -- -D warnings
cargo clippy --workspace --all-targets -- -D warnings

# Optional ThreadSanitizer stage: the model checker explores schedules a
# real scheduler rarely produces, TSan validates the real std::sync path
# under genuine parallelism. Nightly-only (-Zbuild-std), so this stage is
# opt-in and degrades to a notice when the toolchain is not available.
if [ "$sanitize" -eq 1 ]; then
    host="$(rustc -vV | sed -n 's/^host: //p')"
    if rustup run nightly rustc --version >/dev/null 2>&1 \
        && rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
        RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
            cargo +nightly test -Zbuild-std --target "$host" -q \
            -p osql-runtime -p osql-server -p osql-chk
        echo "ci: tsan ok"
    else
        echo "ci: --sanitize requested but nightly toolchain with rust-src is unavailable; skipping TSan stage" >&2
    fi
fi

echo "ci: ok"
