#!/usr/bin/env bash
# The gate every change must pass: release build, full test suite,
# warnings-as-errors lint. Referenced from README.md ("Install & build").
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy -- -D warnings
echo "ci: ok"
