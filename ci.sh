#!/usr/bin/env bash
# The gate every change must pass: release build, fast engine gate, full
# test suite, bench compilation, warnings-as-errors lint. Referenced from
# README.md ("Install & build").
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q -p sqlkit          # fast gate: the SQL substrate everything sits on
cargo test -q --test analyze_gold_clean  # corpus gate: analyzer silent on all gold SQL
cargo test -q --test trace_shape # trace-determinism gate: two identical runs (and any
                                 # refine thread count) render identical logical traces,
                                 # timestamps and volatile events excluded
cargo test -q
cargo bench --no-run             # benches must always compile
cargo clippy --workspace --all-targets -- -D warnings
echo "ci: ok"
