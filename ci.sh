#!/usr/bin/env bash
# The gate every change must pass: release build, fast engine gate, full
# test suite, bench compilation, warnings-as-errors lint. Referenced from
# README.md ("Install & build").
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q -p sqlkit          # fast gate: the SQL substrate everything sits on
cargo test -q --test analyze_gold_clean  # corpus gate: analyzer silent on all gold SQL
cargo test -q --test trace_shape # trace-determinism gate: two identical runs (and any
                                 # refine thread count) render identical logical traces,
                                 # timestamps and volatile events excluded
cargo test -q --test planner_differential # planner gate: cost-based physical plans and the
                                 # pipelined executor return byte-identical rows to the
                                 # legacy interpreter (corpus gold SQL, sampled specs,
                                 # paged round trips, index-set invalidation)

# Store gate: the crash-recovery fault matrix (every-byte truncation +
# corruption of the WAL, ~3.3k injection points), then pack a benchmark
# through the CLI and fsck every produced page file — fsck must exit 0
# on clean stores and non-zero on a corrupted one.
cargo test -q -p osql-store
cargo test -q -p osql-store --test recovery
store_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir"' EXIT
cargo run --release -q -p osql-cli -- pack "$store_dir" --profile tiny
for f in "$store_dir"/*.store; do
    cargo run --release -q -p osql-cli -- fsck "$f"
done
first_store="$(ls "$store_dir"/*.store | head -n1)"
printf 'X' | dd of="$first_store" bs=1 seek=100 count=1 conv=notrunc status=none
if cargo run --release -q -p osql-cli -- fsck "$first_store" >/dev/null 2>&1; then
    echo "ci: fsck failed to flag an injected corruption" >&2
    exit 1
fi

# Server gate: the HTTP serving layer must build, pass its conformance
# smoke tests (malformed input, header/body limits, keep-alive, quota
# and queue-full 429 paths, graceful drain) and the coalescing
# determinism tests (one pipeline execution, byte-identical responses),
# and stay clippy-clean.
cargo build -p osql-server
cargo test -q -p osql-server --test http_smoke
cargo test -q -p osql-server --test coalesce
cargo clippy -p osql-server --all-targets -- -D warnings

cargo test -q
cargo bench --no-run             # benches must always compile
cargo clippy -p osql-store --all-targets -- -D warnings
cargo clippy --workspace --all-targets -- -D warnings
echo "ci: ok"
