//! Umbrella crate for the OpenSearch-SQL reproduction workspace.
//!
//! This package exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. Library users should
//! depend on the individual crates (`opensearch-sql`, `sqlkit`, ...)
//! directly.
