//! Durable-store round trip over every generated database: dumping a
//! database to SQL and re-executing it, then packing it into an
//! `osql-store` page file and importing it back, must preserve the
//! schema, every row, the generation metadata, and — the part the
//! pipeline actually scores — the result set of every gold SQL.

use datagen::{export_store, generate, import_store, Profile};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osql-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn world() -> datagen::Benchmark {
    let mut profile = Profile::tiny();
    profile.train = 30;
    profile.dev = 25;
    profile.n_databases = 4;
    profile.n_domains = 4;
    generate(&profile)
}

#[test]
fn every_database_round_trips_through_script_and_store() {
    let bench = world();
    let dir = tmpdir("script-store");
    let paths = export_store(&bench, &dir).unwrap();
    assert_eq!(paths.len(), bench.dbs.len());

    for (db, path) in bench.dbs.iter().zip(&paths) {
        // dump → fresh execute: the SQL round trip
        let script = db.database.dump_script();
        let mut fresh = sqlkit::Database::new(&db.id);
        fresh.execute_script(&script).unwrap_or_else(|e| {
            panic!("{}: dumped script must re-execute: {e}", db.id);
        });
        // SQL cannot carry column descriptions, so the script leg checks
        // the structural schema; the store leg below checks it all.
        let structure = |schema: &sqlkit::schema::DbSchema| {
            schema
                .tables
                .iter()
                .map(|t| {
                    (
                        t.name.clone(),
                        t.columns
                            .iter()
                            .map(|c| (c.name.clone(), c.ty, c.primary_key))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            structure(&fresh.schema),
            structure(&db.database.schema),
            "{}: script schema drift",
            db.id
        );
        assert_eq!(
            fresh.schema.foreign_keys,
            db.database.schema.foreign_keys,
            "{}: script FK drift",
            db.id
        );
        assert_eq!(
            fresh.total_rows(),
            db.database.total_rows(),
            "{}: script row-count drift",
            db.id
        );

        // export → import: the binary round trip
        let imported = import_store(path).unwrap();
        let (back, bytes) = (imported.db, imported.file_bytes);
        assert!(bytes > 0);
        assert_eq!(back.database.schema, db.database.schema, "{}: store schema drift", db.id);
        for table in &db.database.schema.tables.clone() {
            assert_eq!(
                back.database.rows(&table.name).unwrap(),
                db.database.rows(&table.name).unwrap(),
                "{}.{}: store rows drift",
                db.id,
                table.name
            );
            assert_eq!(
                fresh.rows(&table.name).unwrap(),
                db.database.rows(&table.name).unwrap(),
                "{}.{}: script rows drift",
                db.id,
                table.name
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gold_sql_result_sets_survive_both_round_trips() {
    let bench = world();
    let dir = tmpdir("gold");
    let paths = export_store(&bench, &dir).unwrap();

    let mut checked = 0usize;
    for (db, path) in bench.dbs.iter().zip(&paths) {
        let script = db.database.dump_script();
        let mut fresh = sqlkit::Database::new(&db.id);
        fresh.execute_script(&script).unwrap();
        let back = import_store(path).unwrap().db;

        for ex in bench.train.iter().chain(&bench.dev).chain(&bench.test) {
            if ex.db_id != db.id {
                continue;
            }
            let want = db.database.query(&ex.gold_sql).unwrap();
            let via_script = fresh.query(&ex.gold_sql).unwrap();
            let via_store = back.database.query(&ex.gold_sql).unwrap();
            assert_eq!(want.rows, via_script.rows, "{}: {}", db.id, ex.gold_sql);
            assert_eq!(want.rows, via_store.rows, "{}: {}", db.id, ex.gold_sql);
            assert!(!want.rows.is_empty(), "gold SQL is non-empty by construction");
            checked += 1;
        }
    }
    assert!(checked > 20, "only {checked} gold queries checked — fixture too small");
    std::fs::remove_dir_all(&dir).unwrap();
}
