//! Property-based tests on the SQL substrate: printer/parser round-trips,
//! executor invariants, and SQLite-semantics conformance, driven by the
//! benchmark generator's own query specs (which exercise exactly the SQL
//! surface the pipeline produces).

use datagen::{build::build_db, domain::themes, generator::sample_spec, Difficulty, RowScale};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlkit::{parse_select, print_select, Value};

fn built_db(theme_idx: usize, seed: u64) -> datagen::BuiltDb {
    let lib = themes();
    build_db(
        &lib[theme_idx % lib.len()],
        "prop",
        "prop",
        RowScale::tiny(),
        0.5,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every spec the generator can produce renders to SQL that parses,
    /// round-trips through the printer, and executes.
    #[test]
    fn spec_sql_roundtrips_and_executes(theme in 0usize..24, seed in 0u64..500) {
        let db = built_db(theme, seed / 7 + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        for difficulty in Difficulty::all() {
            if let Some(spec) = sample_spec(&db, difficulty, &mut rng) {
                let sql = print_select(&spec.to_sql(&db.database.schema));
                let ast = parse_select(&sql).expect("generated SQL parses");
                prop_assert_eq!(&print_select(&ast), &sql, "printer is a fixpoint");
                let reparsed = parse_select(&print_select(&ast)).unwrap();
                prop_assert_eq!(&reparsed, &ast);
                db.database.query(&sql).expect("generated SQL executes");
            }
        }
    }

    /// LIMIT k never yields more than k rows; DISTINCT never yields
    /// duplicate rows (under the scorer's normalisation).
    #[test]
    fn limit_and_distinct_invariants(theme in 0usize..24, seed in 0u64..300, k in 1i64..6) {
        let db = built_db(theme, seed / 5 + 2);
        let table = &db.tables[0].name;
        let col = &db.tables[0].cols[1].name;
        let limited = db
            .database
            .query(&format!("SELECT {} FROM {} LIMIT {}", sqlkit::printer::ident(col), table, k))
            .unwrap();
        prop_assert!(limited.rows.len() <= k as usize);

        let distinct = db
            .database
            .query(&format!("SELECT DISTINCT {} FROM {}", sqlkit::printer::ident(col), table))
            .unwrap();
        let mut keys: Vec<_> = distinct
            .rows
            .iter()
            .map(|r| r[0].normalized())
            .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), n, "DISTINCT must deduplicate");
    }

    /// `WHERE c = v` never returns a row whose `c` differs from `v`, and
    /// the partition `= v` / `!= v` / `IS NULL` covers the whole table.
    #[test]
    fn where_soundness_and_partition(theme in 0usize..24, seed in 0u64..300) {
        let db = built_db(theme, seed / 3 + 3);
        // pick a textual column with values
        let mut target = None;
        'outer: for t in &db.tables {
            for c in &t.cols {
                if c.kind.is_textual() {
                    if let Some(v) = db.stored_values(&t.name, &c.name).first() {
                        target = Some((t.name.clone(), c.name.clone(), v.clone()));
                        break 'outer;
                    }
                }
            }
        }
        let Some((t, c, v)) = target else { return Ok(()) };
        let ident = sqlkit::printer::ident(&c);
        let lit = v.replace('\'', "''");
        let eq = db
            .database
            .query(&format!("SELECT {ident} FROM {t} WHERE {ident} = '{lit}'"))
            .unwrap();
        for row in &eq.rows {
            prop_assert_eq!(&row[0], &Value::Text(v.clone()));
        }
        let ne = db
            .database
            .query(&format!("SELECT COUNT(*) FROM {t} WHERE {ident} != '{lit}'"))
            .unwrap();
        let nul = db
            .database
            .query(&format!("SELECT COUNT(*) FROM {t} WHERE {ident} IS NULL"))
            .unwrap();
        let total = db.database.rows(&t).unwrap().len() as i64;
        let parts = eq.rows.len() as i64
            + ne.rows[0][0].as_i64().unwrap()
            + nul.rows[0][0].as_i64().unwrap();
        prop_assert_eq!(parts, total, "three-valued partition must cover the table");
    }

    /// UNION ALL counts add; UNION is the deduplication of UNION ALL;
    /// INTERSECT + EXCEPT partition the distinct left side.
    #[test]
    fn set_operation_algebra(theme in 0usize..24, seed in 0u64..200) {
        let db = built_db(theme, seed + 4);
        let t = &db.tables[0].name;
        let c = sqlkit::printer::ident(&db.tables[0].cols[1].name);
        let n = db.database.rows(t).unwrap().len();

        let all = db
            .database
            .query(&format!("SELECT {c} FROM {t} UNION ALL SELECT {c} FROM {t}"))
            .unwrap();
        prop_assert_eq!(all.rows.len(), n * 2);

        let union = db
            .database
            .query(&format!("SELECT {c} FROM {t} UNION SELECT {c} FROM {t}"))
            .unwrap();
        let distinct = db.database.query(&format!("SELECT DISTINCT {c} FROM {t}")).unwrap();
        prop_assert!(union.same_answer(&distinct));

        let inter = db
            .database
            .query(&format!("SELECT {c} FROM {t} INTERSECT SELECT {c} FROM {t}"))
            .unwrap();
        let except = db
            .database
            .query(&format!("SELECT {c} FROM {t} EXCEPT SELECT {c} FROM {t}"))
            .unwrap();
        prop_assert_eq!(inter.rows.len() + except.rows.len(), distinct.rows.len());
        prop_assert!(except.rows.is_empty());
    }

    /// COUNT(*) equals table cardinality; SUM/AVG relate as expected; the
    /// ranked query (ORDER BY DESC LIMIT 1) returns the MAX.
    #[test]
    fn aggregate_consistency(theme in 0usize..24, seed in 0u64..200) {
        let db = built_db(theme, seed + 5);
        // find a numeric column
        let mut target = None;
        'outer: for t in &db.tables {
            for c in &t.cols {
                if c.kind.is_numeric() {
                    target = Some((t.name.clone(), c.name.clone()));
                    break 'outer;
                }
            }
        }
        let Some((t, c)) = target else { return Ok(()) };
        let ci = sqlkit::printer::ident(&c);
        let n = db.database.rows(&t).unwrap().len() as i64;
        let count = db.database.query(&format!("SELECT COUNT(*) FROM {t}")).unwrap();
        prop_assert_eq!(count.rows[0][0].as_i64(), Some(n));

        let stats = db
            .database
            .query(&format!("SELECT SUM({ci}), AVG({ci}), COUNT({ci}) FROM {t}"))
            .unwrap();
        let (sum, avg, cnt) = (
            stats.rows[0][0].as_f64().unwrap_or(0.0),
            stats.rows[0][1].as_f64().unwrap_or(0.0),
            stats.rows[0][2].as_f64().unwrap(),
        );
        if cnt > 0.0 {
            prop_assert!((sum / cnt - avg).abs() < 1e-6, "AVG = SUM / COUNT");
        }

        let max = db.database.query(&format!("SELECT MAX({ci}) FROM {t}")).unwrap();
        let top = db
            .database
            .query(&format!(
                "SELECT {ci} FROM {t} WHERE {ci} IS NOT NULL ORDER BY {ci} DESC LIMIT 1"
            ))
            .unwrap();
        if !top.rows.is_empty() {
            prop_assert!(max.same_answer(&top), "ranked top-1 equals MAX");
        }
    }

    /// Result-set equivalence (the EX predicate) is insensitive to row
    /// order and to Int/Real representation of integral numbers.
    #[test]
    fn ex_equivalence_is_representation_insensitive(xs in prop::collection::vec(-50i64..50, 1..12)) {
        use sqlkit::ResultSet;
        let a = ResultSet {
            columns: vec!["v".into()],
            rows: xs.iter().map(|x| vec![Value::Int(*x)]).collect(),
        };
        let mut reversed: Vec<_> = xs.iter().rev().map(|x| vec![Value::Real(*x as f64)]).collect();
        let b = ResultSet { columns: vec!["w".into()], rows: std::mem::take(&mut reversed) };
        prop_assert!(a.same_answer(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Alignment is idempotent and is the identity on gold SQL:
    /// `align(align(x)) == align(x)` and `align(gold) == gold`.
    #[test]
    fn alignment_is_idempotent(theme in 0usize..37, seed in 0u64..200) {
        use opensearch_sql::{align_candidate, CostLedger, ValueIndex};
        let db = built_db(theme, seed + 9);
        let values = ValueIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(seed);
        for difficulty in Difficulty::all() {
            if let Some(spec) = sample_spec(&db, difficulty, &mut rng) {
                let gold = print_select(&spec.to_sql(&db.database.schema));
                let mut ledger = CostLedger::new();
                let once =
                    align_candidate(&gold, &db.database.schema, &values, None, &mut ledger);
                prop_assert!(!once.changed, "gold must be a fixpoint: {}", once.sql);
                // idempotence on a perturbed input
                let perturbed = gold.to_lowercase().replacen("select", "SELECT", 1);
                let a =
                    align_candidate(&perturbed, &db.database.schema, &values, None, &mut ledger);
                let b =
                    align_candidate(&a.sql, &db.database.schema, &values, None, &mut ledger);
                prop_assert_eq!(&a.sql, &b.sql, "align must be idempotent");
            }
        }
    }

    /// UPDATE then reverse-UPDATE restores the table; DELETE of `WHERE p`
    /// plus the retained rows partition the original.
    #[test]
    fn write_paths_are_consistent(theme in 0usize..37, seed in 0u64..200, delta in 1i64..50) {
        let db = built_db(theme, seed + 13);
        // pick a numeric column
        let mut target = None;
        'outer: for t in &db.tables {
            for c in &t.cols {
                if matches!(c.kind, datagen::ColKind::Count | datagen::ColKind::Age) {
                    target = Some((t.name.clone(), c.name.clone()));
                    break 'outer;
                }
            }
        }
        let Some((t, c)) = target else { return Ok(()) };
        let ci = sqlkit::printer::ident(&c);
        let mut mutable = db.database.clone();
        let before = mutable.query(&format!("SELECT {ci} FROM {t}")).unwrap();

        mutable
            .execute_script(&format!("UPDATE {t} SET {ci} = {ci} + {delta}"))
            .unwrap();
        let bumped = mutable.query(&format!("SELECT {ci} FROM {t}")).unwrap();
        prop_assert!(!bumped.same_answer(&before) || before.rows.is_empty());

        mutable
            .execute_script(&format!("UPDATE {t} SET {ci} = {ci} - {delta}"))
            .unwrap();
        let restored = mutable.query(&format!("SELECT {ci} FROM {t}")).unwrap();
        prop_assert!(restored.same_answer(&before), "update must invert");

        // DELETE partition: |WHERE p| + |remaining| == |original|
        let n = mutable.rows(&t).unwrap().len();
        let threshold = delta * 2;
        let matching = mutable
            .query(&format!("SELECT COUNT(*) FROM {t} WHERE {ci} > {threshold}"))
            .unwrap()
            .rows[0][0]
            .as_i64()
            .unwrap() as usize;
        mutable
            .execute_script(&format!("DELETE FROM {t} WHERE {ci} > {threshold}"))
            .unwrap();
        prop_assert_eq!(mutable.rows(&t).unwrap().len(), n - matching);
    }

    /// SQL-Like lowering always produces executable SQL whose answer
    /// matches the spec's gold answer when the spec has no grouping quirks.
    #[test]
    fn sql_like_lowering_matches_gold(theme in 0usize..37, seed in 0u64..150) {
        let db = built_db(theme, seed + 17);
        let mut rng = StdRng::seed_from_u64(seed);
        for difficulty in Difficulty::all() {
            if let Some(spec) = sample_spec(&db, difficulty, &mut rng) {
                // DISTINCT is outside SQL-Like's vocabulary, and a joined
                // table no column references is unrecoverable from the
                // logic alone (COUNT(*) row multiplication) — both are
                // inherent losses of the intermediate language; skip them
                if spec.distinct {
                    continue;
                }
                let used = spec.columns_used();
                let all_tables_referenced = spec
                    .tables
                    .iter()
                    .all(|t| used.iter().any(|(ut, _)| ut.eq_ignore_ascii_case(t)));
                if !all_tables_referenced {
                    continue;
                }
                let line = llmsim::render_sql_like(&spec);
                let Ok(sql) = opensearch_sql::recover_sql(&line, &db.database.schema) else {
                    continue;
                };
                let recovered = db.database.query(&sql).unwrap();
                let gold = db
                    .database
                    .query(&print_select(&spec.to_sql(&db.database.schema)))
                    .unwrap();
                prop_assert!(
                    recovered.same_answer(&gold),
                    "SQL-Like must preserve the answer:\n  like: {line}\n  sql: {sql}"
                );
            }
        }
    }
}

// ---------------- additional SQLite-conformance spot checks ----------------

#[test]
fn null_ordering_and_left_join_where_interaction() {
    let mut db = sqlkit::Database::new("conf");
    db.execute_script(
        "CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER);
         CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER, w TEXT);
         INSERT INTO a VALUES (1, 10), (2, NULL), (3, 30);
         INSERT INTO b VALUES (1, 1, 'x');",
    )
    .unwrap();
    // NULLs sort first ascending, last descending
    let asc = db.query("SELECT v FROM a ORDER BY v").unwrap();
    assert!(asc.rows[0][0].is_null());
    let desc = db.query("SELECT v FROM a ORDER BY v DESC").unwrap();
    assert!(desc.rows[2][0].is_null());
    // WHERE on the right side of a LEFT JOIN eliminates the padded rows
    let padded = db
        .query("SELECT a.id FROM a LEFT JOIN b ON b.aid = a.id")
        .unwrap();
    assert_eq!(padded.rows.len(), 3);
    let filtered = db
        .query("SELECT a.id FROM a LEFT JOIN b ON b.aid = a.id WHERE b.w = 'x'")
        .unwrap();
    assert_eq!(filtered.rows.len(), 1);
}

#[test]
fn like_escapes_and_unicode() {
    let mut db = sqlkit::Database::new("conf");
    db.execute_script(
        "CREATE TABLE t (s TEXT);
         INSERT INTO t VALUES ('100%'), ('100x'), ('héllo'), ('it''s');",
    )
    .unwrap();
    // % is a wildcard, so '100%' matches both 100% and 100x
    let any = db.query("SELECT COUNT(*) FROM t WHERE s LIKE '100%'").unwrap();
    assert_eq!(any.rows[0][0], Value::Int(2));
    // unicode text survives storage, comparison and quoting
    let uni = db.query("SELECT COUNT(*) FROM t WHERE s = 'héllo'").unwrap();
    assert_eq!(uni.rows[0][0], Value::Int(1));
    let quoted = db.query("SELECT COUNT(*) FROM t WHERE s = 'it''s'").unwrap();
    assert_eq!(quoted.rows[0][0], Value::Int(1));
}

#[test]
fn strftime_group_by_month_histogram() {
    let mut db = sqlkit::Database::new("conf");
    db.execute_script(
        "CREATE TABLE e (d TEXT);
         INSERT INTO e VALUES ('2020-01-05'), ('2020-01-20'), ('2020-02-01'), ('2021-01-01');",
    )
    .unwrap();
    let rs = db
        .query(
            "SELECT STRFTIME('%Y-%m', d) AS ym, COUNT(*) FROM e GROUP BY ym ORDER BY ym",
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::text("2020-01"), Value::Int(2)],
            vec![Value::text("2020-02"), Value::Int(1)],
            vec![Value::text("2021-01"), Value::Int(1)],
        ]
    );
}

#[test]
fn deeply_nested_case_and_cast() {
    let mut db = sqlkit::Database::new("conf");
    db.execute_script("CREATE TABLE t (x TEXT); INSERT INTO t VALUES ('12'), ('abc'), (NULL);")
        .unwrap();
    let rs = db
        .query(
            "SELECT CASE WHEN x IS NULL THEN 'none' \
                    WHEN CAST(x AS INTEGER) > 10 THEN 'big' \
                    ELSE CASE WHEN LENGTH(x) = 3 THEN 'word' ELSE 'other' END END \
             FROM t ORDER BY x",
        )
        .unwrap();
    // NULL sorts first, then '12', then 'abc'
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::text("none")],
            vec![Value::text("big")],
            vec![Value::text("word")],
        ]
    );
}

#[test]
fn division_and_modulo_edge_cases() {
    let db = sqlkit::Database::new("conf");
    let rs = db
        .query("SELECT 7 / 0, 7 % 0, 7.0 / 0, -7 / 2, 7 / -2")
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(rs.rows[0][0].is_null(), "int division by zero is NULL");
    assert!(rs.rows[0][1].is_null(), "modulo by zero is NULL");
    assert!(rs.rows[0][2].is_null(), "real division by zero is NULL");
    assert_eq!(rs.rows[0][3], Value::Int(-3), "truncating division");
    assert_eq!(rs.rows[0][4], Value::Int(-3));
}

#[test]
fn in_subquery_three_valued_logic() {
    let mut db = sqlkit::Database::new("conf");
    db.execute_script(
        "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1), (NULL), (3);",
    )
    .unwrap();
    // 2 NOT IN (1, NULL, 3) is NULL (not true), so no row qualifies
    let rs = db
        .query("SELECT COUNT(*) FROM t WHERE 2 NOT IN (SELECT x FROM t)")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(0));
    // 1 IN (...) is plainly true
    let rs = db
        .query("SELECT COUNT(*) FROM t WHERE 1 IN (SELECT x FROM t)")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(3));
}
