//! Cross-crate integration tests: the full OpenSearch-SQL pipeline over
//! generated benchmarks, with the simulated model in the loop.

use datagen::{generate, Profile};
use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::{evaluate, Pipeline, PipelineConfig, Preprocessed};
use std::sync::Arc;

struct Fixture {
    benchmark: Arc<datagen::Benchmark>,
    pre: Arc<Preprocessed>,
    llm: Arc<SimLlm>,
}

fn fixture(seed: u64) -> Fixture {
    let mut profile = Profile::tiny();
    profile.train = 60;
    profile.dev = 40;
    profile.n_databases = 3;
    profile.n_domains = 3;
    let benchmark = Arc::new(generate(&profile));
    let oracle = Arc::new(Oracle::new(benchmark.clone()));
    let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), seed));
    let pre = Arc::new(Preprocessed::run(benchmark.clone(), llm.as_ref()));
    Fixture { benchmark, pre, llm }
}

impl Fixture {
    fn pipeline(&self, config: PipelineConfig) -> Pipeline {
        Pipeline::new(self.pre.clone(), self.llm.clone(), config)
    }
}

#[test]
fn whole_experiments_are_deterministic() {
    let f = fixture(21);
    let dev = f.benchmark.dev.clone();
    let p1 = f.pipeline(PipelineConfig::fast());
    let a = evaluate(&p1, &dev, 4);
    let p2 = f.pipeline(PipelineConfig::fast());
    let b = evaluate(&p2, &dev, 2);
    assert_eq!(a.ex_g, b.ex_g);
    assert_eq!(a.ex_r, b.ex_r);
    assert_eq!(a.ex, b.ex);
    assert_eq!(a.r_ves, b.r_ves);

    // and a fully rebuilt world gives the same numbers
    let g = fixture(21);
    let p3 = g.pipeline(PipelineConfig::fast());
    let c = evaluate(&p3, &g.benchmark.dev.clone(), 4);
    assert_eq!(a.ex, c.ex);
}

#[test]
fn stage_metrics_are_ordered_and_bounded() {
    let f = fixture(22);
    let dev = f.benchmark.dev.clone();
    let report = evaluate(&f.pipeline(PipelineConfig::fast()), &dev, 4);
    assert!(report.ex_r >= report.ex_g - 1e-9, "refinement cannot hurt candidate 0: {report:?}");
    assert!((0.0..=100.0).contains(&report.ex));
    // R-VES is at most 1.25x EX by construction
    assert!(report.r_ves <= report.ex * 1.25 + 1e-9);
}

#[test]
fn full_pipeline_beats_zero_shot() {
    let f = fixture(23);
    let dev = f.benchmark.dev.clone();
    let zero = baselines::gpt4_zero_shot();
    let zero_report = evaluate(
        &Pipeline::new(
            f.pre.clone(),
            Arc::new(SimLlm::new(
                Arc::new(Oracle::new(f.benchmark.clone())),
                zero.profile.clone(),
                23,
            )),
            zero.config.clone(),
        ),
        &dev,
        4,
    );
    let full_report = evaluate(&f.pipeline(PipelineConfig::fast()), &dev, 4);
    assert!(
        full_report.ex > zero_report.ex,
        "full pipeline ({:.1}) must beat zero-shot ({:.1})",
        full_report.ex,
        zero_report.ex
    );
}

#[test]
fn vote_never_picks_invalid_candidate_when_a_valid_one_exists() {
    let f = fixture(24);
    let p = f.pipeline(PipelineConfig::fast());
    for ex in f.benchmark.dev.iter().take(15) {
        let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
        let any_valid = run.candidates.iter().any(|c| c.is_valid());
        if any_valid {
            assert!(
                run.candidates[run.winner].is_valid(),
                "vote must choose a valid candidate for {:?}",
                ex.question
            );
        }
    }
}

#[test]
fn final_sql_always_parses_when_a_candidate_parsed() {
    let f = fixture(25);
    let p = f.pipeline(PipelineConfig::fast());
    for ex in f.benchmark.dev.iter().take(20) {
        let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
        let any_parses = run
            .candidates
            .iter()
            .any(|c| sqlkit::parse_select(&c.sql).is_ok());
        if any_parses {
            // the winner may still be unparseable only if *it* errored and
            // nothing valid existed; when a valid candidate exists, the
            // final SQL must execute
            if run.candidates.iter().any(|c| c.is_valid()) {
                let db = f.benchmark.db(&ex.db_id).unwrap();
                db.database
                    .query(&run.final_sql)
                    .unwrap_or_else(|e| panic!("final SQL broken: {e}: {}", run.final_sql));
            }
        }
    }
}

#[test]
fn per_run_ledger_charges_every_active_stage() {
    use opensearch_sql::Module;
    let f = fixture(26);
    let p = f.pipeline(PipelineConfig::fast());
    let ex = &f.benchmark.dev[0];
    let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
    for m in [
        Module::Extraction,
        Module::EntityColumn,
        Module::Generation,
        Module::Refinement,
        Module::SelectAlign,
        Module::Alignments,
        Module::Vote,
    ] {
        assert!(run.ledger.get(m).calls > 0, "stage {m:?} must be charged");
    }
    assert!(run.ledger.get(Module::Generation).tokens > 100);
}

#[test]
fn weaker_model_profile_scores_lower() {
    let f = fixture(27);
    let dev = f.benchmark.dev.clone();
    let strong = evaluate(&f.pipeline(PipelineConfig::fast()), &dev, 4);
    let weak_llm = Arc::new(SimLlm::new(
        Arc::new(Oracle::new(f.benchmark.clone())),
        ModelProfile::gpt_4o_mini(),
        27,
    ));
    let weak_pipeline = Pipeline::new(f.pre.clone(), weak_llm, PipelineConfig::fast());
    let weak = evaluate(&weak_pipeline, &dev, 4);
    assert!(
        strong.ex > weak.ex,
        "gpt-4o ({:.1}) must beat gpt-4o-mini ({:.1})",
        strong.ex,
        weak.ex
    );
}

#[test]
fn correction_rounds_are_bounded_by_config() {
    let f = fixture(28);
    let mut config = PipelineConfig::fast();
    config.max_correction_rounds = 1;
    let p = f.pipeline(config);
    for ex in f.benchmark.dev.iter().take(15) {
        let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
        for c in &run.candidates {
            assert!(c.correction_rounds <= 1);
        }
    }
}

#[test]
fn sql_like_recovers_malformed_candidates() {
    let f = fixture(29);
    let ex = f
        .benchmark
        .dev
        .iter()
        .find(|e| e.spec.tables.len() >= 2)
        .expect("multi-table example");
    let db = f.benchmark.db(&ex.db_id).unwrap();
    let gold = db.database.query(&ex.gold_sql).unwrap();

    // a syntactically broken final SQL whose CoT still carries the logic
    let broken_sql = ex.gold_sql.replacen(" FROM ", " FORM ", 1);
    let sql_like = llmsim::render_sql_like(&ex.spec);
    let raw_text = format!("#reason: x\n#SQL-like: {sql_like}\n#SQL: {broken_sql}");

    let mut config = opensearch_sql::PipelineConfig::fast();
    config.correction = false; // isolate the SQL-Like repair path
    let mut ledger = opensearch_sql::CostLedger::new();
    let refined = opensearch_sql::refinement::refine_candidate(
        &f.pre,
        f.llm.as_ref() as &dyn llmsim::LanguageModel,
        &config,
        &ex.db_id,
        &ex.question,
        &ex.evidence,
        &opensearch_sql::ExtractionOutput::default(),
        &broken_sql,
        Some(&raw_text),
        0,
        &mut ledger,
    );
    let rs = refined
        .result
        .as_ref()
        .unwrap_or_else(|e| panic!("recovered SQL must execute: {e}: {}", refined.sql));
    assert!(rs.same_answer(&gold), "recovered answer must match gold: {}", refined.sql);

    // without the CoT text the broken SQL stays broken
    let unrecovered = opensearch_sql::refinement::refine_candidate(
        &f.pre,
        f.llm.as_ref() as &dyn llmsim::LanguageModel,
        &config,
        &ex.db_id,
        &ex.question,
        &ex.evidence,
        &opensearch_sql::ExtractionOutput::default(),
        &broken_sql,
        None,
        0,
        &mut ledger,
    );
    assert!(unrecovered.result.is_err());
}
