//! Corpus gate: the static analyzer must be silent on known-good SQL.
//!
//! Every gold SQL the datagen corpus emits executes successfully, so the
//! analyzer — whose certain-reject verdicts skip execution inside the
//! refinement loop — must produce **zero** diagnostics and no
//! `certain_error` on any of them. A single false positive here would
//! either pollute correction prompts with noise or, worse, veto a correct
//! candidate before it ever runs.

use datagen::{build::build_db, domain::themes, generator::sample_spec, Difficulty, RowScale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlkit::print_select;

/// Every gold SQL in the generated benchmark (train and dev, every
/// database) analyzes clean: no errors, no warnings, no certain reject.
#[test]
fn gold_corpus_analyzes_clean() {
    let bench = datagen::generate(&datagen::Profile::tiny());
    let mut checked = 0usize;
    for ex in bench.train.iter().chain(bench.dev.iter()) {
        let db = bench.db(&ex.db_id).expect("gold examples reference known dbs");
        let analysis = sqlkit::analyze_sql(&db.database.schema, &ex.gold_sql);
        assert!(
            analysis.diagnostics.is_empty(),
            "analyzer flagged gold SQL for {}:\n{}",
            ex.db_id,
            analysis.rendered(&ex.gold_sql)
        );
        assert!(
            analysis.certain_error.is_none(),
            "analyzer would reject gold SQL for {}: {:?}",
            ex.db_id,
            analysis.certain_error
        );
        checked += 1;
    }
    assert!(checked >= 50, "corpus covered: {checked}");
}

/// Broader surface: sampled query specs across themes and every
/// difficulty tier also analyze clean.
#[test]
fn sampled_specs_analyze_clean() {
    let lib = themes();
    for (theme_idx, seed) in [(1usize, 17u64), (5, 29), (9, 41), (14, 53), (18, 67)] {
        let db = build_db(&lib[theme_idx % lib.len()], "lint", "lint", RowScale::tiny(), 0.5, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for difficulty in Difficulty::all() {
            for _ in 0..6 {
                if let Some(spec) = sample_spec(&db, difficulty, &mut rng) {
                    let sql = print_select(&spec.to_sql(&db.database.schema));
                    let analysis = sqlkit::analyze_sql(&db.database.schema, &sql);
                    assert!(
                        analysis.diagnostics.is_empty() && analysis.certain_error.is_none(),
                        "analyzer flagged sampled spec:\n{}",
                        analysis.rendered(&sql)
                    );
                }
            }
        }
    }
}
