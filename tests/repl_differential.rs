//! Differential test: a read-only follower must be indistinguishable
//! from its primary once caught up. The whole replication path runs for
//! real — pack stores, commit live transactions, ship segments, seed and
//! poll a follower — then both sides serve the same questions over HTTP
//! and every follower response whose bounded-staleness floor is met must
//! be byte-identical to the primary's (volatile timing fields aside).
//! Floors above the applied position are refused outright, never
//! answered with stale data.

use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::PipelineConfig;
use osql_repl::{seed_if_missing, ship_store, Follower, FsShipDir, ReplState};
use osql_runtime::{AssetCache, Runtime, RuntimeConfig};
use osql_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osql-repl-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Minimal HTTP/1.1 client: one request per connection.
fn http(addr: SocketAddr, method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
    let mut msg = format!("{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n");
    for (k, v) in headers {
        msg.push_str(&format!("{k}: {v}\r\n"));
    }
    if !body.is_empty() {
        msg.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    msg.push_str("\r\n");
    msg.push_str(body);
    stream.write_all(msg.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status");
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .expect("content-length");
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).unwrap();
    (status, headers, String::from_utf8(body).unwrap())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

fn query_body(db_id: &str, question: &str, evidence: &str) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        "{{\"db_id\":\"{}\",\"question\":\"{}\",\"evidence\":\"{}\"}}",
        escape(db_id),
        escape(question),
        escape(evidence)
    )
}

/// Drop the volatile timing fields (`queue_wait_ms`, `total_ms`) whose
/// values legitimately differ between two servers; everything else in
/// the body must match byte for byte.
fn strip_volatile(body: &str) -> String {
    body.split(',')
        .filter(|part| !part.contains("\"queue_wait_ms\"") && !part.contains("\"total_ms\""))
        .collect::<Vec<_>>()
        .join(",")
}

/// A store-backed runtime over `dir`, deterministic for a fixed seed so
/// primary and follower produce identical pipelines.
fn paged_runtime(bench: &Arc<datagen::Benchmark>, dir: &Path) -> Arc<Runtime> {
    let llm = Arc::new(SimLlm::new(
        Arc::new(Oracle::new(bench.clone())),
        ModelProfile::gpt_4o(),
        0xD1FF,
    ));
    let catalog = Arc::new(
        osql_runtime::open_paged_catalog(dir, u64::MAX, &bench.name).expect("open catalog"),
    );
    let assets =
        Arc::new(AssetCache::paged(catalog, llm, PipelineConfig::fast(), &bench.train));
    Arc::new(Runtime::start(assets, RuntimeConfig::with_workers(2)))
}

#[test]
fn follower_answers_are_byte_identical_when_the_floor_is_met() {
    let root = tmpdir("serve");
    let primary_dir = root.join("primary");
    let ship_root = root.join("ship");
    let replica_dir = root.join("replica");
    std::fs::create_dir_all(&replica_dir).unwrap();

    let bench = Arc::new(datagen::generate(&datagen::Profile::tiny()));
    datagen::export_store(&bench, &primary_dir).unwrap();

    // commit live transactions on every primary store so the shipped
    // stream carries a real WAL suffix, not just the base snapshot
    let mut store_paths: Vec<(String, PathBuf)> = bench
        .dbs
        .iter()
        .map(|db| (db.id.clone(), primary_dir.join(format!("{}.store", db.id))))
        .collect();
    store_paths.sort();
    for (i, (_, path)) in store_paths.iter().enumerate() {
        let (mut store, _) = osql_store::Store::open(path).unwrap();
        store
            .execute("CREATE TABLE repl_diff_probe (id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        store.execute(&format!("INSERT INTO repl_diff_probe VALUES ({i}, 'x')")).unwrap();
        store.commit().unwrap();
    }

    // ship → seed → apply, publishing positions the follower serves by
    let state = Arc::new(ReplState::new(1));
    for (db, path) in &store_paths {
        let media = FsShipDir::open(&ship_root.join(db)).unwrap();
        ship_store(path, &media).unwrap();
        let replica_store = replica_dir.join(format!("{db}.store"));
        assert!(seed_if_missing(&replica_store, &media).unwrap(), "bootstrap from BASE");
        let (mut follower, _) = Follower::open(&replica_store).unwrap();
        let report = follower.poll(&media).unwrap();
        assert_eq!(report.applied_seq, report.target_seq, "caught up");
        assert!(report.applied_txns > 0, "the live suffix actually shipped");
        state.note_poll(db, &report);
    }

    let primary_rt = paged_runtime(&bench, &primary_dir);
    let follower_rt = paged_runtime(&bench, &replica_dir);
    let primary =
        Server::start(primary_rt, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let follower = Server::start(
        follower_rt,
        "127.0.0.1:0",
        ServerConfig { repl: Some(state.clone()), ..ServerConfig::default() },
    )
    .unwrap();

    for (i, ex) in bench.dev.iter().take(6).enumerate() {
        let applied = state.applied_seq(&ex.db_id).expect("polled above");
        let trace_id = format!("diff-{i}");
        let body = query_body(&ex.db_id, &ex.question, &ex.evidence);
        // any floor at or below the applied position must be served
        // byte-identically to the primary; asking both sides pairwise
        // keeps their result-cache progression (`from_cache`) in step
        for min_seq in [0, applied / 2, applied] {
            let (p_status, _, p_body) = http(
                primary.local_addr(),
                "POST",
                "/v1/query",
                &[("x-osql-trace-id", &trace_id)],
                &body,
            );
            assert_eq!(p_status, 200, "{p_body}");
            let (f_status, f_headers, f_body) = http(
                follower.local_addr(),
                "POST",
                "/v1/query",
                &[("x-osql-trace-id", &trace_id), ("x-osql-min-seq", &min_seq.to_string())],
                &body,
            );
            assert_eq!(f_status, 200, "floor {min_seq} of {applied}: {f_body}");
            assert_eq!(
                header(&f_headers, "x-osql-applied-seq"),
                Some(applied.to_string().as_str())
            );
            assert_eq!(
                strip_volatile(&p_body),
                strip_volatile(&f_body),
                "follower diverged from primary at floor {min_seq}"
            );
        }

        // a floor past the applied position is refused, never answered
        // with data older than the request demanded
        let (f_status, _, f_body) = http(
            follower.local_addr(),
            "POST",
            "/v1/query",
            &[("x-osql-min-seq", &(applied + 1).to_string())],
            &body,
        );
        assert_eq!(f_status, 503, "{f_body}");
        assert!(f_body.contains("replica not caught up"), "{f_body}");
        assert!(!f_body.contains("\"sql\""), "stale rejection must not leak data: {f_body}");
    }

    assert!(primary.shutdown());
    assert!(follower.shutdown());
    std::fs::remove_dir_all(&root).unwrap();
}

/// After promotion the old follower serves as a primary whose committed
/// state still matches what the old primary shipped — and it accepts
/// new writes, continuing the sequence.
#[test]
fn a_promoted_follower_matches_the_primary_it_replaced() {
    let root = tmpdir("promote");
    let primary_dir = root.join("primary");
    let ship_root = root.join("ship");
    let replica_dir = root.join("replica");
    std::fs::create_dir_all(&replica_dir).unwrap();

    let bench = Arc::new(datagen::generate(&datagen::Profile::tiny()));
    datagen::export_store(&bench, &primary_dir).unwrap();
    let db = bench.dbs[0].id.clone();
    let primary_store = primary_dir.join(format!("{db}.store"));
    let (mut store, _) = osql_store::Store::open(&primary_store).unwrap();
    store.execute("CREATE TABLE handoff (id INTEGER PRIMARY KEY)").unwrap();
    store.execute("INSERT INTO handoff VALUES (1)").unwrap();
    let shipped_seq = store.commit().unwrap();
    drop(store);

    let media = FsShipDir::open(&ship_root.join(&db)).unwrap();
    ship_store(&primary_store, &media).unwrap();
    let replica_store = replica_dir.join(format!("{db}.store"));
    seed_if_missing(&replica_store, &media).unwrap();
    let (mut follower, _) = Follower::open(&replica_store).unwrap();
    follower.poll(&media).unwrap();
    let (mut promoted, report) = follower.promote().unwrap();
    assert_eq!(report.promoted_at_seq, shipped_seq);

    // identical committed state on both sides of the handoff
    let (primary_side, _) = osql_store::Store::open(&primary_store).unwrap();
    assert_eq!(
        format!("{:?}", primary_side.database().rows("handoff").unwrap()),
        format!("{:?}", promoted.database().rows("handoff").unwrap()),
    );

    // the promoted store is a writable primary continuing the sequence
    promoted.execute("INSERT INTO handoff VALUES (2)").unwrap();
    assert_eq!(promoted.commit().unwrap(), shipped_seq + 1);

    std::fs::remove_dir_all(&root).unwrap();
}
