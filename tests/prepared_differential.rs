//! Differential tests for the prepared-execution fast path.
//!
//! The contract of `prepare` + the plan cache is *zero observable
//! difference*: for every statement the corpus can produce, the bound,
//! constant-folded plan must return byte-identical rows **and** identical
//! execution statistics (rows_scanned feeds the vote tie-break and R-VES,
//! so a drifting counter would silently change answers). Likewise,
//! refining candidates on N threads must leave every deterministic report
//! field of a pipeline run unchanged.

use datagen::{build::build_db, domain::themes, generator::sample_spec, Difficulty, RowScale};
use opensearch_sql::{Pipeline, PipelineConfig, Preprocessed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlkit::{execute_select_with_stats, parse_select, print_select};
use std::sync::Arc;

/// Execute `sql` raw (parse + name-resolving executor) and prepared
/// (parse + bind + fold once), asserting identical outcomes.
fn assert_raw_matches_prepared(db: &sqlkit::Database, sql: &str) {
    let raw = parse_select(sql).map(|stmt| execute_select_with_stats(db, &stmt));
    let prepared = sqlkit::prepare(db, sql).map(|plan| plan.execute_with_stats(db));
    match (raw, prepared) {
        (Ok(Ok((rs_raw, st_raw))), Ok(Ok((rs_pre, st_pre)))) => {
            assert_eq!(rs_raw, rs_pre, "rows differ for {sql}");
            assert_eq!(st_raw, st_pre, "exec stats differ for {sql}");
        }
        (Ok(Err(e_raw)), Ok(Err(e_pre))) => {
            assert_eq!(e_raw.to_string(), e_pre.to_string(), "errors differ for {sql}");
        }
        (Err(e_raw), Err(e_pre)) => {
            assert_eq!(e_raw.to_string(), e_pre.to_string(), "parse errors differ for {sql}");
        }
        (raw, prepared) => panic!("outcome class differs for {sql}: raw={raw:?} prepared={prepared:?}"),
    }
}

/// Every gold SQL in the generated corpus (train and dev, every database)
/// runs identically raw and prepared.
#[test]
fn corpus_gold_sql_matches_raw_execution() {
    let bench = datagen::generate(&datagen::Profile::tiny());
    let mut checked = 0usize;
    for ex in bench.train.iter().chain(bench.dev.iter()) {
        let db = bench.db(&ex.db_id).expect("gold examples reference known dbs");
        assert_raw_matches_prepared(&db.database, &ex.gold_sql);
        checked += 1;
    }
    assert!(checked >= 50, "corpus covered: {checked}");
}

/// Broader SQL surface: sampled query specs across themes and every
/// difficulty tier, same differential.
#[test]
fn sampled_specs_match_raw_execution() {
    let lib = themes();
    for (theme_idx, seed) in [(0usize, 11u64), (3, 22), (7, 33), (12, 44), (19, 55)] {
        let db = build_db(&lib[theme_idx % lib.len()], "diff", "diff", RowScale::tiny(), 0.5, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for difficulty in Difficulty::all() {
            for _ in 0..6 {
                if let Some(spec) = sample_spec(&db, difficulty, &mut rng) {
                    let sql = print_select(&spec.to_sql(&db.database.schema));
                    assert_raw_matches_prepared(&db.database, &sql);
                }
            }
        }
    }
}

/// A pipeline refining on one thread and one refining on several must
/// produce identical runs, field for field, over the whole dev split.
/// (Wall-clock ledger timings are the only nondeterministic fields and are
/// excluded.)
#[test]
fn pipeline_runs_identical_across_refine_threads() {
    let bench = Arc::new(datagen::generate(&datagen::Profile::tiny()));
    let oracle = Arc::new(llmsim::Oracle::new(bench.clone()));
    let llm = Arc::new(llmsim::SimLlm::new(oracle, llmsim::ModelProfile::gpt_4o(), 5));
    let pre = Arc::new(Preprocessed::run(bench.clone(), llm.as_ref()));
    let seq = Pipeline::new(pre.clone(), llm.clone(), PipelineConfig::fast());
    let par = Pipeline::new(pre, llm, PipelineConfig::fast().with_refine_threads(3));
    for ex in &bench.dev {
        let a = seq.answer(&ex.db_id, &ex.question, &ex.evidence);
        let b = par.answer(&ex.db_id, &ex.question, &ex.evidence);
        assert_eq!(a.sql_g, b.sql_g, "{}", ex.question);
        assert_eq!(a.sql_r, b.sql_r, "{}", ex.question);
        assert_eq!(a.final_sql, b.final_sql, "{}", ex.question);
        assert_eq!(a.winner, b.winner, "{}", ex.question);
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(ca.raw_sql, cb.raw_sql);
            assert_eq!(ca.sql, cb.sql);
            assert_eq!(ca.exec_cost, cb.exec_cost);
            assert_eq!(ca.correction_rounds, cb.correction_rounds);
            match (&ca.result, &cb.result) {
                (Ok(ra), Ok(rb)) => assert_eq!(ra, rb, "{}", ex.question),
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
                _ => panic!("result class differs for {}", ex.question),
            }
        }
        for m in opensearch_sql::Module::all() {
            assert_eq!(a.ledger.get(m).tokens, b.ledger.get(m).tokens, "{m:?} tokens");
            assert_eq!(a.ledger.get(m).calls, b.ledger.get(m).calls, "{m:?} calls");
        }
    }
}
