//! Determinism under concurrency: the `osql-runtime` worker pool must be
//! an invisible implementation detail. Whatever the worker count, queue
//! pressure, or cache state, the answers — and therefore every EX/R-VES
//! number — must match the sequential pipeline bit for bit.

use datagen::{generate, Profile};
use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::{evaluate, EvalReport, Pipeline, PipelineConfig, Preprocessed};
use osql_runtime::{AssetCache, QueryRequest, Runtime, RuntimeConfig};
use std::sync::Arc;

struct Fixture {
    benchmark: Arc<datagen::Benchmark>,
    pre: Arc<Preprocessed>,
    llm: Arc<SimLlm>,
}

fn fixture(seed: u64) -> Fixture {
    let mut profile = Profile::tiny();
    profile.train = 50;
    profile.dev = 30;
    profile.n_databases = 3;
    profile.n_domains = 3;
    let benchmark = Arc::new(generate(&profile));
    let oracle = Arc::new(Oracle::new(benchmark.clone()));
    let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), seed));
    let pre = Arc::new(Preprocessed::run(benchmark.clone(), llm.as_ref()));
    Fixture { benchmark, pre, llm }
}

impl Fixture {
    fn pipeline(&self) -> Pipeline {
        Pipeline::new(self.pre.clone(), self.llm.clone(), PipelineConfig::fast())
    }

    fn runtime(&self, workers: usize) -> Runtime {
        let assets = Arc::new(AssetCache::warmed_by(
            &self.pre,
            self.llm.clone(),
            PipelineConfig::fast(),
        ));
        Runtime::start(
            assets,
            RuntimeConfig { workers, queue_capacity: 8, result_cache_capacity: 128, trace_capacity: 64, ..RuntimeConfig::default() },
        )
    }
}

fn assert_reports_equal(a: &EvalReport, b: &EvalReport, context: &str) {
    assert_eq!(a.n, b.n, "n differs: {context}");
    assert_eq!(a.ex_g, b.ex_g, "ex_g differs: {context}");
    assert_eq!(a.ex_r, b.ex_r, "ex_r differs: {context}");
    assert_eq!(a.ex, b.ex, "ex differs: {context}");
    assert_eq!(a.r_ves, b.r_ves, "r_ves differs: {context}");
    assert_eq!(a.by_difficulty, b.by_difficulty, "by_difficulty differs: {context}");
}

#[test]
fn evaluate_is_invariant_to_scoring_thread_count() {
    let f = fixture(31);
    let dev = f.benchmark.dev.clone();
    let one = evaluate(&f.pipeline(), &dev, 1);
    let eight = evaluate(&f.pipeline(), &dev, 8);
    assert_reports_equal(&one, &eight, "threads=1 vs threads=8");
}

#[test]
fn runtime_ex_matches_sequential_at_any_worker_count() {
    let f = fixture(32);
    let dev = f.benchmark.dev.clone();
    let sequential = evaluate(&f.pipeline(), &dev, 2);
    for workers in [1usize, 2, 4, 8] {
        let rt = f.runtime(workers);
        let served = rt.evaluate(&dev, 2);
        assert_reports_equal(&sequential, &served, &format!("{workers} worker(s)"));
    }
}

#[test]
fn result_cache_serves_the_same_sql_as_the_cold_run() {
    let f = fixture(33);
    let rt = f.runtime(4);
    let requests: Vec<QueryRequest> = f
        .benchmark
        .dev
        .iter()
        .take(10)
        .map(|ex| QueryRequest::new(&ex.db_id, &ex.question, &ex.evidence))
        .collect();

    let cold: Vec<String> = rt
        .run_batch(requests.clone())
        .into_iter()
        .map(|r| r.expect("cold batch must serve").run.final_sql.clone())
        .collect();
    let warm: Vec<(String, bool)> = rt
        .run_batch(requests)
        .into_iter()
        .map(|r| {
            let resp = r.expect("warm batch must serve");
            (resp.run.final_sql.clone(), resp.from_cache)
        })
        .collect();

    for (i, ((cold_sql, (warm_sql, from_cache)), ex)) in
        cold.iter().zip(&warm).zip(f.benchmark.dev.iter()).enumerate()
    {
        assert!(from_cache, "request {i} ({:?}) missed the warm cache", ex.question);
        assert_eq!(cold_sql, warm_sql, "request {i} ({:?}) changed under caching", ex.question);
    }
    assert_eq!(rt.results().hits(), 10);
}
