//! Differential suite for demand-paged serving: a runtime paging its
//! databases out of `osql-store` files must be an invisible
//! implementation detail. At any eviction budget — everything resident,
//! half, or room for a single database — every served answer, every
//! logical trace (volatile events excluded), and every EX/R-VES number
//! must match the eager in-memory runtime exactly.

use datagen::{generate, Benchmark, Example, Profile};
use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::{evaluate_with, EvalReport, PipelineConfig};
use osql_runtime::{open_paged_catalog, AssetCache, QueryRequest, Runtime, RuntimeConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osql-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Fixture {
    benchmark: Arc<Benchmark>,
    llm: Arc<SimLlm>,
    dir: PathBuf,
    store_sizes: Vec<u64>,
}

fn fixture(tag: &str) -> Fixture {
    let mut profile = Profile::tiny();
    profile.train = 40;
    profile.dev = 24;
    profile.n_databases = 4;
    profile.n_domains = 4;
    let benchmark = Arc::new(generate(&profile));
    let llm = Arc::new(SimLlm::new(
        Arc::new(Oracle::new(benchmark.clone())),
        ModelProfile::gpt_4o(),
        0x57E0,
    ));
    let dir = tmpdir(tag);
    let paths = datagen::export_store(&benchmark, &dir).unwrap();
    let store_sizes =
        paths.iter().map(|p| std::fs::metadata(p).unwrap().len()).collect();
    Fixture { benchmark, llm, dir, store_sizes }
}

impl Fixture {
    fn eager_runtime(&self) -> Runtime {
        let assets = Arc::new(AssetCache::new(
            self.benchmark.clone(),
            self.llm.clone(),
            PipelineConfig::fast(),
        ));
        Runtime::start(assets, RuntimeConfig::with_workers(2))
    }

    fn paged_runtime(&self, budget: u64) -> Runtime {
        let catalog =
            Arc::new(open_paged_catalog(&self.dir, budget, &self.benchmark.name).unwrap());
        let assets = Arc::new(AssetCache::paged(
            catalog,
            self.llm.clone(),
            PipelineConfig::fast(),
            &self.benchmark.train,
        ));
        Runtime::start(assets, RuntimeConfig::with_workers(2))
    }

    /// Budgets the acceptance criteria name: everything resident, half,
    /// and just enough for the single largest database.
    fn budgets(&self) -> [(u64, &'static str); 3] {
        let total: u64 = self.store_sizes.iter().sum();
        let single = *self.store_sizes.iter().max().unwrap();
        [(total, "100%"), ((total / 2).max(single), "50%"), (single, "min-single-db")]
    }

    fn requests(&self) -> Vec<QueryRequest> {
        self.benchmark
            .dev
            .iter()
            .map(|ex| QueryRequest::new(&ex.db_id, &ex.question, &ex.evidence))
            .collect()
    }
}

fn assert_reports_equal(a: &EvalReport, b: &EvalReport, context: &str) {
    assert_eq!(a.n, b.n, "n differs: {context}");
    assert_eq!(a.ex_g, b.ex_g, "ex_g differs: {context}");
    assert_eq!(a.ex_r, b.ex_r, "ex_r differs: {context}");
    assert_eq!(a.ex, b.ex, "ex differs: {context}");
    assert_eq!(a.r_ves, b.r_ves, "r_ves differs: {context}");
    assert_eq!(a.by_difficulty, b.by_difficulty, "by_difficulty differs: {context}");
}

#[test]
fn paged_serving_is_byte_identical_to_in_memory_at_any_budget() {
    let f = fixture("serve");
    let requests = f.requests();
    let eager = f.eager_runtime();
    let baseline: Vec<(String, usize, String, String)> = eager
        .run_batch(requests.clone())
        .into_iter()
        .map(|r| {
            let run = r.expect("eager runtime must serve").run;
            (
                run.final_sql.clone(),
                run.winner,
                run.sql_g.clone(),
                run.trace.render_logical(),
            )
        })
        .collect();

    for (budget, label) in f.budgets() {
        let rt = f.paged_runtime(budget);
        let served = rt.run_batch(requests.clone());
        assert_eq!(served.len(), baseline.len());
        for (i, (outcome, want)) in served.into_iter().zip(&baseline).enumerate() {
            let run = outcome
                .unwrap_or_else(|e| panic!("budget {label}: request {i} failed: {e}"))
                .run;
            assert_eq!(run.final_sql, want.0, "budget {label}: final_sql differs at {i}");
            assert_eq!(run.winner, want.1, "budget {label}: winner differs at {i}");
            assert_eq!(run.sql_g, want.2, "budget {label}: sql_g differs at {i}");
            assert_eq!(
                run.trace.render_logical(),
                want.3,
                "budget {label}: logical trace differs at {i}"
            );
        }
        let cat = rt.assets().catalog().unwrap();
        assert!(
            cat.resident_bytes() <= budget,
            "budget {label}: {} resident bytes exceed the {budget} budget",
            cat.resident_bytes()
        );
    }
    std::fs::remove_dir_all(&f.dir).unwrap();
}

#[test]
fn paged_eval_scores_match_in_memory_at_any_budget() {
    let f = fixture("eval");
    let dev: Vec<Example> = f.benchmark.dev.clone();
    let eager = f.eager_runtime();
    let want = evaluate_with(&eager, &f.benchmark, &dev, 2);
    for (budget, label) in f.budgets() {
        let rt = f.paged_runtime(budget);
        let got = evaluate_with(&rt, &f.benchmark, &dev, 2);
        assert_reports_equal(&want, &got, &format!("budget {label}"));
    }
    std::fs::remove_dir_all(&f.dir).unwrap();
}

#[test]
fn under_budget_catalog_still_serves_every_question_and_evicts() {
    let f = fixture("tight");
    let total: u64 = f.store_sizes.iter().sum();
    let single = *f.store_sizes.iter().max().unwrap();
    assert!(single < total, "fixture needs more than one database");
    let rt = f.paged_runtime(single);
    for outcome in rt.run_batch(f.requests()) {
        let resp = outcome.expect("a one-db budget must still serve every question");
        assert!(resp.run.final_sql.to_uppercase().starts_with("SELECT"));
    }
    let cat = rt.assets().catalog().unwrap();
    assert!(cat.evictions() > 0, "thrashing across dbs under a one-db budget must evict");
    assert!(cat.resident_bytes() <= single);
    assert_eq!(
        rt.metrics().counter("db_load_total").get(),
        cat.loads(),
        "metrics mirror tracks the catalog"
    );
    assert!(rt.metrics().counter("db_evict_total").get() > 0);
    std::fs::remove_dir_all(&f.dir).unwrap();
}
