//! Differential suite for the cost-based physical planner and pipelined
//! executor.
//!
//! The plan cache routes hot statements through the physical plan
//! (index scans, index joins, streaming residual filters); its contract
//! is *byte-identical rows* to the legacy materialising interpreter for
//! every statement the corpus can produce — execution statistics may
//! legitimately differ between executors, result bytes may not. The
//! suite also pins that demand-paged serving with persisted index
//! sections is indistinguishable from in-memory serving, and that
//! changing a database's index set invalidates its cached plans.

use datagen::{build::build_db, domain::themes, generator::sample_spec, Difficulty, RowScale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlkit::{parse_select, plan_fingerprint, print_select, PlanCache};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osql-planner-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Execute `sql` on the legacy interpreter and through the plan cache's
/// planned path, asserting identical rows (or identical errors).
/// Returns whether the statement lowered to a physical plan.
fn assert_legacy_matches_planned(cache: &PlanCache, db: &sqlkit::Database, sql: &str) -> bool {
    let legacy = parse_select(sql).map(|stmt| sqlkit::execute_select(db, &stmt));
    let planned = cache.execute(db, sql);
    match (legacy, planned) {
        (Ok(Ok(rs_legacy)), Ok((rs_planned, _))) => {
            assert_eq!(rs_legacy, rs_planned, "rows differ for {sql}");
        }
        (Ok(Err(e_legacy)), Err(e_planned)) => {
            assert_eq!(e_legacy.to_string(), e_planned.to_string(), "errors differ for {sql}");
        }
        (Err(e_legacy), Err(e_planned)) => {
            assert_eq!(
                e_legacy.to_string(),
                e_planned.to_string(),
                "parse errors differ for {sql}"
            );
        }
        (legacy, planned) => {
            panic!("outcome class differs for {sql}: legacy={legacy:?} planned={planned:?}")
        }
    }
    cache.prepared(db, sql).map(|p| p.is_planned()).unwrap_or(false)
}

/// Every gold SQL in the generated corpus (train and dev, every database,
/// default indexes declared) returns byte-identical rows planned and
/// legacy — and a healthy share of the corpus actually lowers.
#[test]
fn corpus_gold_sql_matches_legacy_execution() {
    let bench = datagen::generate(&datagen::Profile::tiny());
    let cache = PlanCache::new(512);
    let (mut checked, mut planned) = (0usize, 0usize);
    for ex in bench.train.iter().chain(bench.dev.iter()) {
        let db = bench.db(&ex.db_id).expect("gold examples reference known dbs");
        planned += usize::from(assert_legacy_matches_planned(&cache, &db.database, &ex.gold_sql));
        checked += 1;
    }
    assert!(checked >= 50, "corpus covered: {checked}");
    assert!(
        planned * 4 >= checked,
        "planner engagement collapsed: {planned} of {checked} statements lowered"
    );
}

/// Broader SQL surface: sampled query specs across themes and every
/// difficulty tier, same differential.
#[test]
fn sampled_specs_match_legacy_execution() {
    let lib = themes();
    let cache = PlanCache::new(512);
    for (theme_idx, seed) in [(0usize, 11u64), (3, 22), (7, 33), (12, 44), (19, 55)] {
        let db = build_db(&lib[theme_idx % lib.len()], "diff", "diff", RowScale::tiny(), 0.5, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for difficulty in Difficulty::all() {
            for _ in 0..6 {
                if let Some(spec) = sample_spec(&db, difficulty, &mut rng) {
                    let sql = print_select(&spec.to_sql(&db.database.schema));
                    assert_legacy_matches_planned(&cache, &db.database, &sql);
                }
            }
        }
    }
}

/// A database round-tripped through a store file (index sections
/// included) must answer every gold statement byte-identically to the
/// in-memory original, and with the same planning fingerprint.
#[test]
fn paged_databases_with_indexes_serve_identical_rows() {
    let bench = datagen::generate(&datagen::Profile::tiny());
    let dir = tmpdir("paged");
    let mem_cache = PlanCache::new(512);
    let paged_cache = PlanCache::new(512);
    for db in &bench.dbs {
        let path = dir.join(format!("{}.store", db.id));
        osql_store::write_database(&path, &db.database, &[], 0).unwrap();
        let loaded = osql_store::read_database(&path).unwrap().database;
        assert_eq!(
            plan_fingerprint(&loaded),
            plan_fingerprint(&db.database),
            "{}: index declarations must survive the store round trip",
            db.id
        );
        for ex in bench.train.iter().chain(bench.dev.iter()).filter(|e| e.db_id == db.id) {
            let mem = mem_cache.execute(&db.database, &ex.gold_sql);
            let paged = paged_cache.execute(&loaded, &ex.gold_sql);
            match (mem, paged) {
                (Ok((rs_mem, _)), Ok((rs_paged, _))) => {
                    assert_eq!(rs_mem, rs_paged, "rows differ for {}", ex.gold_sql)
                }
                (Err(e_mem), Err(e_paged)) => {
                    assert_eq!(e_mem.to_string(), e_paged.to_string())
                }
                (mem, paged) => panic!(
                    "outcome class differs for {}: mem={mem:?} paged={paged:?}",
                    ex.gold_sql
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Creating an index changes the database's planning fingerprint, so the
/// plan cache re-prepares instead of serving a stale plan — and the
/// re-prepared statement starts using the new index.
#[test]
fn index_set_changes_invalidate_cached_plans() {
    let mut db = sqlkit::Database::new("inval");
    let mut script =
        String::from("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, label TEXT);\n");
    for i in 0..300 {
        script.push_str(&format!("INSERT INTO t VALUES ({i}, {}, 'x{i}');\n", i % 30));
    }
    db.execute_script(&script).unwrap();

    let cache = PlanCache::new(64);
    let sql = "SELECT label FROM t WHERE grp = 7 ORDER BY id";
    let before = cache.prepared(&db, sql).unwrap();
    let (rows_before, _) = cache.execute(&db, sql).unwrap();

    db.create_index("t", "grp").unwrap();
    let after = cache.prepared(&db, sql).unwrap();
    assert!(
        !Arc::ptr_eq(&before, &after),
        "cached plan survived an index-set change"
    );
    assert_ne!(before.fingerprint(), after.fingerprint());

    let ix_before = cache.stats().ix_scans;
    let (rows_after, _) = cache.execute(&db, sql).unwrap();
    assert_eq!(rows_before, rows_after, "index must not change results");
    assert!(
        cache.stats().ix_scans > ix_before,
        "re-prepared plan should drive the new index"
    );
}
