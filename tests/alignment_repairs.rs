//! Failure-injection tests: feed the alignment agents systematically
//! corrupted SQL (via the simulator's own hallucination engine) and verify
//! each repair class does its job — and nothing else's.

use datagen::{generate, Profile};
use llmsim::{Candidate, ErrorClass, ModelProfile, PromptQuality, Suppression};
use opensearch_sql::{align_candidate, CostLedger, ValueIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

struct Lab {
    bench: datagen::Benchmark,
    indexes: HashMap<String, ValueIndex>,
}

impl Lab {
    fn new() -> Lab {
        let mut profile = Profile::tiny();
        profile.train = 40;
        profile.dev = 60;
        let bench = generate(&profile);
        let indexes = bench
            .dbs
            .iter()
            .map(|db| (db.id.clone(), ValueIndex::build(db)))
            .collect();
        Lab { bench, indexes }
    }

    /// Corrupt every dev example with the given suppression map inverted:
    /// only `class` is allowed to fire (everything else suppressed to 0).
    fn corrupt_only(&self, class: ErrorClass) -> Vec<(String, Candidate, String)> {
        let profile = ModelProfile::gpt_4o();
        let mut suppression = Suppression::new();
        for c in ErrorClass::all() {
            suppression.insert(c, if c == class { 40.0 } else { 0.0 });
        }
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(77);
        for ex in &self.bench.dev {
            let db = self.bench.db(&ex.db_id).unwrap();
            let quality = PromptQuality::default();
            let ctx = llmsim::corrupt::SampleCtx {
                profile: &profile,
                db,
                quality: &quality,
                difficulty: ex.difficulty,
                temperature: 0.7,
                sample_idx: 0,
                suppression: &suppression,
            };
            let cand = llmsim::corrupt::sample_candidate(&ctx, &ex.spec, &mut rng);
            if cand.applied == vec![class] {
                out.push((ex.db_id.clone(), cand, ex.gold_sql.clone()));
            }
        }
        out
    }

    fn align(&self, db_id: &str, sql: &str) -> String {
        let db = self.bench.db(db_id).unwrap();
        let mut ledger = CostLedger::new();
        align_candidate(sql, &db.database.schema, &self.indexes[db_id], None, &mut ledger).sql
    }
}

#[test]
fn agent_alignment_repairs_wrong_columns() {
    let lab = Lab::new();
    let cases = lab.corrupt_only(ErrorClass::WrongColumn);
    assert!(!cases.is_empty(), "injector must produce WrongColumn cases");
    let mut repaired = 0;
    for (db_id, cand, _gold) in &cases {
        let db = lab.bench.db(db_id).unwrap();
        assert!(db.database.query(&cand.sql).is_err(), "mangled column must error: {}", cand.sql);
        let fixed = lab.align(db_id, &cand.sql);
        if db.database.query(&fixed).is_ok() {
            repaired += 1;
        }
    }
    assert!(
        repaired * 10 >= cases.len() * 7,
        "agent alignment should repair most mangles: {repaired}/{}",
        cases.len()
    );
}

#[test]
fn function_alignment_repairs_order_by_aggregates() {
    let lab = Lab::new();
    let cases = lab.corrupt_only(ErrorClass::AggInOrderBy);
    assert!(!cases.is_empty(), "injector must produce AggInOrderBy cases");
    for (db_id, cand, gold) in &cases {
        let fixed = lab.align(db_id, &cand.sql);
        assert_eq!(&fixed, gold, "function alignment restores the gold ORDER BY");
    }
}

#[test]
fn style_alignment_repairs_extremum_subqueries() {
    let lab = Lab::new();
    let cases = lab.corrupt_only(ErrorClass::RankedAsSubquery);
    assert!(!cases.is_empty(), "injector must produce RankedAsSubquery cases");
    let mut exact = 0;
    for (db_id, cand, gold) in &cases {
        let fixed = lab.align(db_id, &cand.sql);
        assert!(
            !fixed.to_uppercase().contains("(SELECT MAX")
                && !fixed.to_uppercase().contains("(SELECT MIN"),
            "style alignment must remove the subquery: {fixed}"
        );
        if &fixed == gold {
            exact += 1;
        }
    }
    assert!(exact * 10 >= cases.len() * 7, "mostly exact restorations: {exact}/{}", cases.len());
}

#[test]
fn value_alignment_repairs_surface_forms() {
    let lab = Lab::new();
    let cases = lab.corrupt_only(ErrorClass::ValueMismatch);
    assert!(!cases.is_empty(), "injector must produce ValueMismatch cases");
    let mut improved = 0;
    for (db_id, cand, gold) in &cases {
        let db = lab.bench.db(db_id).unwrap();
        let gold_rs = db.database.query(gold).unwrap();
        let fixed = lab.align(db_id, &cand.sql);
        if let Ok(rs) = db.database.query(&fixed) {
            if rs.same_answer(&gold_rs) {
                improved += 1;
            }
        }
    }
    assert!(
        improved * 10 >= cases.len() * 7,
        "value alignment should restore most answers: {improved}/{}",
        cases.len()
    );
}

#[test]
fn alignment_leaves_vote_only_errors_alone() {
    // OrderFlip executes fine and is semantically plausible; alignment must
    // not touch it (only voting can) — this guards against over-eager
    // rewriting.
    let lab = Lab::new();
    let cases = lab.corrupt_only(ErrorClass::OrderFlip);
    assert!(!cases.is_empty());
    for (db_id, cand, _) in &cases {
        let fixed = lab.align(db_id, &cand.sql);
        assert_eq!(fixed, cand.sql, "alignment must not second-guess sort direction");
    }
}

#[test]
fn clean_gold_sql_is_never_changed() {
    let lab = Lab::new();
    for ex in lab.bench.dev.iter().take(40) {
        let fixed = lab.align(&ex.db_id, &ex.gold_sql);
        assert_eq!(fixed, ex.gold_sql, "alignment must be the identity on gold SQL");
    }
}
