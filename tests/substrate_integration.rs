//! Integration across the substrates: benchmark generation × SQL engine ×
//! retrieval × simulated model, independent of the pipeline.

use datagen::{generate, Profile};
use llmsim::{proto, ChatRequest, LanguageModel, ModelProfile, Oracle, SimLlm};
use opensearch_sql::ValueIndex;
use std::sync::Arc;

fn benchmark() -> Arc<datagen::Benchmark> {
    let mut profile = Profile::tiny();
    profile.train = 50;
    profile.dev = 30;
    profile.n_databases = 4;
    profile.n_domains = 4;
    Arc::new(generate(&profile))
}

#[test]
fn every_gold_sql_round_trips_through_the_engine() {
    let b = benchmark();
    for ex in b.train.iter().chain(&b.dev) {
        let db = b.db(&ex.db_id).unwrap();
        let ast = sqlkit::parse_select(&ex.gold_sql)
            .unwrap_or_else(|e| panic!("gold does not parse: {e}: {}", ex.gold_sql));
        assert_eq!(
            sqlkit::parse_select(&sqlkit::print_select(&ast)).unwrap(),
            ast,
            "gold round-trips"
        );
        let rs = db.database.query(&ex.gold_sql).unwrap();
        assert!(!rs.is_effectively_empty(), "gold answers are non-empty: {}", ex.gold_sql);
    }
}

#[test]
fn value_index_covers_every_gold_text_filter() {
    let b = benchmark();
    for db in &b.dbs {
        let index = ValueIndex::build(db);
        for ex in b.dev.iter().filter(|e| e.db_id == db.id) {
            for f in &ex.spec.filters {
                if let sqlkit::Value::Text(stored) = &f.value {
                    if f.year_of_date {
                        continue;
                    }
                    let meta = db.col_meta(&f.table, &f.column).unwrap();
                    if meta.kind.is_textual() {
                        assert!(
                            index.contains(&f.table, &f.column, stored),
                            "index must hold {}.{} = {stored:?}",
                            f.table,
                            f.column
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn retrieval_finds_stored_forms_from_question_wording() {
    let b = benchmark();
    let mut total = 0;
    let mut found = 0;
    for db in &b.dbs {
        let index = ValueIndex::build(db);
        for ex in b.dev.iter().filter(|e| e.db_id == db.id) {
            for f in &ex.spec.filters {
                let sqlkit::Value::Text(stored) = &f.value else { continue };
                if f.year_of_date || !f.display_mismatch() {
                    continue;
                }
                total += 1;
                let hits = index.retrieve(&f.display, 5, 0.4);
                if hits.iter().any(|h| h.stored == *stored) {
                    found += 1;
                }
            }
        }
    }
    if total > 0 {
        let recall = found as f64 / total as f64;
        assert!(recall >= 0.9, "display→stored recall {recall:.2} ({found}/{total})");
    }
}

#[test]
fn oracle_resolves_every_benchmark_question() {
    let b = benchmark();
    let oracle = Oracle::new(b.clone());
    for ex in b.train.iter().chain(&b.dev) {
        let entry = oracle.lookup(&ex.question).expect("every question registered");
        assert!(b.db(&entry.db_id).is_some());
    }
}

#[test]
fn simulated_model_protocol_is_self_consistent() {
    let b = benchmark();
    let oracle = Arc::new(Oracle::new(b.clone()));
    let llm = SimLlm::new(oracle, ModelProfile::gpt_4o(), 31);
    let ex = &b.dev[0];
    let db = b.db(&ex.db_id).unwrap();

    // a fully-specified generation prompt must round-trip through the
    // protocol parser the simulator itself uses
    let prompt = format!(
        "{} {}\n{} {}\n{}\n{}\n{}\n/* Answer the following: {} */\n",
        proto::TASK_PREFIX,
        proto::TASK_GENERATION,
        proto::DB_PREFIX,
        ex.db_id,
        proto::SCHEMA_HEADER,
        db.database.schema.describe(None),
        proto::FORMAT_STRUCTURED_COT,
        ex.question,
    );
    assert_eq!(proto::parse_task(&prompt), proto::TASK_GENERATION);
    assert_eq!(proto::parse_db(&prompt), Some(ex.db_id.as_str()));
    assert_eq!(proto::parse_question(&prompt), Some(ex.question.as_str()));
    assert_eq!(
        proto::parse_schema_columns(&prompt).len(),
        db.database.schema.column_count()
    );

    let resp = llm.complete(&ChatRequest { prompt, temperature: 0.0, n: 2, seed_tag: 0 });
    for text in &resp.texts {
        let sql = proto::parse_sql_from_response(text).expect("structured responses carry #SQL");
        assert!(sqlkit::parse_select(sql).is_ok() || sql.contains("FORM"), "{sql}");
        assert!(text.contains("#reason:"), "structured CoT fields present");
        assert!(text.contains("#SQL-like:"));
    }
}

#[test]
fn mqs_masking_clusters_parallel_questions() {
    use vecstore::{mask_question, Embedder};
    let b = benchmark();
    let e = Embedder::new();
    // questions sharing a spec shape should be closer under MQs than
    // unrelated ones, measured on real benchmark questions
    let counts: Vec<&datagen::Example> = b
        .train
        .iter()
        .filter(|x| x.question.starts_with("How many"))
        .take(2)
        .collect();
    let other: Vec<&datagen::Example> = b
        .train
        .iter()
        .filter(|x| x.question.starts_with("What is") || x.question.starts_with("For each"))
        .take(1)
        .collect();
    if counts.len() == 2 && other.len() == 1 {
        let emb = |q: &str| e.embed(&mask_question(q));
        let same = Embedder::cosine(&emb(&counts[0].question), &emb(&counts[1].question));
        let diff = Embedder::cosine(&emb(&counts[0].question), &emb(&other[0].question));
        assert!(
            same > diff,
            "same-shape questions ({same:.2}) should beat different-shape ({diff:.2})"
        );
    }
}

#[test]
fn benchmarks_scale_with_profile() {
    let small = generate(&Profile::tiny());
    let mut bigger_profile = Profile::tiny();
    bigger_profile.train = 80;
    bigger_profile.dev = 30;
    let bigger = generate(&bigger_profile);
    assert!(bigger.train.len() > small.train.len());
    assert_eq!(bigger.dev.len(), 30);
}
