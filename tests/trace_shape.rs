//! The structured trace is part of the pipeline's contract: one query
//! produces one span tree with the four stages in order, candidate
//! sub-traces merged deterministically, correction rounds that agree with
//! the cost ledger, and a vote event whose margin is the very number the
//! runtime's `vote_margin` histogram records. Logical sequence numbers
//! (not timestamps) pin all of it, so these tests cannot flake on timing.

use datagen::{generate, Profile};
use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::{vote_margin, Module, Pipeline, PipelineConfig, PipelineRun, Preprocessed};
use osql_runtime::{AssetCache, QueryRequest, Runtime, RuntimeConfig};
use osql_trace::QueryTrace;
use std::sync::Arc;

fn pipeline(config: PipelineConfig) -> Pipeline {
    let bench = Arc::new(generate(&Profile::tiny()));
    let oracle = Arc::new(Oracle::new(bench.clone()));
    let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), 5));
    let pre = Arc::new(Preprocessed::run(bench, llm.as_ref()));
    Pipeline::new(pre, llm, config)
}

fn answer_first(p: &Pipeline) -> PipelineRun {
    let ex = p.preprocessed().benchmark.dev[0].clone();
    p.answer(&ex.db_id, &ex.question, &ex.evidence)
}

/// The four stage spans, in logical order, parented by the root.
#[test]
fn trace_has_all_four_stages_nested_under_the_root() {
    let p = pipeline(PipelineConfig::fast());
    let run = answer_first(&p);
    let trace = &run.trace;
    assert!(!trace.is_empty(), "answer() owns and fills the trace");

    let root = trace.span_named("pipeline").expect("root span");
    assert_eq!(root.parent, None);
    assert_eq!(root.seq, 1, "root opens first");
    assert_eq!(trace.roots().count(), 1, "exactly one root");

    let stage_names: Vec<&str> = trace
        .spans
        .iter()
        .filter(|s| s.name.starts_with("stage:"))
        .map(|s| s.name)
        .collect();
    assert_eq!(
        stage_names,
        ["stage:preprocess", "stage:extraction", "stage:generation", "stage:refinement"],
        "four stages, pipeline order"
    );
    for s in trace.spans.iter().filter(|s| s.name.starts_with("stage:")) {
        assert_eq!(s.parent, Some(root.id), "{} sits under the root", s.name);
        assert!(s.end_seq > s.seq, "{} was closed", s.name);
    }
    // stages are sequential: each opens after the previous closed
    let stages: Vec<_> = trace.spans.iter().filter(|s| s.name.starts_with("stage:")).collect();
    for pair in stages.windows(2) {
        assert!(pair[1].seq > pair[0].end_seq, "{} overlaps {}", pair[1].name, pair[0].name);
    }
}

/// Candidate spans sit under the refinement stage in index order, and
/// their correction-round spans agree with the candidates and the ledger.
#[test]
fn candidate_spans_match_the_beam_and_the_ledger() {
    let p = pipeline(PipelineConfig::fast());
    let run = answer_first(&p);
    let trace = &run.trace;
    let refinement = trace.span_named("stage:refinement").expect("refinement stage");

    let candidates: Vec<_> = trace.spans_named("candidate").collect();
    assert_eq!(candidates.len(), run.candidates.len());
    for (i, (span, cand)) in candidates.iter().zip(&run.candidates).enumerate() {
        assert_eq!(span.parent, Some(refinement.id), "candidates nest in refinement");
        assert_eq!(span.label("idx"), Some(i.to_string().as_str()), "index order preserved");
        assert_eq!(span.label("sql"), Some(cand.sql.as_str()));
        assert_eq!(span.label("outcome"), Some(cand.outcome_label().as_str()));
        assert_eq!(span.label("rounds"), Some(cand.correction_rounds.to_string().as_str()));
        let rounds = trace
            .spans_named("correction_round")
            .filter(|r| trace.is_descendant(r.id, span.id))
            .count();
        assert_eq!(rounds, cand.correction_rounds, "round spans == candidate rounds");
    }
    let total_rounds: usize = trace.spans_named("correction_round").count();
    assert_eq!(
        total_rounds as u64,
        run.ledger.get(Module::Correction).calls,
        "every correction LLM call has a round span"
    );
    // alignment hops were recorded inside the candidates
    let hops = trace.events_named("align_hop").count();
    assert!(hops >= 3 * run.candidates.len(), "three hops per aligned candidate, {hops}");
}

/// The vote event's margin label is exactly the number the runtime's
/// `vote_margin` histogram records (one shared formula).
#[test]
fn vote_event_carries_the_histogram_margin() {
    let p = pipeline(PipelineConfig::fast());
    let run = answer_first(&p);
    assert!(run.candidates.len() > 1, "fast config votes over a beam");
    let vote = run.trace.events_named("vote").next().expect("vote event");
    assert_eq!(vote.label("candidates"), Some(run.candidates.len().to_string().as_str()));
    assert_eq!(vote.label("winner"), Some(run.winner.to_string().as_str()));
    assert!(
        matches!(vote.label("path"), Some("majority" | "fallback-executed" | "fallback-first")),
        "tie-break path recorded: {:?}",
        vote.label("path")
    );
    let event_margin: f64 = vote.label("margin").unwrap().parse().unwrap();
    let histogram_margin = vote_margin(&run.candidates, run.winner);
    assert!(
        (event_margin - histogram_margin).abs() < 1e-4,
        "event {event_margin} vs histogram formula {histogram_margin}"
    );

    // and through the runtime, the histogram records that same value
    let bench = p.preprocessed().benchmark.clone();
    let llm = Arc::new(SimLlm::new(
        Arc::new(Oracle::new(bench.clone())),
        ModelProfile::gpt_4o(),
        5,
    ));
    let assets = Arc::new(AssetCache::new(bench.clone(), llm, PipelineConfig::fast()));
    let rt = Runtime::start(assets, RuntimeConfig::with_workers(1));
    let ex = &bench.dev[0];
    let resp = rt
        .submit(QueryRequest::new(&ex.db_id, &ex.question, &ex.evidence))
        .unwrap()
        .wait()
        .unwrap();
    let hist = rt.metrics().histogram("vote_margin", &[1.0]);
    assert_eq!(hist.count(), 1);
    assert!(
        (hist.sum() - histogram_margin).abs() < 1e-3,
        "histogram recorded {} for margin {histogram_margin}",
        hist.sum()
    );
    // the served run carries the same complete trace the collector kept
    assert!(resp.run.trace.span_named("pipeline").is_some());
    assert_eq!(rt.traces().len(), 1);
}

/// N workers serving distinct questions produce N complete,
/// non-interleaved traces: every trace holds exactly one query's spans.
#[test]
fn concurrent_workers_produce_disjoint_complete_traces() {
    let bench = Arc::new(generate(&Profile::tiny()));
    let llm = Arc::new(SimLlm::new(
        Arc::new(Oracle::new(bench.clone())),
        ModelProfile::gpt_4o(),
        5,
    ));
    let assets = Arc::new(AssetCache::new(bench.clone(), llm, PipelineConfig::fast()));
    let rt = Runtime::start(assets, RuntimeConfig::with_workers(4));
    let n = 8.min(bench.dev.len());
    let reqs: Vec<QueryRequest> = bench
        .dev
        .iter()
        .take(n)
        .map(|ex| QueryRequest::new(&ex.db_id, &ex.question, &ex.evidence))
        .collect();
    let responses = rt.run_batch(reqs);
    assert_eq!(rt.traces().published(), n as u64);
    for resp in &responses {
        let run = &resp.as_ref().unwrap().run;
        let trace = &run.trace;
        assert_eq!(trace.spans_named("pipeline").count(), 1, "one root per trace");
        assert_eq!(trace.roots().count(), 1, "nothing from other queries leaked in");
        for stage in ["stage:preprocess", "stage:extraction", "stage:generation", "stage:refinement"]
        {
            assert_eq!(trace.spans_named(stage).count(), 1, "{stage} present exactly once");
        }
        assert_eq!(trace.spans_named("candidate").count(), run.candidates.len());
        assert_eq!(trace.span_named("pipeline").unwrap().label("db"), Some(run.db_id.as_str()));
        // the worker's queue-wait event rode along (volatile, so it is
        // absent from the logical view but present in the trace)
        assert_eq!(trace.events_named("queue_wait").count(), 1);
        assert!(!trace.render_logical().contains("queue_wait"));
    }
}

/// Two identical runs — and a 1-thread vs 4-thread refinement — render
/// identical *logical* traces: structure and deterministic labels only,
/// timestamps excluded. This is the property the ci.sh determinism gate
/// checks end to end.
#[test]
fn logical_trace_is_deterministic_across_runs_and_thread_counts() {
    let logical = |threads: usize| -> Vec<String> {
        let p = pipeline(PipelineConfig::fast().with_refine_threads(threads));
        let dev: Vec<datagen::Example> =
            p.preprocessed().benchmark.dev.iter().take(4).cloned().collect();
        dev.iter()
            .map(|ex| p.answer(&ex.db_id, &ex.question, &ex.evidence).trace.render_logical())
            .collect()
    };
    let a = logical(1);
    let b = logical(1);
    assert_eq!(a, b, "identical runs, identical logical traces");
    let c = logical(4);
    assert_eq!(a, c, "refine thread count is invisible in the logical trace");
    // sanity: the logical view is non-trivial and names the stages
    assert!(a[0].contains("stage:refinement"), "{}", a[0]);
    assert!(a[0].contains("candidate"), "{}", a[0]);
}

/// The windowed/SLO Prometheus exposition is fed modelled stage time
/// and sliced by a logical clock (no ticker when `tick_interval_ms` is
/// 0), so — like the logical trace above — its bytes cannot depend on
/// worker or refine-thread counts.
#[test]
fn windowed_metrics_render_identically_across_worker_and_thread_counts() {
    let render = |workers: usize, threads: usize| -> String {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), 5));
        let assets = Arc::new(AssetCache::new(
            bench.clone(),
            llm,
            PipelineConfig::fast().with_refine_threads(threads),
        ));
        let rt = Runtime::start(
            assets,
            RuntimeConfig { workers, tick_interval_ms: 0, ..RuntimeConfig::default() },
        );
        let reqs: Vec<QueryRequest> = bench
            .dev
            .iter()
            .take(4)
            .map(|ex| QueryRequest::new(&ex.db_id, &ex.question, &ex.evidence))
            .collect();
        for resp in rt.run_batch(reqs) {
            resp.unwrap();
        }
        // slide the window a few ticks; both runs advance identically
        for _ in 0..3 {
            rt.clock().advance();
        }
        rt.windowed().render_prometheus()
    };
    let a = render(1, 1);
    let b = render(1, 1);
    assert_eq!(a, b, "identical runs render identical windowed bytes");
    let c = render(4, 4);
    assert_eq!(a, c, "worker and refine-thread counts are invisible in the windowed view");
    assert!(a.contains("osql_window_latency_ms"), "{a}");
    assert!(a.contains("osql_slo_burn_rate"), "{a}");
}

/// `explain()` reads the candidate beam from the trace; a trace-less run
/// renders the same bytes from the candidates directly.
#[test]
fn explain_from_trace_matches_explain_from_candidates() {
    let p = pipeline(PipelineConfig::fast());
    let run = answer_first(&p);
    assert!(run.trace.spans_named("candidate").next().is_some());
    let from_trace = run.explain();
    let mut untraced = run.clone();
    untraced.trace = Arc::new(QueryTrace::empty());
    assert_eq!(from_trace, untraced.explain(), "one source of truth, same bytes");
    assert!(from_trace.contains(">>"), "{from_trace}");
    assert!(from_trace.contains("final: SELECT"), "{from_trace}");
}
