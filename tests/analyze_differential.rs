//! Differential tests for the static-analysis gate.
//!
//! Two contracts are checked here:
//!
//! 1. **Soundness of certain rejects.** Whenever `analyze_sql` claims a
//!    statement is *certain* to fail (`Analysis::certain_error`), actually
//!    executing it must produce that exact error, byte for byte. The
//!    refinement gate substitutes the predicted error for the execution
//!    result, so any divergence would leak into correction prompts and
//!    vote outcomes.
//!
//! 2. **Zero observable drift.** Running the pipeline with the gate on
//!    and off must produce identical answers, candidate for candidate:
//!    the gate may only skip executions whose outcome it already knows.

use datagen::{generate, Profile};
use llmsim::{ModelProfile, Oracle, SimLlm};
use opensearch_sql::{Pipeline, PipelineConfig, Preprocessed};
use std::sync::Arc;

/// If the analyzer promises a certain failure, execution must fail with
/// exactly that error. Returns whether a certain reject was exercised.
fn assert_certain_matches_execution(db: &sqlkit::Database, sql: &str) -> bool {
    let analysis = sqlkit::analyze_sql(&db.schema, sql);
    let Some(predicted) = analysis.certain_error else {
        return false;
    };
    match db.query(sql) {
        Ok(_) => panic!("analyzer promised failure but {sql:?} succeeded: {predicted}"),
        Err(actual) => assert_eq!(
            predicted.to_string(),
            actual.to_string(),
            "predicted and actual errors differ for {sql:?}"
        ),
    }
    true
}

/// Certain rejects predict execution errors byte-identically, across
/// hand-built templates per schema table and mangled gold SQL.
#[test]
fn certain_rejects_match_execution_errors() {
    let bench = generate(&Profile::tiny());
    let mut certains = 0usize;

    for built in bench.dbs.iter() {
        let db = &built.database;
        for table in db.schema.tables.iter().map(|t| t.name.clone()) {
            for sql in [
                format!("SELECT * FROM {table}zz"),
                format!("SELECT COUNT(*) FROM {table} WHERE COUNT(*) > 1"),
                format!("SELECT COUNT(*) FROM {table} UNION SELECT 1, 2"),
                format!("SELECT COUNT(*) FROM {table} UNION SELECT 1 ORDER BY 5"),
                format!("SELECT COUNT(*) FROM {table} LIMIT 'many'"),
            ] {
                certains += assert_certain_matches_execution(db, &sql) as usize;
            }
        }
        // FROM-less scalar evaluation is unconditional, so bad calls are
        // certain even without any table in scope.
        for sql in ["SELECT lenght('abc')", "SELECT substr('abc')", "SELECT *"] {
            certains += assert_certain_matches_execution(db, sql) as usize;
        }
    }

    // Gold SQL with the first scanned table mangled must be a certain
    // `no such table` — the scan happens before any row is produced.
    for ex in bench.train.iter().chain(bench.dev.iter()) {
        let db = bench.db(&ex.db_id).expect("known db");
        let Some(pos) = ex.gold_sql.find("FROM ") else { continue };
        let rest = &ex.gold_sql[pos + 5..];
        let table: String =
            rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if table.is_empty() {
            continue;
        }
        let mangled = format!(
            "{}FROM {}zz{}",
            &ex.gold_sql[..pos],
            table,
            &rest[table.len()..]
        );
        assert!(
            assert_certain_matches_execution(&db.database, &mangled),
            "mangled scan must be a certain reject: {mangled}"
        );
        certains += 1;
    }

    assert!(certains >= 60, "certain rejects exercised: {certains}");
}

struct Fixture {
    benchmark: Arc<datagen::Benchmark>,
    pre: Arc<Preprocessed>,
    llm: Arc<SimLlm>,
}

fn fixture(seed: u64) -> Fixture {
    let mut profile = Profile::tiny();
    profile.train = 60;
    profile.dev = 30;
    profile.n_databases = 3;
    profile.n_domains = 3;
    let benchmark = Arc::new(generate(&profile));
    let oracle = Arc::new(Oracle::new(benchmark.clone()));
    let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), seed));
    let pre = Arc::new(Preprocessed::run(benchmark.clone(), llm.as_ref()));
    Fixture { benchmark, pre, llm }
}

/// Gating a certain-broken candidate skips its execution without changing
/// any deterministic field of the refined result.
#[test]
fn gate_skips_execution_without_changing_outcome() {
    let f = fixture(31);
    let ex = &f.benchmark.dev[0];
    let broken = "SELECT name FROM table_that_does_not_exist";

    let refine = |config: &PipelineConfig| {
        let mut ledger = opensearch_sql::CostLedger::new();
        opensearch_sql::refinement::refine_candidate(
            &f.pre,
            f.llm.as_ref() as &dyn llmsim::LanguageModel,
            config,
            &ex.db_id,
            &ex.question,
            &ex.evidence,
            &opensearch_sql::ExtractionOutput::default(),
            broken,
            None,
            0,
            &mut ledger,
        )
    };
    let mut config = PipelineConfig::fast();
    config.alignments = false; // keep the broken scan reaching the gate
    let gated = refine(&config);
    let ungated = refine(&config.clone().without_analyze_gate());

    assert!(gated.analyze_skips >= 1, "certain-broken candidate must be gated");
    assert_eq!(ungated.analyze_skips, 0, "gate off records no skips");
    assert_eq!(gated.sql, ungated.sql);
    assert_eq!(gated.exec_cost, ungated.exec_cost);
    assert_eq!(gated.correction_rounds, ungated.correction_rounds);
    match (&gated.result, &ungated.result) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        _ => panic!("result class differs between gated and ungated refinement"),
    }
}

/// Whole-pipeline differential: gate on vs gate off over the dev split is
/// byte-identical in every deterministic report field — the analyzer only
/// removes executions, never changes answers or votes.
#[test]
fn pipeline_identical_with_and_without_gate() {
    let f = fixture(37);
    let on = Pipeline::new(f.pre.clone(), f.llm.clone(), PipelineConfig::fast());
    let off = Pipeline::new(
        f.pre.clone(),
        f.llm.clone(),
        PipelineConfig::fast().without_analyze_gate(),
    );
    for ex in &f.benchmark.dev {
        let a = on.answer(&ex.db_id, &ex.question, &ex.evidence);
        let b = off.answer(&ex.db_id, &ex.question, &ex.evidence);
        assert_eq!(a.sql_g, b.sql_g, "{}", ex.question);
        assert_eq!(a.sql_r, b.sql_r, "{}", ex.question);
        assert_eq!(a.final_sql, b.final_sql, "{}", ex.question);
        assert_eq!(a.winner, b.winner, "{}", ex.question);
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(ca.raw_sql, cb.raw_sql);
            assert_eq!(ca.sql, cb.sql);
            assert_eq!(ca.exec_cost, cb.exec_cost);
            assert_eq!(ca.correction_rounds, cb.correction_rounds);
            assert_eq!(cb.analyze_skips, 0, "gate off must record no skips");
            match (&ca.result, &cb.result) {
                (Ok(ra), Ok(rb)) => assert_eq!(ra, rb, "{}", ex.question),
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
                _ => panic!("result class differs for {}", ex.question),
            }
        }
    }
}
