//! The shipping manifest: one small CRC'd file advertising how far the
//! stream has been published.
//!
//! Layout (little-endian, via the store's codec):
//!
//! ```text
//! magic "OSQLMAN1" | version u32 | last_commit_seq u64 |
//! segment count u32 | per segment: start u64, end u64, bytes u64, crc u32 |
//! crc32 u32 over everything before it
//! ```
//!
//! The manifest is the follower's single source of truth: it applies
//! nothing past `last_commit_seq` (a segment holding more than the
//! manifest advertises is a publish in progress, not data), and it
//! expects every advertised segment to be present and to match its
//! recorded byte length and CRC. The shipper always publishes the
//! segment *before* the manifest that advertises it, and both writes go
//! through temp-file + rename, so a reader never observes a manifest
//! pointing at bytes that were never made durable.

use crate::ReplError;
use osql_store::{crc32, Dec, Enc};

/// Manifest file name inside a shipping directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Manifest magic.
pub const MANIFEST_MAGIC: u64 = u64::from_le_bytes(*b"OSQLMAN1");

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One published segment, as the manifest advertises it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// First commit sequence the segment carries.
    pub start_seq: u64,
    /// Last commit sequence the segment carries.
    pub end_seq: u64,
    /// Exact byte length of the segment file.
    pub bytes: u64,
    /// CRC-32 over the whole segment file (magic included).
    pub crc: u32,
}

/// The shipping directory's advertised state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Last commit sequence published — the follower's apply target.
    pub last_commit_seq: u64,
    /// Published segments in stream order.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// Encode, with the trailing whole-payload CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_u64(MANIFEST_MAGIC);
        enc.put_u32(MANIFEST_VERSION);
        enc.put_u64(self.last_commit_seq);
        enc.put_u32(self.segments.len() as u32);
        for s in &self.segments {
            enc.put_u64(s.start_seq);
            enc.put_u64(s.end_seq);
            enc.put_u64(s.bytes);
            enc.put_u32(s.crc);
        }
        let mut out = enc.into_bytes();
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and verify a manifest. Every failure — truncation, bad
    /// magic, version skew, checksum mismatch, trailing bytes — is a
    /// typed corruption error, never a partial manifest: a follower must
    /// not act on an advertisement it cannot fully trust.
    pub fn decode(buf: &[u8]) -> Result<Manifest, ReplError> {
        if buf.len() < 4 {
            return Err(ReplError::Corrupt(format!(
                "manifest is {} bytes, shorter than its checksum",
                buf.len()
            )));
        }
        let (payload, tail) = buf.split_at(buf.len() - 4);
        let expect = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
        if crc32(payload) != expect {
            return Err(ReplError::Corrupt("manifest checksum mismatch".to_owned()));
        }
        let mut dec = Dec::new(payload);
        let corrupt = |what: &str| ReplError::Corrupt(format!("manifest truncated in {what}"));
        let magic = dec.get_u64().map_err(|_| corrupt("magic"))?;
        if magic != MANIFEST_MAGIC {
            return Err(ReplError::Corrupt("bad manifest magic".to_owned()));
        }
        let version = dec.get_u32().map_err(|_| corrupt("version"))?;
        if version != MANIFEST_VERSION {
            return Err(ReplError::Corrupt(format!("unsupported manifest version {version}")));
        }
        let last_commit_seq = dec.get_u64().map_err(|_| corrupt("last_commit_seq"))?;
        let n = dec.get_u32().map_err(|_| corrupt("segment count"))? as usize;
        let mut segments = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            segments.push(SegmentMeta {
                start_seq: dec.get_u64().map_err(|_| corrupt("segment entry"))?,
                end_seq: dec.get_u64().map_err(|_| corrupt("segment entry"))?,
                bytes: dec.get_u64().map_err(|_| corrupt("segment entry"))?,
                crc: dec.get_u32().map_err(|_| corrupt("segment entry"))?,
            });
        }
        if dec.remaining() != 0 {
            return Err(ReplError::Corrupt("trailing bytes after manifest".to_owned()));
        }
        Ok(Manifest { last_commit_seq, segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            last_commit_seq: 42,
            segments: vec![
                SegmentMeta { start_seq: 1, end_seq: 10, bytes: 900, crc: 0xDEAD_BEEF },
                SegmentMeta { start_seq: 11, end_seq: 42, bytes: 3000, crc: 7 },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let empty = Manifest::default();
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn any_single_byte_flip_is_rejected() {
        let buf = sample().encode();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                Manifest::decode(&bad).is_err(),
                "flip at byte {i} must not decode to a trusted manifest"
            );
        }
    }

    #[test]
    fn any_truncation_is_rejected() {
        let buf = sample().encode();
        for cut in 0..buf.len() {
            assert!(Manifest::decode(&buf[..cut]).is_err(), "cut at {cut} must be rejected");
        }
    }
}
