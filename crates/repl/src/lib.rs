//! # osql-repl — WAL-shipping replication for `osql-store`
//!
//! The store's WAL is already a self-delimiting, CRC-framed,
//! sequence-numbered record stream with replay-from-`base_seq`; this
//! crate ships it. Three roles, zero external dependencies:
//!
//! - **Primary / shipper** ([`ship`]): [`ship_wal`](ship::ship_wal)
//!   scans the primary's WAL for committed transactions past the last
//!   shipped sequence and publishes them as framed log [`segment`]s
//!   into a shipping directory, then atomically advances a small CRC'd
//!   [`manifest`] advertising `last_commit_seq`. The manifest is
//!   written *after* its segment, so it never advertises bytes that are
//!   not durable in the directory.
//! - **Follower** ([`follow`]): [`Follower`](follow::Follower) tails
//!   the manifest, fetches segments, and applies each shipped
//!   transaction onto its own store (statements re-executed, then
//!   committed through the follower's own WAL), so the follower's
//!   `applied_seq` advances monotonically one commit at a time and a
//!   crash mid-apply recovers by the store's ordinary
//!   truncate-uncommitted-tail path. [`promote`](follow::Follower::promote)
//!   checkpoints the applied prefix into the base file and hands back a
//!   writable [`Store`](osql_store::Store).
//! - **Serving state** ([`state`]): [`ReplState`](state::ReplState) is
//!   the chk-shimmed bridge between the apply loop and the HTTP layer —
//!   per-database applied/target sequences for bounded-staleness reads,
//!   segment-fetch counters, and a shutdown flag the apply loop checks
//!   *between* transactions so shutdown can never tear a commit.
//!
//! Shipping media is abstracted ([`media::ShipMedia`]) so production
//! uses a real directory ([`media::FsShipDir`]) while the concurrency
//! model suite drives shipper and follower through an in-memory
//! directory ([`media::MemShipDir`]) under the deterministic scheduler.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod follow;
pub mod manifest;
pub mod media;
pub mod segment;
pub mod ship;
pub mod state;

pub use follow::{seed_if_missing, ApplyReport, Follower, PromotionReport};
pub use manifest::{Manifest, SegmentMeta, MANIFEST_NAME};
pub use media::{FsShipDir, MemShipDir, ShipMedia};
pub use segment::{decode_segment, encode_segment, parse_segment_name, segment_name};
pub use ship::{read_manifest, ship_store, ship_wal, ShipReport, BASE_NAME};
pub use state::{DbReplStatus, ReplState};

use osql_store::StoreError;
use std::path::Path;

/// Any failure in the replication layer.
#[derive(Debug)]
pub enum ReplError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Bytes in the shipping directory are not a valid manifest or
    /// segment (bad magic, checksum mismatch, truncation).
    Corrupt(String),
    /// The stream has a hole: the next sequence a role needs is no
    /// longer available (e.g. the primary checkpointed commits it never
    /// shipped, or a manifest advertises a segment range with a gap).
    Gap {
        /// Last sequence the consumer holds.
        have: u64,
        /// First sequence it needs and cannot get.
        need: u64,
    },
    /// The follower's local state contradicts the shipped stream —
    /// applying would fork history, so the apply loop refuses.
    Diverged(String),
    /// The storage layer failed underneath replication.
    Store(StoreError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "io: {e}"),
            ReplError::Corrupt(msg) => write!(f, "corrupt replication stream: {msg}"),
            ReplError::Gap { have, need } => write!(
                f,
                "replication gap: have seq {have}, need seq {need} (no longer shippable)"
            ),
            ReplError::Diverged(msg) => write!(f, "follower diverged: {msg}"),
            ReplError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Io(e) => Some(e),
            ReplError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> Self {
        ReplError::Io(e)
    }
}

impl From<StoreError> for ReplError {
    fn from(e: StoreError) -> Self {
        ReplError::Store(e)
    }
}

/// A store's durable replication position, read without loading any row
/// data: the base snapshot's `base_seq` plus a structural scan of the
/// sidecar WAL. `last_commit_seq` is the position operators compare
/// between primary and follower.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Position {
    /// Last WAL commit folded into the base file (TOC `base_seq`).
    pub base_seq: u64,
    /// Last durable commit overall: the WAL's last commit sequence, or
    /// `base_seq` when the log holds none.
    pub last_commit_seq: u64,
    /// Bytes currently in the sidecar WAL (0 when absent).
    pub wal_bytes: u64,
}

/// Read the durable [`Position`] of the store at `path` (base TOC +
/// structural WAL scan; no statements are executed).
pub fn store_position(path: &Path) -> Result<Position, ReplError> {
    let toc = osql_store::read_toc(path)?;
    let mut pos =
        Position { base_seq: toc.base_seq, last_commit_seq: toc.base_seq, wal_bytes: 0 };
    if let Ok(buf) = std::fs::read(osql_store::wal_path(path)) {
        pos.wal_bytes = buf.len() as u64;
        let audit = osql_store::audit(&buf);
        pos.last_commit_seq = pos.last_commit_seq.max(audit.last_commit_seq);
    }
    Ok(pos)
}
