//! Shared replication state: the bridge between a follower's apply loop
//! and whatever serves reads off the replica (the HTTP layer, the CLI,
//! metrics).
//!
//! [`ReplState`] is deliberately small and chk-shimmed: the apply loop
//! publishes per-database applied/target sequences after every poll, the
//! serving side reads them to answer bounded-staleness requests, and a
//! shutdown flag lets the loop stop *between* transactions — the loop
//! checks it at round boundaries, and the store's per-transaction commit
//! makes mid-transaction interruption impossible to observe anyway (the
//! model suite pins both properties under the deterministic scheduler).

use crate::follow::ApplyReport;
use osql_chk::atomic::{AtomicBool, AtomicU64, Ordering};
use osql_chk::Mutex;
use std::collections::HashMap;

/// Replication status of one database, as last reported by its apply
/// loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbReplStatus {
    /// Last shipped commit applied locally (monotonic).
    pub applied_seq: u64,
    /// The manifest's advertised last commit at the last poll.
    pub target_seq: u64,
    /// Total transactions applied since this process started.
    pub txns_applied: u64,
    /// Total segment files fetched since this process started.
    pub segments_fetched: u64,
    /// Total poll rounds completed (including no-op rounds).
    pub polls: u64,
    /// The last poll error, if the most recent round failed.
    pub last_error: Option<String>,
}

impl DbReplStatus {
    /// Replication lag in commits (target minus applied; 0 when caught
    /// up or when the local store ran ahead of the manifest).
    pub fn lag(&self) -> u64 {
        self.target_seq.saturating_sub(self.applied_seq)
    }
}

/// Process-wide replication state shared by the apply loop and the
/// serving side.
#[derive(Debug, Default)]
pub struct ReplState {
    dbs: Mutex<HashMap<String, DbReplStatus>>,
    stale_rejections: AtomicU64,
    retry_hint_secs: AtomicU64,
    shutdown: AtomicBool,
}

impl ReplState {
    /// Fresh state; `retry_hint_secs` seeds the `Retry-After` hint
    /// handed to clients whose bounded-staleness floor is not yet met.
    pub fn new(retry_hint_secs: u64) -> Self {
        let state = ReplState::default();
        state.retry_hint_secs.store(retry_hint_secs, Ordering::Relaxed);
        state
    }

    /// Record the outcome of one successful poll round for `db`.
    pub fn note_poll(&self, db: &str, report: &ApplyReport) {
        let mut dbs = self.dbs.lock();
        let status = dbs.entry(db.to_owned()).or_default();
        // applied_seq is monotonic even if reports arrive confused
        status.applied_seq = status.applied_seq.max(report.applied_seq);
        status.target_seq = status.target_seq.max(report.target_seq);
        status.txns_applied += report.applied_txns;
        status.segments_fetched += report.segments_read;
        status.polls += 1;
        status.last_error = None;
    }

    /// Record a failed poll round for `db` (applied/target keep their
    /// last known values).
    pub fn note_error(&self, db: &str, error: &str) {
        let mut dbs = self.dbs.lock();
        let status = dbs.entry(db.to_owned()).or_default();
        status.polls += 1;
        status.last_error = Some(error.to_owned());
    }

    /// The applied sequence for `db`; `None` when no apply loop has
    /// reported it yet (serving must then treat every floor as unmet).
    pub fn applied_seq(&self, db: &str) -> Option<u64> {
        self.dbs.lock().get(db).map(|s| s.applied_seq)
    }

    /// Full status for `db`.
    pub fn status(&self, db: &str) -> Option<DbReplStatus> {
        self.dbs.lock().get(db).cloned()
    }

    /// Every tracked database, sorted by name (for /healthz and CLI).
    pub fn snapshot(&self) -> Vec<(String, DbReplStatus)> {
        let dbs = self.dbs.lock();
        let mut out: Vec<_> = dbs.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Worst lag across all tracked databases.
    pub fn max_lag(&self) -> u64 {
        self.dbs.lock().values().map(DbReplStatus::lag).max().unwrap_or(0)
    }

    /// Count one read rejected for an unmet bounded-staleness floor.
    pub fn record_stale_rejection(&self) {
        self.stale_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Total reads rejected for unmet staleness floors.
    pub fn stale_rejections(&self) -> u64 {
        self.stale_rejections.load(Ordering::Relaxed)
    }

    /// The `Retry-After` hint (seconds) for stale rejections.
    pub fn retry_hint_secs(&self) -> u64 {
        self.retry_hint_secs.load(Ordering::Relaxed)
    }

    /// Ask the apply loop to stop at the next round boundary.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested? The apply loop checks this between
    /// rounds; it never interrupts a transaction mid-apply.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(applied: u64, target: u64, txns: u64) -> ApplyReport {
        ApplyReport {
            target_seq: target,
            applied_seq: applied,
            applied_txns: txns,
            stmts_applied: txns,
            segments_read: 1,
            finding: None,
        }
    }

    #[test]
    fn polls_accumulate_and_lag_is_target_minus_applied() {
        let state = ReplState::new(2);
        assert_eq!(state.applied_seq("db"), None);
        state.note_poll("db", &report(3, 5, 3));
        state.note_poll("db", &report(5, 5, 2));
        let status = state.status("db").unwrap();
        assert_eq!(status.applied_seq, 5);
        assert_eq!(status.txns_applied, 5);
        assert_eq!(status.polls, 2);
        assert_eq!(status.lag(), 0);
        state.note_poll("other", &report(1, 9, 1));
        assert_eq!(state.max_lag(), 8);
        assert_eq!(state.snapshot().len(), 2);
        assert_eq!(state.retry_hint_secs(), 2);
    }

    #[test]
    fn errors_keep_the_last_known_position() {
        let state = ReplState::new(1);
        state.note_poll("db", &report(4, 4, 4));
        state.note_error("db", "segment vanished");
        let status = state.status("db").unwrap();
        assert_eq!(status.applied_seq, 4, "position survives a failed round");
        assert_eq!(status.last_error.as_deref(), Some("segment vanished"));
        assert_eq!(status.polls, 2);
        // a later good round clears the error
        state.note_poll("db", &report(5, 5, 1));
        assert_eq!(state.status("db").unwrap().last_error, None);
    }

    #[test]
    fn applied_seq_never_regresses() {
        let state = ReplState::new(1);
        state.note_poll("db", &report(7, 7, 7));
        state.note_poll("db", &report(3, 3, 0));
        assert_eq!(state.applied_seq("db"), Some(7));
    }

    #[test]
    fn shutdown_and_stale_counters() {
        let state = ReplState::new(1);
        assert!(!state.shutdown_requested());
        state.request_shutdown();
        assert!(state.shutdown_requested());
        state.record_stale_rejection();
        state.record_stale_rejection();
        assert_eq!(state.stale_rejections(), 2);
    }
}
