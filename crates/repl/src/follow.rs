//! Follower side: tail the shipping directory, replay shipped commits
//! onto a local store, and — when asked — promote that store to a
//! writable primary.
//!
//! The follower owns an ordinary [`Store`]: every shipped transaction is
//! re-executed statement by statement and committed through the
//! follower's *own* WAL. Because [`Store::commit`] hands out sequence
//! numbers one at a time, the follower reproduces exactly the primary's
//! commit sequence — `applied_seq` is simply the follower store's
//! `commit_seq`, it advances monotonically one commit per shipped
//! transaction, and a crash in the middle of applying recovers through
//! the store's ordinary open path (the uncommitted tail is truncated,
//! the half-applied transaction vanishes, the next poll re-fetches it).
//!
//! Two hard rules keep replicas honest:
//!
//! - the follower never applies a transaction the manifest does not
//!   advertise (a longer segment is a publish in progress, not data);
//! - the follower refuses out-of-order sequences outright — a hole is a
//!   [`ReplError::Gap`], a contradiction is [`ReplError::Diverged`],
//!   and neither is ever papered over by partial application.

use crate::media::ShipMedia;
use crate::ship::{read_manifest, BASE_NAME};
use crate::ReplError;
use osql_store::wal::{FsMedia, WalMedia};
use osql_store::{crc32, OpenReport, Store};
use std::path::Path;

/// What one [`Follower::poll`] round did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// The manifest's advertised last commit sequence (0 when no
    /// manifest was published yet).
    pub target_seq: u64,
    /// The follower's applied sequence after this round.
    pub applied_seq: u64,
    /// Transactions applied this round.
    pub applied_txns: u64,
    /// Statements executed inside those transactions.
    pub stmts_applied: u64,
    /// Segment files fetched this round.
    pub segments_read: u64,
    /// A non-fatal oddity worth surfacing (e.g. the local store is ahead
    /// of the manifest).
    pub finding: Option<String>,
}

/// What [`Follower::promote`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionReport {
    /// The applied sequence the store was promoted at: every commit up
    /// to and including this one is folded into the new base snapshot.
    pub promoted_at_seq: u64,
    /// Size of the freshly written base file in bytes.
    pub base_bytes: u64,
}

/// A read-only replica applying shipped transactions onto its own store.
#[derive(Debug)]
pub struct Follower<M: WalMedia = FsMedia> {
    store: Store<M>,
}

/// Seed a missing follower store from the shipping directory's bootstrap
/// base snapshot (temp-file + rename, so a crash mid-seed leaves no
/// half-written store). Returns `true` when a seed happened, `false`
/// when the store already existed.
pub fn seed_if_missing(store_path: &Path, media: &impl ShipMedia) -> Result<bool, ReplError> {
    if store_path.exists() {
        return Ok(false);
    }
    let Some(base) = media.read_blob(BASE_NAME)? else {
        return Err(ReplError::Corrupt(format!(
            "shipping directory has no {BASE_NAME} snapshot to seed from"
        )));
    };
    if let Some(parent) = store_path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = store_path.with_extension("seed-tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&base)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, store_path)?;
    Ok(true)
}

impl Follower<FsMedia> {
    /// Open a follower over the store at `path` (seed it first with
    /// [`seed_if_missing`] when bootstrapping a brand-new replica).
    pub fn open(path: &Path) -> Result<(Self, OpenReport), ReplError> {
        let (store, report) = Store::open(path)?;
        Ok((Follower { store }, report))
    }
}

impl<M: WalMedia> Follower<M> {
    /// Open a follower over explicit WAL media (fault-injection tests
    /// pass a [`osql_store::FaultFile`] here).
    pub fn open_with(path: &Path, media: M) -> Result<(Self, OpenReport), ReplError> {
        let (store, report) = Store::open_with(path, media)?;
        Ok((Follower { store }, report))
    }

    /// The follower's applied sequence: the last shipped commit durably
    /// replayed onto the local store. Monotonic.
    pub fn applied_seq(&self) -> u64 {
        self.store.commit_seq()
    }

    /// The underlying read-only store (serving reads, inspecting rows).
    pub fn store(&self) -> &Store<M> {
        &self.store
    }

    /// Consume the follower, returning the store without promoting it
    /// (fault-injection tests crash its WAL media and reopen).
    pub fn into_store(self) -> Store<M> {
        self.store
    }

    /// One apply round: read the manifest, fetch advertised segments
    /// past `applied_seq`, and replay their transactions in sequence
    /// order. Stops cleanly at the manifest's `last_commit_seq`.
    pub fn poll(&mut self, media: &impl ShipMedia) -> Result<ApplyReport, ReplError> {
        let mut report =
            ApplyReport { applied_seq: self.applied_seq(), ..ApplyReport::default() };
        let Some(manifest) = read_manifest(media)? else {
            return Ok(report);
        };
        report.target_seq = manifest.last_commit_seq;
        if self.applied_seq() > manifest.last_commit_seq {
            report.finding = Some(format!(
                "local store at seq {} is ahead of the manifest's {}",
                self.applied_seq(),
                manifest.last_commit_seq
            ));
            return Ok(report);
        }
        for meta in &manifest.segments {
            if self.applied_seq() >= manifest.last_commit_seq {
                break;
            }
            let need = self.applied_seq() + 1;
            if meta.end_seq < need {
                continue; // fully applied already
            }
            if meta.start_seq > need {
                return Err(ReplError::Gap { have: need - 1, need });
            }
            let name = crate::segment_name(meta.start_seq);
            let bytes = media.read_segment(&name).map_err(|e| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    ReplError::Corrupt(format!("manifest advertises {name} but it is absent"))
                } else {
                    ReplError::Io(e)
                }
            })?;
            report.segments_read += 1;
            // an advertised segment must match its manifest entry exactly;
            // a mismatch is damage, and damaged bytes are never replayed
            if bytes.len() as u64 != meta.bytes || crc32(&bytes) != meta.crc {
                return Err(ReplError::Corrupt(format!(
                    "{name} does not match its manifest entry \
                     ({} bytes vs {} advertised)",
                    bytes.len(),
                    meta.bytes
                )));
            }
            let scan = crate::decode_segment(&bytes)?;
            if let Some(finding) = scan.finding {
                return Err(ReplError::Corrupt(format!("{name}: {finding}")));
            }
            for txn in &scan.txns {
                if txn.seq <= self.applied_seq() {
                    continue; // overlap with what we already hold
                }
                if txn.seq > manifest.last_commit_seq {
                    break; // never run ahead of the advertisement
                }
                if txn.seq != self.applied_seq() + 1 {
                    return Err(ReplError::Gap {
                        have: self.applied_seq(),
                        need: self.applied_seq() + 1,
                    });
                }
                for stmt in &txn.stmts {
                    self.store.execute(stmt)?;
                }
                let committed = self.store.commit()?;
                if committed != txn.seq {
                    return Err(ReplError::Diverged(format!(
                        "shipped txn {} landed as local commit {committed}",
                        txn.seq
                    )));
                }
                report.applied_txns += 1;
                report.stmts_applied += txn.stmts.len() as u64;
            }
        }
        report.applied_seq = self.applied_seq();
        if report.applied_seq < report.target_seq {
            return Err(ReplError::Gap {
                have: report.applied_seq,
                need: report.applied_seq + 1,
            });
        }
        Ok(report)
    }

    /// Promote this follower to a writable primary: checkpoint the
    /// applied prefix into a fresh base snapshot (which truncates the
    /// local WAL at exactly the applied prefix) and hand the store back
    /// ready for writes. Refuses if a partial transaction is pending —
    /// promotion must never commit half of a shipped transaction.
    pub fn promote(mut self) -> Result<(Store<M>, PromotionReport), ReplError> {
        if self.store.pending_stmts() > 0 {
            return Err(ReplError::Diverged(
                "partial transaction pending; reopen the store before promoting".to_owned(),
            ));
        }
        let promoted_at_seq = self.applied_seq();
        let base_bytes = self.store.checkpoint()?;
        Ok((self.store, PromotionReport { promoted_at_seq, base_bytes }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemShipDir;
    use crate::ship::ship_store;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("osql-repl-follow-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn primary(path: &Path) -> Store {
        let mut db = sqlkit::Database::new("db");
        db.execute_script("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)").unwrap();
        Store::create(path, db, vec![]).unwrap()
    }

    #[test]
    fn seed_poll_apply_promote_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut p = primary(&dir.join("primary.store"));
        p.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        p.commit().unwrap();
        p.execute("INSERT INTO t VALUES (2, 'b')").unwrap();
        p.execute("UPDATE t SET v = 'a2' WHERE id = 1").unwrap();
        p.commit().unwrap();

        let media = MemShipDir::new();
        ship_store(p.path(), &media).unwrap();

        let fpath = dir.join("follower.store");
        assert!(seed_if_missing(&fpath, &media).unwrap());
        assert!(!seed_if_missing(&fpath, &media).unwrap(), "second seed is a no-op");
        let (mut f, _) = Follower::open(&fpath).unwrap();
        assert_eq!(f.applied_seq(), 0);
        let report = f.poll(&media).unwrap();
        assert_eq!(report.target_seq, 2);
        assert_eq!(report.applied_seq, 2);
        assert_eq!(report.applied_txns, 2);
        assert_eq!(report.stmts_applied, 3);
        assert_eq!(
            f.store().database().rows("t").unwrap(),
            p.database().rows("t").unwrap(),
            "replica rows match the primary"
        );

        // idle poll: nothing to do, no segment fetches for applied data
        let report = f.poll(&media).unwrap();
        assert_eq!(report.applied_txns, 0);

        let (mut promoted, pr) = f.promote().unwrap();
        assert_eq!(pr.promoted_at_seq, 2);
        promoted.execute("INSERT INTO t VALUES (3, 'c')").unwrap();
        assert_eq!(promoted.commit().unwrap(), 3, "sequence continues after promotion");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follower_never_applies_past_the_manifest() {
        let dir = tmpdir("bounded");
        let mut p = primary(&dir.join("primary.store"));
        p.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        p.commit().unwrap();
        let media = MemShipDir::new();
        ship_store(p.path(), &media).unwrap();
        // overwrite the shipped segment with a longer one (publish in
        // progress: commit 2 exists in the segment, not in the manifest)
        let longer = crate::encode_segment(&[
            osql_store::ScannedTxn { seq: 1, stmts: vec!["INSERT INTO t VALUES (1, 'a')".into()] },
            osql_store::ScannedTxn { seq: 2, stmts: vec!["INSERT INTO t VALUES (2, 'b')".into()] },
        ]);
        media.publish_segment(&crate::segment_name(1), &longer).unwrap();

        let fpath = dir.join("follower.store");
        seed_if_missing(&fpath, &media).unwrap();
        let (mut f, _) = Follower::open(&fpath).unwrap();
        // the segment no longer matches its manifest entry → refused
        let err = f.poll(&media).unwrap_err();
        assert!(matches!(err, ReplError::Corrupt(_)), "{err}");
        assert_eq!(f.applied_seq(), 0, "nothing applied from a mismatched segment");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_advertised_segment_is_reported_not_skipped() {
        let dir = tmpdir("missing-seg");
        let mut p = primary(&dir.join("primary.store"));
        p.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        p.commit().unwrap();
        let media = MemShipDir::new();
        ship_store(p.path(), &media).unwrap();
        media.remove_segment(&crate::segment_name(1));

        let fpath = dir.join("follower.store");
        seed_if_missing(&fpath, &media).unwrap();
        let (mut f, _) = Follower::open(&fpath).unwrap();
        let err = f.poll(&media).unwrap_err();
        assert!(matches!(err, ReplError::Corrupt(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promotion_refuses_a_pending_partial_transaction() {
        let dir = tmpdir("promote-pending");
        let mut p = primary(&dir.join("follower.store"));
        p.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        p.commit().unwrap();
        drop(p);
        let (mut f, _) = Follower::open(&dir.join("follower.store")).unwrap();
        // simulate an apply loop that died mid-transaction
        f.store.execute("INSERT INTO t VALUES (2, 'b')").unwrap();
        let err = f.promote().unwrap_err();
        assert!(matches!(err, ReplError::Diverged(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
