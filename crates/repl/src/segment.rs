//! Segment files: the unit of WAL shipping.
//!
//! A segment is an 8-byte magic (`OSQLSEG1`) followed by WAL-framed
//! records — the same `[kind][len][payload][crc32]` framing the store's
//! log uses, holding each shipped transaction's statement records and
//! its commit record. Segments are named by the first commit sequence
//! they carry (`seg-<start_seq as 016x>.seg`), so a directory listing
//! sorts into stream order lexicographically.
//!
//! Decoding reuses [`osql_store::scan_records`]: only statements covered
//! by an intact commit record come back, and scanning stops at the first
//! torn or corrupt record — a segment whose tail was cut mid-write
//! yields exactly its intact transaction prefix and can never invent a
//! transaction the shipper did not finish publishing.

use crate::ReplError;
use osql_store::wal::{encode_record, REC_COMMIT, REC_STMT};
use osql_store::{scan_records, ScannedTxn, TxnScan};

/// Segment file magic.
pub const SEG_MAGIC: [u8; 8] = *b"OSQLSEG1";
/// Length of the segment header in bytes.
pub const SEG_HEADER: usize = 8;
/// Segment file extension (with the dot).
pub const SEG_EXT: &str = ".seg";

/// The canonical file name for a segment starting at `start_seq`.
pub fn segment_name(start_seq: u64) -> String {
    format!("seg-{start_seq:016x}{SEG_EXT}")
}

/// Parse a segment file name back into its start sequence (`None` for
/// anything that is not a canonical segment name).
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(SEG_EXT)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Encode transactions as one segment: magic, then per transaction its
/// statement records followed by its commit record.
pub fn encode_segment(txns: &[ScannedTxn]) -> Vec<u8> {
    let mut out = SEG_MAGIC.to_vec();
    for txn in txns {
        for stmt in &txn.stmts {
            out.extend_from_slice(&encode_record(REC_STMT, stmt.as_bytes()));
        }
        out.extend_from_slice(&encode_record(REC_COMMIT, &txn.seq.to_le_bytes()));
    }
    out
}

/// Decode a segment into its intact committed transactions. A missing or
/// mangled magic is an error (the file is not a segment at all); damage
/// *past* the magic comes back as a [`TxnScan::finding`] with the intact
/// prefix, because a torn tail is a normal mid-publish observation the
/// follower retries, not a reason to refuse the transactions before it.
pub fn decode_segment(buf: &[u8]) -> Result<TxnScan, ReplError> {
    if buf.len() < SEG_HEADER {
        return Err(ReplError::Corrupt(format!(
            "segment is {} bytes, shorter than its header",
            buf.len()
        )));
    }
    if buf[..SEG_HEADER] != SEG_MAGIC {
        return Err(ReplError::Corrupt("bad segment magic".to_owned()));
    }
    Ok(scan_records(buf, SEG_HEADER))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(seq: u64, stmts: &[&str]) -> ScannedTxn {
        ScannedTxn { seq, stmts: stmts.iter().map(|s| (*s).to_owned()).collect() }
    }

    #[test]
    fn names_round_trip_and_sort_in_stream_order() {
        for seq in [0u64, 1, 255, 4096, u64::MAX] {
            assert_eq!(parse_segment_name(&segment_name(seq)), Some(seq));
        }
        let mut names: Vec<String> = [300u64, 2, 100].iter().map(|s| segment_name(*s)).collect();
        names.sort();
        let seqs: Vec<u64> = names.iter().map(|n| parse_segment_name(n).unwrap()).collect();
        assert_eq!(seqs, vec![2, 100, 300]);
        assert_eq!(parse_segment_name("seg-zz.seg"), None);
        assert_eq!(parse_segment_name("seg-0000000000000001.tmp"), None);
        assert_eq!(parse_segment_name("MANIFEST"), None);
    }

    #[test]
    fn encode_decode_round_trips() {
        let txns = vec![
            txn(4, &["INSERT INTO t VALUES (1)", "UPDATE t SET v = 2"]),
            txn(5, &[]),
            txn(6, &["DELETE FROM t"]),
        ];
        let buf = encode_segment(&txns);
        let scan = decode_segment(&buf).unwrap();
        assert_eq!(scan.txns, txns);
        assert!(scan.finding.is_none());
        assert_eq!(scan.tail_bytes, 0);
    }

    #[test]
    fn torn_tail_yields_the_intact_prefix_only() {
        let txns = vec![txn(1, &["INSERT INTO t VALUES (1)"]), txn(2, &["DELETE FROM t"])];
        let full = encode_segment(&txns);
        for cut in SEG_HEADER..full.len() {
            let scan = decode_segment(&full[..cut]).unwrap();
            assert!(scan.txns.len() <= 2, "cut at {cut}");
            for (i, t) in scan.txns.iter().enumerate() {
                assert_eq!(*t, txns[i], "cut at {cut} must only shorten, never alter");
            }
            if cut < full.len() {
                assert!(scan.txns.len() < 2, "cut inside txn 2 cannot yield txn 2");
            }
        }
    }

    #[test]
    fn bad_magic_is_an_error_not_a_finding() {
        assert!(matches!(decode_segment(b"OSQL"), Err(ReplError::Corrupt(_))));
        let mut buf = encode_segment(&[txn(1, &["X"])]);
        buf[0] ^= 0xFF;
        assert!(matches!(decode_segment(&buf), Err(ReplError::Corrupt(_))));
    }
}
