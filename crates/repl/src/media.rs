//! Where shipped bytes live: the shipping-directory abstraction.
//!
//! [`ShipMedia`] is the transport between a primary and its followers.
//! Production uses [`FsShipDir`] — a plain directory, so "replication"
//! works over anything that can present one (local disk, NFS, a synced
//! bucket). Tests use [`MemShipDir`], an in-memory directory behind a
//! chk-shimmed mutex, so the concurrency model suite can interleave a
//! shipper and a follower deterministically and the fault matrix can
//! corrupt published bytes without touching a filesystem.
//!
//! Both implementations give the same guarantee the protocol relies on:
//! publishing a name is all-or-nothing (temp-file + rename on disk, a
//! single map insert in memory) — a reader sees the old bytes or the
//! new bytes, never a prefix.

use osql_chk::Mutex;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A shipping directory: named blobs with atomic publish.
pub trait ShipMedia {
    /// Read the manifest, `None` when nothing was ever published.
    fn read_manifest(&self) -> io::Result<Option<Vec<u8>>>;
    /// Atomically publish (create or replace) the manifest.
    fn publish_manifest(&self, bytes: &[u8]) -> io::Result<()>;
    /// Read one segment by name.
    fn read_segment(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Atomically publish (create or replace) one segment.
    fn publish_segment(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Segment names present, sorted (stream order for canonical names).
    fn segment_names(&self) -> io::Result<Vec<String>>;
    /// Read an auxiliary blob (e.g. the bootstrap base snapshot),
    /// `None` when absent.
    fn read_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>>;
    /// Atomically publish (create or replace) an auxiliary blob.
    fn publish_blob(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
}

/// A shipping directory on a real filesystem.
#[derive(Debug, Clone)]
pub struct FsShipDir {
    dir: PathBuf,
}

impl FsShipDir {
    /// Open (creating if needed) the shipping directory at `dir`.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(FsShipDir { dir: dir.to_owned() })
    }

    /// The directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write `bytes` under `name` via temp-file + fsync + rename, so a
    /// concurrent reader (or a crash) never observes a partial publish.
    fn publish(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(name))?;
        // best-effort directory fsync so the rename itself is durable
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

impl ShipMedia for FsShipDir {
    fn read_manifest(&self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.dir.join(crate::MANIFEST_NAME)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn publish_manifest(&self, bytes: &[u8]) -> io::Result<()> {
        self.publish(crate::MANIFEST_NAME, bytes)
    }

    fn read_segment(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.dir.join(name))
    }

    fn publish_segment(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.publish(name, bytes)
    }

    fn segment_names(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if crate::parse_segment_name(name).is_some() {
                names.push(name.to_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.dir.join(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn publish_blob(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.publish(name, bytes)
    }
}

/// An in-memory shipping directory (cheaply cloneable; clones share the
/// same contents). The model suite interleaves a shipper thread and a
/// follower thread over one of these; the fault matrix mutates published
/// bytes directly via [`MemShipDir::corrupt_segment`] and
/// [`MemShipDir::truncate_segment`].
#[derive(Debug, Clone, Default)]
pub struct MemShipDir {
    inner: Arc<Mutex<MemInner>>,
}

#[derive(Debug, Default)]
struct MemInner {
    manifest: Option<Vec<u8>>,
    /// Segments and auxiliary blobs share one namespace, exactly as they
    /// share one directory on disk; `segment_names` filters by name.
    files: HashMap<String, Vec<u8>>,
}

impl MemShipDir {
    /// An empty in-memory shipping directory.
    pub fn new() -> Self {
        MemShipDir::default()
    }

    /// Flip one byte of a published segment (fault injection).
    pub fn corrupt_segment(&self, name: &str, offset: usize, xor: u8) -> bool {
        let mut inner = self.inner.lock();
        match inner.files.get_mut(name) {
            Some(bytes) if offset < bytes.len() => {
                bytes[offset] ^= xor;
                true
            }
            _ => false,
        }
    }

    /// Cut a published segment to `len` bytes (torn-tail injection).
    pub fn truncate_segment(&self, name: &str, len: usize) -> bool {
        let mut inner = self.inner.lock();
        match inner.files.get_mut(name) {
            Some(bytes) if len <= bytes.len() => {
                bytes.truncate(len);
                true
            }
            _ => false,
        }
    }

    /// Flip one byte of the published manifest (fault injection).
    pub fn corrupt_manifest(&self, offset: usize, xor: u8) -> bool {
        let mut inner = self.inner.lock();
        match inner.manifest.as_mut() {
            Some(bytes) if offset < bytes.len() => {
                bytes[offset] ^= xor;
                true
            }
            _ => false,
        }
    }

    /// Remove a published segment (manifest/segment mismatch injection).
    pub fn remove_segment(&self, name: &str) -> bool {
        self.inner.lock().files.remove(name).is_some()
    }
}

impl ShipMedia for MemShipDir {
    fn read_manifest(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.inner.lock().manifest.clone())
    }

    fn publish_manifest(&self, bytes: &[u8]) -> io::Result<()> {
        self.inner.lock().manifest = Some(bytes.to_vec());
        Ok(())
    }

    fn read_segment(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.lock().files.get(name).cloned().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no segment {name}"))
        })
    }

    fn publish_segment(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.inner.lock().files.insert(name.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn segment_names(&self) -> io::Result<Vec<String>> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner
            .files
            .keys()
            .filter(|n| crate::parse_segment_name(n).is_some())
            .cloned()
            .collect();
        names.sort();
        Ok(names)
    }

    fn read_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.inner.lock().files.get(name).cloned())
    }

    fn publish_blob(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.inner.lock().files.insert(name.to_owned(), bytes.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(media: &impl ShipMedia) {
        assert_eq!(media.read_manifest().unwrap(), None);
        media.publish_manifest(b"m1").unwrap();
        assert_eq!(media.read_manifest().unwrap(), Some(b"m1".to_vec()));
        media.publish_manifest(b"m2").unwrap();
        assert_eq!(media.read_manifest().unwrap(), Some(b"m2".to_vec()));
        let a = crate::segment_name(10);
        let b = crate::segment_name(2);
        media.publish_segment(&a, b"aaa").unwrap();
        media.publish_segment(&b, b"bb").unwrap();
        assert_eq!(media.read_segment(&a).unwrap(), b"aaa".to_vec());
        assert_eq!(media.segment_names().unwrap(), vec![b.clone(), a.clone()]);
        assert!(media.read_segment("seg-ghost.seg").is_err());
        assert_eq!(media.read_blob("BASE").unwrap(), None);
        media.publish_blob("BASE", b"snapshot").unwrap();
        assert_eq!(media.read_blob("BASE").unwrap(), Some(b"snapshot".to_vec()));
        // blobs never list as segments
        assert_eq!(media.segment_names().unwrap().len(), 2);
    }

    #[test]
    fn mem_dir_behaves() {
        exercise(&MemShipDir::new());
    }

    #[test]
    fn fs_dir_behaves_and_ignores_foreign_files() {
        let dir = std::env::temp_dir().join(format!("osql-repl-media-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let media = FsShipDir::open(&dir).unwrap();
        exercise(&media);
        // stray files (editor droppings, tmp files) never list as segments
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        std::fs::write(dir.join("seg-0000000000000001.seg.tmp"), b"x").unwrap();
        assert_eq!(media.segment_names().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_fault_injection_hooks_work() {
        let media = MemShipDir::new();
        let name = crate::segment_name(1);
        media.publish_segment(&name, b"hello").unwrap();
        assert!(media.corrupt_segment(&name, 1, 0xFF));
        assert_ne!(media.read_segment(&name).unwrap(), b"hello".to_vec());
        assert!(media.truncate_segment(&name, 2));
        assert_eq!(media.read_segment(&name).unwrap().len(), 2);
        assert!(media.remove_segment(&name));
        assert!(!media.remove_segment(&name));
        assert!(!media.corrupt_manifest(0, 1), "no manifest yet");
        media.publish_manifest(b"m").unwrap();
        assert!(media.corrupt_manifest(0, 1));
    }
}
