//! Primary side: publish committed WAL transactions into a shipping
//! directory.
//!
//! One round of [`ship_wal`] is idempotent and crash-safe:
//!
//! 1. read + verify the current [`Manifest`] (absent ⇒ nothing shipped
//!    yet, the bootstrap base covers everything up to `base_seq`);
//! 2. structurally scan the primary's WAL for committed transactions
//!    *past* the shipped watermark — statements are never re-executed on
//!    the primary, only re-framed;
//! 3. publish them as one segment named by their first sequence, then
//!    publish the manifest advertising the new `last_commit_seq`.
//!
//! Because the segment goes out before the manifest that advertises it,
//! a crash between the two leaves an orphan segment the next round
//! simply overwrites (same watermark ⇒ same start sequence ⇒ same
//! name, atomically replaced). The manifest therefore never advertises
//! a transaction whose bytes are not already durable in the directory —
//! the "no unshipped suffix is ever invented" half of the failover
//! guarantee.
//!
//! If the primary checkpointed commits it never shipped, the log no
//! longer holds the follower's next sequence; that is a hard
//! [`ReplError::Gap`], not something to paper over — the operator
//! re-seeds the shipping directory from a fresh base snapshot.

use crate::media::ShipMedia;
use crate::{Manifest, ReplError, SegmentMeta};
use osql_store::wal::{WAL_HEADER, WAL_MAGIC};
use osql_store::{crc32, read_toc, scan_records, wal_path};
use std::path::Path;

/// Name of the bootstrap base snapshot blob in a shipping directory: a
/// byte-for-byte copy of the primary's base file, published once before
/// the first manifest so a brand-new follower can seed its local store
/// from the directory alone.
pub const BASE_NAME: &str = "BASE";

/// What one shipping round did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Transactions published this round.
    pub shipped_txns: u64,
    /// Statements inside those transactions.
    pub shipped_stmts: u64,
    /// Segment file published this round (`None` when already current).
    pub segment: Option<String>,
    /// The manifest's advertised last commit sequence after this round.
    pub last_commit_seq: u64,
    /// Whether this round published the bootstrap base snapshot.
    pub published_base: bool,
}

/// Read and verify the shipping directory's manifest (`Ok(None)` when
/// nothing was ever published).
pub fn read_manifest(media: &impl ShipMedia) -> Result<Option<Manifest>, ReplError> {
    match media.read_manifest()? {
        Some(bytes) => Ok(Some(Manifest::decode(&bytes)?)),
        None => Ok(None),
    }
}

/// Ship every committed WAL transaction past the current watermark.
///
/// `wal_buf` is the raw sidecar WAL (header included; empty when the
/// file does not exist) and `base_seq` is the primary's base snapshot
/// sequence — the watermark used when no manifest exists yet, because
/// the bootstrap base already covers everything up to it.
pub fn ship_wal(
    media: &impl ShipMedia,
    wal_buf: &[u8],
    base_seq: u64,
) -> Result<ShipReport, ReplError> {
    let manifest = read_manifest(media)?;
    let shipped = manifest.as_ref().map_or(base_seq, |m| m.last_commit_seq);
    if shipped < base_seq {
        // the primary checkpointed commits that were never published;
        // the log cannot produce them any more
        return Err(ReplError::Gap { have: shipped, need: shipped + 1 });
    }

    let mut report =
        ShipReport { last_commit_seq: shipped, ..ShipReport::default() };
    let fresh: Vec<_> = if wal_buf.is_empty() {
        Vec::new()
    } else {
        if wal_buf.len() < WAL_HEADER as usize || wal_buf[..WAL_HEADER as usize] != WAL_MAGIC {
            return Err(ReplError::Corrupt("primary WAL has a bad header".to_owned()));
        }
        let scan = scan_records(wal_buf, WAL_HEADER as usize);
        scan.txns.into_iter().filter(|t| t.seq > shipped).collect()
    };
    let Some(first) = fresh.first() else {
        if manifest.is_none() {
            // first ship of an idle store: publish a manifest that
            // advertises the base watermark, so followers learn their
            // target position and later rounds stop re-publishing BASE
            let initial = Manifest { last_commit_seq: shipped, ..Manifest::default() };
            media.publish_manifest(&initial.encode())?;
        }
        return Ok(report);
    };
    if first.seq != shipped + 1 {
        // the log starts past the watermark (e.g. a checkpoint raced
        // this round between reading the TOC and reading the WAL)
        return Err(ReplError::Gap { have: shipped, need: shipped + 1 });
    }

    let name = crate::segment_name(first.seq);
    let bytes = crate::encode_segment(&fresh);
    let meta = SegmentMeta {
        start_seq: first.seq,
        end_seq: fresh.last().expect("non-empty").seq,
        bytes: bytes.len() as u64,
        crc: crc32(&bytes),
    };
    // segment first, manifest second: the advertisement must never
    // precede the bytes it advertises
    media.publish_segment(&name, &bytes)?;
    let mut next = manifest.unwrap_or_default();
    next.segments.retain(|s| s.start_seq != meta.start_seq);
    next.segments.push(meta);
    next.segments.sort_by_key(|s| s.start_seq);
    next.last_commit_seq = meta.end_seq;
    media.publish_manifest(&next.encode())?;

    report.shipped_txns = fresh.len() as u64;
    report.shipped_stmts = fresh.iter().map(|t| t.stmts.len() as u64).sum();
    report.segment = Some(name);
    report.last_commit_seq = meta.end_seq;
    Ok(report)
}

/// Ship from a store on disk: publish the bootstrap base snapshot on the
/// first round (no manifest yet), then ship the sidecar WAL.
pub fn ship_store(store_path: &Path, media: &impl ShipMedia) -> Result<ShipReport, ReplError> {
    let toc = read_toc(store_path)?;
    let mut published_base = false;
    if media.read_manifest()?.is_none() {
        let base = std::fs::read(store_path)?;
        media.publish_blob(BASE_NAME, &base)?;
        published_base = true;
    }
    let wal_buf = match std::fs::read(wal_path(store_path)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let mut report = ship_wal(media, &wal_buf, toc.base_seq)?;
    report.published_base = published_base;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemShipDir;
    use osql_store::wal::{encode_record, REC_COMMIT, REC_FSYNC, REC_STMT};

    /// Build a WAL image: header plus committed txns `(seq, stmts)`.
    fn wal_image(txns: &[(u64, &[&str])]) -> Vec<u8> {
        let mut buf = WAL_MAGIC.to_vec();
        for (seq, stmts) in txns {
            for stmt in *stmts {
                buf.extend_from_slice(&encode_record(REC_STMT, stmt.as_bytes()));
            }
            buf.extend_from_slice(&encode_record(REC_COMMIT, &seq.to_le_bytes()));
        }
        buf
    }

    #[test]
    fn first_ship_publishes_segment_and_manifest() {
        let media = MemShipDir::new();
        let wal = wal_image(&[(1, &["A"]), (2, &["B", "C"])]);
        let report = ship_wal(&media, &wal, 0).unwrap();
        assert_eq!(report.shipped_txns, 2);
        assert_eq!(report.shipped_stmts, 3);
        assert_eq!(report.last_commit_seq, 2);
        assert_eq!(report.segment.as_deref(), Some(crate::segment_name(1).as_str()));

        let m = read_manifest(&media).unwrap().unwrap();
        assert_eq!(m.last_commit_seq, 2);
        assert_eq!(m.segments.len(), 1);
        let seg = media.read_segment(&crate::segment_name(1)).unwrap();
        assert_eq!(seg.len() as u64, m.segments[0].bytes);
        assert_eq!(crc32(&seg), m.segments[0].crc);
        let scan = crate::decode_segment(&seg).unwrap();
        assert_eq!(scan.txns.len(), 2);
        assert_eq!(scan.txns[1].stmts, vec!["B".to_owned(), "C".to_owned()]);
    }

    #[test]
    fn reship_is_incremental_and_idempotent() {
        let media = MemShipDir::new();
        let wal1 = wal_image(&[(1, &["A"])]);
        ship_wal(&media, &wal1, 0).unwrap();

        // nothing new: no segment published
        let report = ship_wal(&media, &wal1, 0).unwrap();
        assert_eq!(report.shipped_txns, 0);
        assert_eq!(report.segment, None);
        assert_eq!(report.last_commit_seq, 1);

        // two more commits land: one new segment holding exactly them
        let wal2 = wal_image(&[(1, &["A"]), (2, &["B"]), (3, &["C"])]);
        let report = ship_wal(&media, &wal2, 0).unwrap();
        assert_eq!(report.shipped_txns, 2);
        assert_eq!(report.segment.as_deref(), Some(crate::segment_name(2).as_str()));
        let m = read_manifest(&media).unwrap().unwrap();
        assert_eq!(m.last_commit_seq, 3);
        assert_eq!(m.segments.len(), 2);
        assert_eq!(m.segments[0].start_seq, 1);
        assert_eq!(m.segments[1].start_seq, 2);
        assert_eq!(m.segments[1].end_seq, 3);
    }

    #[test]
    fn crash_between_segment_and_manifest_heals_on_reship() {
        let media = MemShipDir::new();
        ship_wal(&media, &wal_image(&[(1, &["A"])]), 0).unwrap();
        // simulate the crashed half-round: segment 2 published, manifest not
        let orphan = crate::encode_segment(&[osql_store::ScannedTxn {
            seq: 2,
            stmts: vec!["B".to_owned()],
        }]);
        media.publish_segment(&crate::segment_name(2), &orphan).unwrap();
        // manifest still advertises 1 — the orphan is invisible
        assert_eq!(read_manifest(&media).unwrap().unwrap().last_commit_seq, 1);
        // next round overwrites the orphan and advertises it
        let wal = wal_image(&[(1, &["A"]), (2, &["B"]), (3, &["C"])]);
        let report = ship_wal(&media, &wal, 0).unwrap();
        assert_eq!(report.shipped_txns, 2);
        let m = read_manifest(&media).unwrap().unwrap();
        assert_eq!(m.last_commit_seq, 3);
        assert_eq!(m.segments.len(), 2);
        let seg = media.read_segment(&crate::segment_name(2)).unwrap();
        assert_eq!(crate::decode_segment(&seg).unwrap().txns.len(), 2, "orphan replaced");
    }

    #[test]
    fn checkpoint_outrunning_shipping_is_a_gap() {
        let media = MemShipDir::new();
        ship_wal(&media, &wal_image(&[(1, &["A"])]), 0).unwrap();
        // primary checkpointed through seq 5 and truncated its log:
        // commits 2..=5 are gone without ever being shipped
        let err = ship_wal(&media, &wal_image(&[(6, &["F"])]), 5).unwrap_err();
        assert!(matches!(err, ReplError::Gap { have: 1, need: 2 }), "{err}");
        // same story when the truncated log is empty
        let err = ship_wal(&media, &[], 5).unwrap_err();
        assert!(matches!(err, ReplError::Gap { have: 1, need: 2 }), "{err}");
    }

    #[test]
    fn torn_wal_tail_ships_only_the_committed_prefix() {
        let media = MemShipDir::new();
        let full = wal_image(&[(1, &["A"]), (2, &["B"])]);
        // cut mid-way through txn 2's commit record
        let torn = &full[..full.len() - 3];
        let report = ship_wal(&media, torn, 0).unwrap();
        assert_eq!(report.shipped_txns, 1);
        assert_eq!(report.last_commit_seq, 1);
        // uncommitted statements (no commit record at all) also never ship
        let mut open_txn = wal_image(&[(1, &["A"])]);
        open_txn.extend_from_slice(&encode_record(REC_STMT, b"UNCOMMITTED"));
        let report = ship_wal(&media, &open_txn, 0).unwrap();
        assert_eq!(report.shipped_txns, 0, "already current, open txn invisible");
    }

    #[test]
    fn fsync_marks_are_transparent() {
        let media = MemShipDir::new();
        let mut buf = WAL_MAGIC.to_vec();
        buf.extend_from_slice(&encode_record(REC_STMT, b"A"));
        buf.extend_from_slice(&encode_record(REC_FSYNC, &0u64.to_le_bytes()));
        buf.extend_from_slice(&encode_record(REC_COMMIT, &1u64.to_le_bytes()));
        let report = ship_wal(&media, &buf, 0).unwrap();
        assert_eq!(report.shipped_txns, 1);
        assert_eq!(report.shipped_stmts, 1);
    }

    #[test]
    fn ship_store_publishes_base_once_then_increments() {
        let dir = std::env::temp_dir().join(format!("osql-repl-ship-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.store");
        let mut db = sqlkit::Database::new("db");
        db.execute_script("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)").unwrap();
        let mut store = osql_store::Store::create(&path, db, vec![]).unwrap();
        store.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        store.commit().unwrap();

        let media = MemShipDir::new();
        let report = ship_store(&path, &media).unwrap();
        assert!(report.published_base);
        assert_eq!(report.shipped_txns, 1);
        assert_eq!(report.last_commit_seq, 1);
        let base = media.read_blob(BASE_NAME).unwrap().unwrap();
        assert!(!base.is_empty());

        store.execute("INSERT INTO t VALUES (2, 'b')").unwrap();
        store.commit().unwrap();
        let report = ship_store(&path, &media).unwrap();
        assert!(!report.published_base, "base is published exactly once");
        assert_eq!(report.shipped_txns, 1);
        assert_eq!(report.last_commit_seq, 2);
        // the base blob is the pre-commit snapshot; it did not move
        assert_eq!(media.read_blob(BASE_NAME).unwrap().unwrap(), base);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
