//! Lock-order analysis over the replication layer: a shipper, a polling
//! follower, and serving-side readers hammer the shared shipping
//! directory and `ReplState` concurrently, then assert the always-on
//! analyzer saw an acyclic acquisition graph.
#![cfg(all(debug_assertions, not(osql_model)))]

use osql_repl::{ship_wal, ApplyReport, MemShipDir, ReplState, ShipMedia};
use osql_store::wal::{encode_record, REC_COMMIT, REC_STMT, WAL_MAGIC};
use std::sync::Arc;

fn wal_image(n: u64) -> Vec<u8> {
    let mut buf = WAL_MAGIC.to_vec();
    for seq in 1..=n {
        buf.extend_from_slice(&encode_record(REC_STMT, format!("S{seq}").as_bytes()));
        buf.extend_from_slice(&encode_record(REC_COMMIT, &seq.to_le_bytes()));
    }
    buf
}

#[test]
fn repl_state_and_ship_dir_admit_a_global_lock_order() {
    let media = MemShipDir::new();
    let state = Arc::new(ReplState::new(1));
    std::thread::scope(|s| {
        {
            let media = media.clone();
            s.spawn(move || {
                for n in 1..=6u64 {
                    ship_wal(&media, &wal_image(n), 0).unwrap();
                }
            });
        }
        {
            let media = media.clone();
            let state = state.clone();
            s.spawn(move || {
                for _ in 0..6 {
                    let target = match osql_repl::read_manifest(&media) {
                        Ok(Some(m)) => m.last_commit_seq,
                        _ => 0,
                    };
                    state.note_poll(
                        "db",
                        &ApplyReport {
                            target_seq: target,
                            applied_seq: target,
                            ..ApplyReport::default()
                        },
                    );
                }
            });
        }
        {
            let state = state.clone();
            s.spawn(move || {
                for _ in 0..6 {
                    let _ = state.applied_seq("db");
                    let _ = state.max_lag();
                    state.record_stale_rejection();
                }
            });
        }
    });
    assert!(!media.segment_names().unwrap().is_empty());
    assert!(state.stale_rejections() >= 6);
    assert_eq!(
        osql_chk::lockorder::cycles_detected(),
        0,
        "lock-order cycle in the replication layer"
    );
}
