//! The replication failover matrix: ship → apply → promote under fault
//! injection at every byte offset.
//!
//! Two properties hold at every fault point:
//!
//! - **No committed-and-shipped transaction is lost.** Whatever tears —
//!   segment tails, manifest bytes, the follower's own WAL mid-apply,
//!   the promotion checkpoint window — once the fault clears, the
//!   follower converges to exactly the shipped prefix, and a promoted
//!   follower serves every acknowledged-shipped transaction with rows
//!   identical to the primary-only run.
//! - **No unshipped suffix is ever invented.** A transaction the
//!   manifest never advertised — committed on the primary but not
//!   shipped, or sitting in an orphan segment from a crashed publish —
//!   never appears on a follower, torn bytes never decode into
//!   plausible transactions, and the follower's state is always exactly
//!   some commit-boundary prefix, never half a transaction.

use osql_repl::{
    seed_if_missing, ship_store, Follower, MemShipDir, ReplError, ShipMedia,
};
use osql_store::fault::{FaultFile, FaultPlan};
use osql_store::{write_database, Store};
use sqlkit::value::Row;
use sqlkit::Database;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osql-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_db() -> Database {
    let mut db = Database::new("ledger");
    db.execute_script(
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, name TEXT, balance REAL);\
         INSERT INTO acct VALUES (1, 'seed', 100.0);",
    )
    .unwrap();
    db
}

/// Deterministic statements for transaction `i` (1-based commit seq).
fn txn_stmts(i: u64) -> Vec<String> {
    let mut stmts =
        vec![format!("INSERT INTO acct VALUES ({}, 'tx{i}', {i}.5)", 100 + i * 10)];
    if i % 3 == 1 {
        stmts.push(format!("UPDATE acct SET balance = {i} WHERE id = 1"));
    }
    if i.is_multiple_of(4) {
        stmts.push(format!("DELETE FROM acct WHERE id = {}", 100 + (i - 1) * 10));
    }
    stmts
}

fn rows_of(db: &Database) -> Vec<Row> {
    db.rows("acct").unwrap().to_vec()
}

/// The reference: rows after each commit boundary, computed by a pure
/// in-memory replay. `states[k]` is the state with commits `1..=k`
/// applied — the only states any replica is ever allowed to expose.
fn reference_states(n: u64) -> Vec<Vec<Row>> {
    let mut db = base_db();
    let mut states = vec![rows_of(&db)];
    for i in 1..=n {
        for stmt in txn_stmts(i) {
            db.execute_script(&stmt).unwrap();
        }
        states.push(rows_of(&db));
    }
    states
}

/// Run the primary at `path`, committing txns `1..=n` and shipping after
/// every `ship_every`-th commit. Returns the primary store.
fn run_primary(path: &Path, media: &impl ShipMedia, n: u64, ship_every: u64) -> Store {
    let store = Store::create(path, base_db(), vec![]).unwrap();
    let mut store = store;
    for i in 1..=n {
        for stmt in txn_stmts(i) {
            store.execute(&stmt).unwrap();
        }
        assert_eq!(store.commit().unwrap(), i);
        if i % ship_every == 0 {
            ship_store(path, media).unwrap();
        }
    }
    store
}

#[test]
fn promoted_follower_matches_the_primary_only_run_exactly() {
    let dir = tmpdir("promote");
    let media = MemShipDir::new();
    let n = 9;
    let primary = run_primary(&dir.join("primary.store"), &media, n, 2);
    ship_store(primary.path(), &media).unwrap(); // flush the odd tail txn
    let states = reference_states(n);
    assert_eq!(rows_of(primary.database()), states[n as usize]);

    let fpath = dir.join("follower.store");
    assert!(seed_if_missing(&fpath, &media).unwrap());
    let (mut f, _) = Follower::open(&fpath).unwrap();
    let report = f.poll(&media).unwrap();
    assert_eq!(report.applied_seq, n);
    assert!(report.segments_read >= 4, "shipping every 2 commits yields many segments");

    let (mut promoted, pr) = f.promote().unwrap();
    assert_eq!(pr.promoted_at_seq, n);
    assert_eq!(
        rows_of(promoted.database()),
        rows_of(primary.database()),
        "promoted follower serves every acknowledged-shipped txn byte-identically"
    );
    // the promoted store is a real primary: writes continue the sequence
    promoted.execute("INSERT INTO acct VALUES (999, 'after', 1.0)").unwrap();
    assert_eq!(promoted.commit().unwrap(), n + 1);
    drop(promoted);
    let (reopened, report) = Store::open(&fpath).unwrap();
    assert_eq!(report.replay.committed, 1, "only the post-promotion txn replays");
    assert_eq!(reopened.commit_seq(), n + 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unshipped_primary_suffix_never_appears_on_a_follower() {
    let dir = tmpdir("suffix");
    let media = MemShipDir::new();
    let n = 8;
    let shipped = 5;
    // ship after every commit up to `shipped`, then commit 3 more
    // without shipping — those are committed but never acknowledged
    let path = dir.join("primary.store");
    let mut primary = run_primary(&path, &media, shipped, 1);
    for i in shipped + 1..=n {
        for stmt in txn_stmts(i) {
            primary.execute(&stmt).unwrap();
        }
        primary.commit().unwrap();
    }
    let states = reference_states(n);

    let fpath = dir.join("follower.store");
    seed_if_missing(&fpath, &media).unwrap();
    let (mut f, _) = Follower::open(&fpath).unwrap();
    let report = f.poll(&media).unwrap();
    assert_eq!(report.applied_seq, shipped, "only the shipped prefix applies");
    assert_eq!(rows_of(f.store().database()), states[shipped as usize]);

    let (mut promoted, pr) = f.promote().unwrap();
    assert_eq!(pr.promoted_at_seq, shipped);
    assert_eq!(rows_of(promoted.database()), states[shipped as usize]);
    // the promoted primary's next commit takes seq 6 — its own history,
    // not the dead primary's unshipped txn 6
    promoted.execute("INSERT INTO acct VALUES (999, 'fork', 0.0)").unwrap();
    assert_eq!(promoted.commit().unwrap(), shipped + 1);
    assert_ne!(rows_of(promoted.database()), states[shipped as usize + 1]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_advertised_segment_is_refused_at_every_cut() {
    let dir = tmpdir("torn-seg");
    let media = MemShipDir::new();
    let n = 3;
    run_primary(&dir.join("primary.store"), &media, n, n); // one segment
    let name = osql_repl::segment_name(1);
    let intact = media.read_segment(&name).unwrap();

    let fpath = dir.join("follower.store");
    seed_if_missing(&fpath, &media).unwrap();
    let (mut f, _) = Follower::open(&fpath).unwrap();
    let mut fault_points = 0u64;
    for cut in 0..intact.len() {
        media.publish_segment(&name, &intact[..cut]).unwrap();
        let err = f.poll(&media).unwrap_err();
        assert!(
            matches!(err, ReplError::Corrupt(_)),
            "cut at {cut}: a mangled advertised segment must be refused, got {err}"
        );
        assert_eq!(f.applied_seq(), 0, "cut at {cut}: nothing may apply from it");
        fault_points += 1;
    }
    // single-byte corruption at every offset is refused the same way
    for off in 0..intact.len() {
        let mut sick = intact.clone();
        sick[off] ^= 0xFF;
        media.publish_segment(&name, &sick).unwrap();
        let err = f.poll(&media).unwrap_err();
        assert!(matches!(err, ReplError::Corrupt(_)), "corrupt byte {off}: {err}");
        assert_eq!(f.applied_seq(), 0);
        fault_points += 1;
    }
    eprintln!("segment fault points exercised: {fault_points}");
    // the fault clears (re-ship heals the directory): follower converges
    media.publish_segment(&name, &intact).unwrap();
    let report = f.poll(&media).unwrap();
    assert_eq!(report.applied_seq, n);
    assert_eq!(rows_of(f.store().database()), reference_states(n)[n as usize]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_manifest_is_refused_at_every_byte() {
    let dir = tmpdir("bad-manifest");
    let media = MemShipDir::new();
    let n = 2;
    run_primary(&dir.join("primary.store"), &media, n, 1);
    let intact = media.read_manifest().unwrap().unwrap();

    let fpath = dir.join("follower.store");
    seed_if_missing(&fpath, &media).unwrap();
    let (mut f, _) = Follower::open(&fpath).unwrap();
    for off in 0..intact.len() {
        assert!(media.corrupt_manifest(off, 0xA5));
        let err = f.poll(&media).unwrap_err();
        assert!(matches!(err, ReplError::Corrupt(_)), "byte {off}: {err}");
        assert_eq!(f.applied_seq(), 0, "byte {off}: a bad advertisement applies nothing");
        assert!(media.corrupt_manifest(off, 0xA5), "undo the flip");
    }
    let report = f.poll(&media).unwrap();
    assert_eq!(report.applied_seq, n);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_advertising_a_missing_segment_is_refused() {
    let dir = tmpdir("missing-seg");
    let media = MemShipDir::new();
    let n = 4;
    run_primary(&dir.join("primary.store"), &media, n, 2); // two segments
    let fpath = dir.join("follower.store");
    seed_if_missing(&fpath, &media).unwrap();
    let (mut f, _) = Follower::open(&fpath).unwrap();
    // the *first* needed segment vanishes: nothing can apply
    let first = osql_repl::segment_name(1);
    let bytes = media.read_segment(&first).unwrap();
    media.remove_segment(&first);
    let err = f.poll(&media).unwrap_err();
    assert!(matches!(err, ReplError::Corrupt(_)), "{err}");
    assert_eq!(f.applied_seq(), 0);
    // it returns: the follower catches up across both segments
    media.publish_segment(&first, &bytes).unwrap();
    assert_eq!(f.poll(&media).unwrap().applied_seq, n);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash the follower's own WAL at every byte offset mid-apply: the
/// reopened replica must hold exactly some commit-boundary prefix
/// (never a torn transaction), and the next poll must converge to the
/// shipped target.
#[test]
fn follower_crash_mid_apply_at_every_byte_preserves_txn_atomicity() {
    let dir = tmpdir("crash-apply");
    let media = MemShipDir::new();
    let n = 6;
    run_primary(&dir.join("primary.store"), &media, n, 3);
    let states = reference_states(n);

    // materialize the follower base file once from the bootstrap blob
    let fpath = dir.join("follower.store");
    seed_if_missing(&fpath, &media).unwrap();

    // one clean full apply over fault-free media to get the WAL image
    let (mut f, _) = Follower::open_with(&fpath, FaultFile::new()).unwrap();
    assert_eq!(f.poll(&media).unwrap().applied_seq, n);
    let full = f.into_store().into_media();
    let total = full.raw_len() as u64;
    assert!(total > 64, "apply WAL must exceed the 64-fault-point floor");

    let mut fault_points = 0u64;
    for cut in 0..=total {
        let mut crashed = full.clone();
        crashed.set_plan(FaultPlan { torn_tail: Some(cut), ..FaultPlan::default() });
        crashed.crash();
        let (mut f, report) =
            Follower::open_with(&fpath, crashed).expect("follower recovery must succeed");
        let k = f.applied_seq();
        assert!(k <= n, "cut at {cut}");
        assert_eq!(
            rows_of(f.store().database()),
            states[k as usize],
            "cut at {cut}: recovered state must sit exactly on commit boundary {k} \
             (replay committed {}, finding {:?})",
            report.replay.committed,
            report.replay.finding,
        );
        // resume: the next poll re-fetches and converges, re-applying
        // nothing at or below k
        let report = f.poll(&media).unwrap();
        assert_eq!(report.applied_seq, n, "cut at {cut}");
        assert_eq!(report.applied_txns, n - k, "cut at {cut}: only the missing suffix applies");
        assert_eq!(rows_of(f.store().database()), states[n as usize], "cut at {cut}");
        fault_points += 1;
    }
    eprintln!("mid-apply crash fault points exercised: {fault_points}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash between promotion's base publish and its WAL reset: the next
/// open must skip the already-folded commits (never double-apply), and
/// the follower's WAL cut at any byte changes nothing — the published
/// base owns the full applied prefix.
#[test]
fn crash_mid_promote_window_never_double_applies_at_any_cut() {
    let dir = tmpdir("crash-promote");
    let media = MemShipDir::new();
    let n = 5;
    run_primary(&dir.join("primary.store"), &media, n, 1);
    let states = reference_states(n);

    let fpath = dir.join("follower.store");
    seed_if_missing(&fpath, &media).unwrap();
    let (mut f, _) = Follower::open_with(&fpath, FaultFile::new()).unwrap();
    assert_eq!(f.poll(&media).unwrap().applied_seq, n);
    // first half of promote's checkpoint: publish the folded base,
    // crash before the WAL reset
    let store = f.into_store();
    write_database(&fpath, store.database(), store.blobs(), store.commit_seq()).unwrap();
    let media_after = store.into_media();

    let total = media_after.raw_len() as u64;
    for cut in 0..=total {
        let mut crashed = media_after.clone();
        crashed.set_plan(FaultPlan { torn_tail: Some(cut), ..FaultPlan::default() });
        crashed.crash();
        let (f, report) = Follower::open_with(&fpath, crashed).unwrap();
        assert_eq!(report.replay.committed, 0, "cut at {cut}: base owns everything");
        assert_eq!(rows_of(f.store().database()), states[n as usize], "cut at {cut}");
        assert_eq!(f.applied_seq(), n, "cut at {cut}: sequence continues from the base");
        // finishing the promotion still works
        let (mut promoted, pr) = f.promote().unwrap();
        assert_eq!(pr.promoted_at_seq, n);
        promoted.execute("INSERT INTO acct VALUES (999, 'after', 1.0)").unwrap();
        assert_eq!(promoted.commit().unwrap(), n + 1, "cut at {cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An orphan segment from a crashed publish (never advertised by the
/// manifest) is invisible: the follower applies only up to the
/// manifest, and a re-ship that overwrites the orphan heals everything.
#[test]
fn orphan_segment_from_a_crashed_publish_is_invisible_until_advertised() {
    let dir = tmpdir("orphan");
    let media = MemShipDir::new();
    let n = 2;
    let path = dir.join("primary.store");
    let mut primary = run_primary(&path, &media, n, 1);
    // commit txn 3 and simulate the shipper crashing between segment
    // publish and manifest publish: publish the segment bytes only
    for stmt in txn_stmts(3) {
        primary.execute(&stmt).unwrap();
    }
    primary.commit().unwrap();
    let orphan = osql_repl::encode_segment(&[osql_store::ScannedTxn {
        seq: 3,
        stmts: txn_stmts(3),
    }]);
    media.publish_segment(&osql_repl::segment_name(3), &orphan).unwrap();

    let fpath = dir.join("follower.store");
    seed_if_missing(&fpath, &media).unwrap();
    let (mut f, _) = Follower::open(&fpath).unwrap();
    let report = f.poll(&media).unwrap();
    assert_eq!(report.applied_seq, 2, "the unadvertised orphan must not apply");
    assert_eq!(rows_of(f.store().database()), reference_states(3)[2]);
    // the shipper retries: manifest now advertises txn 3
    ship_store(&path, &media).unwrap();
    assert_eq!(f.poll(&media).unwrap().applied_seq, 3);
    assert_eq!(rows_of(f.store().database()), reference_states(3)[3]);
    std::fs::remove_dir_all(&dir).unwrap();
}
