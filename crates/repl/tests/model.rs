//! Model-checked concurrency invariants for the replication layer: the
//! shipper/follower tail-vs-apply race and shutdown during apply. Only
//! built under `--cfg osql_model`:
//!
//! ```sh
//! RUSTFLAGS="--cfg osql_model" CARGO_TARGET_DIR=target/model \
//!     cargo test -p osql-repl --test model
//! ```
//!
//! The follower's statement execution is sequential by construction (one
//! thread owns the store), so the racy surface is exactly what these
//! models drive: the shipping directory (segment published before
//! manifest), the local WAL's commit sequencing, and the shared
//! [`ReplState`] the serving side reads. The apply loop here is the
//! same protocol as `Follower::poll` — manifest first, advertised
//! segments only, strict next-sequence — applied onto a bare
//! `Wal<MemWal>` instead of a full store so each schedule stays cheap.
#![cfg(osql_model)]

use osql_chk::model::{self, Config, Outcome};
use osql_chk::thread;
use osql_repl::{read_manifest, ship_wal, MemShipDir, ReplState, ShipMedia};
use osql_store::wal::{encode_record, Wal, WalMedia, REC_COMMIT, REC_STMT, WAL_MAGIC};
use osql_store::audit;
use std::sync::Arc;

fn cfg() -> Config {
    Config { preemption_bound: 2, max_schedules: 50_000, ..Config::default() }
}

fn assert_pass(invariant: &str, outcome: Outcome) {
    match outcome {
        Outcome::Pass(report) => {
            eprintln!("{invariant}: {} schedule(s) explored", report.schedules);
        }
        Outcome::Fail { message, schedule, schedules } => {
            panic!("{invariant}: model check failed after {schedules} schedule(s): {message}\nschedule: {schedule}")
        }
    }
}

/// Fault-free in-memory WAL media for the follower's local log.
#[derive(Default)]
struct MemWal {
    buf: Vec<u8>,
}

impl WalMedia for MemWal {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }
    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }
    fn len(&mut self) -> std::io::Result<u64> {
        Ok(self.buf.len() as u64)
    }
    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        Ok(self.buf.clone())
    }
    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.buf.truncate(len as usize);
        Ok(())
    }
}

/// A primary WAL image holding committed txns `1..=n`, one statement
/// each.
fn wal_image(n: u64) -> Vec<u8> {
    let mut buf = WAL_MAGIC.to_vec();
    for seq in 1..=n {
        buf.extend_from_slice(&encode_record(REC_STMT, format!("S{seq}").as_bytes()));
        buf.extend_from_slice(&encode_record(REC_COMMIT, &seq.to_le_bytes()));
    }
    buf
}

/// One follower poll round — the same protocol as `Follower::poll`
/// (manifest first, advertised segments only, strict next-sequence,
/// never past the manifest), applying onto a local `Wal`. Checks the
/// shutdown flag between transactions, never inside one.
fn poll_once(media: &impl ShipMedia, wal: &mut Wal<MemWal>, state: &ReplState) {
    let manifest = match read_manifest(media) {
        Ok(Some(m)) => m,
        Ok(None) => return,
        Err(e) => panic!("manifest must always verify in a fault-free run: {e}"),
    };
    let mut report = osql_repl::ApplyReport {
        target_seq: manifest.last_commit_seq,
        ..osql_repl::ApplyReport::default()
    };
    for meta in &manifest.segments {
        if meta.end_seq <= wal.seq() {
            continue;
        }
        // published-before-advertised: an advertised segment must exist
        let bytes = media
            .read_segment(&osql_repl::segment_name(meta.start_seq))
            .expect("manifest advertised a segment that is absent");
        let scan = osql_repl::decode_segment(&bytes).unwrap();
        assert!(scan.finding.is_none(), "advertised bytes are never torn");
        for txn in &scan.txns {
            if state.shutdown_requested() {
                // stop at a transaction boundary only
                report.applied_seq = wal.seq();
                state.note_poll("db", &report);
                return;
            }
            if txn.seq <= wal.seq() {
                continue;
            }
            if txn.seq > manifest.last_commit_seq {
                break;
            }
            assert_eq!(txn.seq, wal.seq() + 1, "strict next-sequence, no holes");
            for stmt in &txn.stmts {
                wal.append_stmt(stmt).unwrap();
            }
            let committed = wal.commit().unwrap();
            assert_eq!(committed, txn.seq, "local commit reproduces the shipped seq");
            report.applied_txns += 1;
        }
    }
    report.applied_seq = wal.seq();
    state.note_poll("db", &report);
}

/// Tail-vs-apply race: a shipper publishing two rounds of segments races
/// a follower polling three times. At every interleaving the follower
/// holds exactly a prefix of the shipped stream — a manifest is never
/// observed without its segment, sequences never skip or repeat, and the
/// final poll (after the shipper finished) converges to the full stream
/// with a gap-free local log.
#[test]
fn tail_vs_apply_race_applies_exactly_a_prefix() {
    assert_pass(
        "tail_vs_apply_race_applies_exactly_a_prefix",
        model::explore(cfg(), || {
            let media = MemShipDir::new();
            let state = Arc::new(ReplState::new(1));
            let shipper = {
                let media = media.clone();
                thread::spawn(move || {
                    ship_wal(&media, &wal_image(1), 0).unwrap();
                    ship_wal(&media, &wal_image(3), 0).unwrap();
                })
            };
            let mut wal = Wal::create(MemWal::default()).unwrap();
            poll_once(&media, &mut wal, &state);
            let mid = wal.seq();
            assert!(mid <= 3, "never past what was shipped");
            shipper.join().unwrap();
            poll_once(&media, &mut wal, &state);
            assert_eq!(wal.seq(), 3, "converged to the full shipped stream");
            assert_eq!(state.applied_seq("db"), Some(3));
            assert_eq!(state.max_lag(), 0);
            let buf = wal.media_mut().read_all().unwrap();
            let a = audit(&buf);
            assert_eq!(a.commits, 3, "every shipped txn committed locally");
            assert_eq!(a.last_commit_seq, 3);
            assert_eq!(a.finding, None, "no torn records in the local log");
            assert_eq!(a.tail_bytes, 0, "no uncommitted tail");
        }),
    );
}

/// Shutdown during apply never tears a commit: a shutdown request races
/// a follower applying three shipped transactions. Wherever the flag
/// lands, the local log always ends exactly at a transaction boundary —
/// zero uncommitted tail bytes, a gap-free prefix, and the shared state
/// agrees with the log.
#[test]
fn shutdown_during_apply_never_tears_a_commit() {
    assert_pass(
        "shutdown_during_apply_never_tears_a_commit",
        model::explore(cfg(), || {
            let media = MemShipDir::new();
            ship_wal(&media, &wal_image(3), 0).unwrap();
            let state = Arc::new(ReplState::new(1));
            let stopper = {
                let state = state.clone();
                thread::spawn(move || state.request_shutdown())
            };
            let mut wal = Wal::create(MemWal::default()).unwrap();
            poll_once(&media, &mut wal, &state);
            stopper.join().unwrap();
            let applied = wal.seq();
            assert!(applied <= 3);
            let buf = wal.media_mut().read_all().unwrap();
            let a = audit(&buf);
            assert_eq!(a.commits, applied, "log holds exactly the applied prefix");
            assert_eq!(a.tail_bytes, 0, "shutdown never leaves half a transaction");
            assert_eq!(a.finding, None);
            assert_eq!(
                state.applied_seq("db"),
                Some(applied),
                "serving state agrees with the local log"
            );
        }),
    );
}

/// The serving side's reads of `ReplState` are monotonic under a racing
/// apply loop: two reads in order never observe the applied sequence
/// going backwards, and a bounded-staleness admission decision made on
/// the first read stays valid at the second.
#[test]
fn applied_seq_reads_are_monotonic_under_racing_polls() {
    assert_pass(
        "applied_seq_reads_are_monotonic_under_racing_polls",
        model::explore(cfg(), || {
            let state = Arc::new(ReplState::new(1));
            state.note_poll(
                "db",
                &osql_repl::ApplyReport {
                    target_seq: 1,
                    applied_seq: 1,
                    applied_txns: 1,
                    ..osql_repl::ApplyReport::default()
                },
            );
            let applier = {
                let state = state.clone();
                thread::spawn(move || {
                    for seq in 2..=3u64 {
                        state.note_poll(
                            "db",
                            &osql_repl::ApplyReport {
                                target_seq: 3,
                                applied_seq: seq,
                                applied_txns: 1,
                                ..osql_repl::ApplyReport::default()
                            },
                        );
                    }
                })
            };
            let first = state.applied_seq("db").unwrap();
            let second = state.applied_seq("db").unwrap();
            assert!(second >= first, "applied_seq regressed between reads");
            assert!((1..=3).contains(&first));
            applier.join().unwrap();
            assert_eq!(state.applied_seq("db"), Some(3));
            assert_eq!(state.status("db").unwrap().txns_applied, 3);
        }),
    );
}
