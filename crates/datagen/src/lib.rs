//! # datagen — synthetic BIRD/Spider-style text-to-SQL benchmarks
//!
//! The data substrate of the OpenSearch-SQL reproduction. Each example is
//! generated from a structured [`spec::QuerySpec`]; the gold SQL and the
//! natural-language question are two renderings of the same spec, and the
//! simulated LLM later recovers (possibly corrupted copies of) specs from
//! questions — see `llmsim`.
//!
//! - [`domain`] — 24 hand-written domain themes, cycled into as many
//!   domain variants as a profile needs;
//! - [`build`] — schema + data materialisation with BIRD-style dirty-value
//!   quirks and display↔stored dictionaries;
//! - [`generator`] — witness-row spec sampling (every gold SQL is
//!   executable and non-empty by construction);
//! - [`nlq`] — question + evidence rendering;
//! - [`mod@bench`] — profiles ([`bench::Profile::bird`],
//!   [`bench::Profile::spider`], [`bench::Profile::bird_mini_dev`]) and
//!   split assembly.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bench;
pub mod build;
pub mod domain;
pub mod export;
pub mod generator;
pub mod nlq;
pub mod spec;
pub mod store;
pub mod traffic;
pub mod values;

pub use bench::{generate, Benchmark, Example, Profile, Split};
pub use export::{split_to_json, write_benchmark, BirdRecord};
pub use store::{export_db_store, export_store, import_store, open_store_catalog, ImportedStore};
pub use build::{BuiltDb, ColMeta, RowScale, TableMeta};
pub use spec::{AggFunc, CmpOp, Difficulty, FilterSpec, OrderSpec, QuerySpec, SelectSpec};
pub use values::{ColKind, Quirk};
pub use traffic::{synthesize, TrafficProfile, TrafficRequest};
