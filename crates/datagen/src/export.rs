//! Exporting generated benchmarks in BIRD's on-disk layout.
//!
//! BIRD ships `dev.json` (question / evidence / SQL / db_id / difficulty)
//! plus one SQLite file per database. This module mirrors that: split
//! examples serialise to the same JSON shape, and each database dumps to a
//! SQL script the engine reloads verbatim — so generated worlds can be
//! inspected, diffed, or consumed by external tooling.

use crate::bench::{Benchmark, Example, Split};
use serde::{Deserialize, Serialize};

/// One example in BIRD's `dev.json` record shape.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BirdRecord {
    /// Question id.
    pub question_id: u32,
    /// Target database id.
    pub db_id: String,
    /// The natural-language question.
    pub question: String,
    /// External knowledge ("evidence").
    pub evidence: String,
    /// Gold SQL (BIRD's field name).
    #[serde(rename = "SQL")]
    pub sql: String,
    /// Difficulty tier.
    pub difficulty: String,
}

impl From<&Example> for BirdRecord {
    fn from(ex: &Example) -> Self {
        BirdRecord {
            question_id: ex.id,
            db_id: ex.db_id.clone(),
            question: ex.question.clone(),
            evidence: ex.evidence.clone(),
            sql: ex.gold_sql.clone(),
            difficulty: ex.difficulty.as_str().to_owned(),
        }
    }
}

/// Serialise one split as BIRD-shaped JSON.
pub fn split_to_json(bench: &Benchmark, split: Split) -> String {
    let records: Vec<BirdRecord> = bench.split(split).iter().map(BirdRecord::from).collect();
    serde_json::to_string_pretty(&records).expect("records serialise")
}

/// Parse a BIRD-shaped JSON split back into records.
pub fn records_from_json(json: &str) -> Result<Vec<BirdRecord>, serde_json::Error> {
    serde_json::from_str(json)
}

/// Write the whole benchmark to a directory: `<split>.json` per non-empty
/// split and `databases/<db_id>.sql` per database.
pub fn write_benchmark(bench: &Benchmark, dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir.join("databases"))?;
    for (name, split) in [("train", Split::Train), ("dev", Split::Dev), ("test", Split::Test)] {
        if !bench.split(split).is_empty() {
            std::fs::write(dir.join(format!("{name}.json")), split_to_json(bench, split))?;
        }
    }
    for db in &bench.dbs {
        std::fs::write(
            dir.join("databases").join(format!("{}.sql", db.id)),
            db.database.dump_script(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{generate, Profile};

    #[test]
    fn json_round_trips() {
        let bench = generate(&Profile::tiny());
        let json = split_to_json(&bench, Split::Dev);
        let records = records_from_json(&json).unwrap();
        assert_eq!(records.len(), bench.dev.len());
        assert_eq!(records[0], BirdRecord::from(&bench.dev[0]));
        assert!(json.contains("\"SQL\""), "BIRD's field casing");
    }

    #[test]
    fn written_benchmark_reloads_and_answers_gold() {
        let bench = generate(&Profile::tiny());
        let dir = std::env::temp_dir().join(format!("osql_export_{}", std::process::id()));
        write_benchmark(&bench, &dir).unwrap();

        // every dumped database reloads and still answers its gold SQL
        for db in &bench.dbs {
            let script =
                std::fs::read_to_string(dir.join("databases").join(format!("{}.sql", db.id)))
                    .unwrap();
            let mut reloaded = sqlkit::Database::new(&*db.id);
            reloaded.execute_script(&script).unwrap();
            for ex in bench.dev.iter().filter(|e| e.db_id == db.id).take(5) {
                let original = db.database.query(&ex.gold_sql).unwrap();
                let replayed = reloaded.query(&ex.gold_sql).unwrap();
                assert!(replayed.same_answer(&original), "{}", ex.gold_sql);
            }
        }
        let dev_json = std::fs::read_to_string(dir.join("dev.json")).unwrap();
        assert_eq!(records_from_json(&dev_json).unwrap().len(), bench.dev.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
