//! Sampling query specs against a built database.
//!
//! The sampler guarantees every generated example is *answerable*: filter
//! literals come from a **witness row** of the fully-joined table chain, so
//! the gold SQL provably returns a non-empty result, and every gold SQL is
//! executed once before being admitted to the benchmark.

use crate::build::BuiltDb;
use crate::spec::{
    AggFunc, CmpOp, Difficulty, FilterSpec, OrderSpec, QuerySpec, SelectSpec,
};
use crate::values::ColKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use sqlkit::{print_select, Value};

/// Sample one answerable spec of the requested difficulty, or `None` when
/// the draw led to an unanswerable query (callers retry).
pub fn sample_spec(db: &BuiltDb, difficulty: Difficulty, rng: &mut StdRng) -> Option<QuerySpec> {
    let tables = sample_chain(db, difficulty, rng)?;
    let witness = sample_witness(db, &tables, rng)?;

    let mut spec = QuerySpec {
        tables,
        select: Vec::new(),
        filters: Vec::new(),
        group_by: None,
        order: None,
        limit: None,
        distinct: false,
        difficulty,
    };

    sample_filters(db, &mut spec, &witness, difficulty, rng);
    sample_shape(db, &mut spec, difficulty, rng)?;

    // admit only executable, non-empty gold SQL
    let sql = print_select(&spec.to_sql(&db.database.schema));
    match db.database.query(&sql) {
        Ok(rs) if !rs.is_effectively_empty() => Some(spec),
        _ => None,
    }
}

/// A witness row: `(table, column) → value` over the joined chain.
type Witness = Vec<((String, String), Value)>;

fn witness_get<'a>(w: &'a Witness, table: &str, column: &str) -> Option<&'a Value> {
    w.iter()
        .find(|((t, c), _)| t.eq_ignore_ascii_case(table) && c.eq_ignore_ascii_case(column))
        .map(|(_, v)| v)
}

fn sample_chain(db: &BuiltDb, difficulty: Difficulty, rng: &mut StdRng) -> Option<Vec<String>> {
    let want = match difficulty {
        Difficulty::Simple => 1,
        Difficulty::Moderate => {
            if rng.gen_bool(0.75) {
                2
            } else {
                1
            }
        }
        Difficulty::Challenging => {
            if rng.gen_bool(0.5) {
                3
            } else {
                2
            }
        }
    };
    let start = db.tables.choose(rng)?.name.clone();
    let mut chain = vec![start];
    while chain.len() < want {
        let adjacent: Vec<String> = db
            .database
            .schema
            .foreign_keys
            .iter()
            .filter_map(|fk| {
                let in_t = chain.iter().any(|c| c.eq_ignore_ascii_case(&fk.table));
                let in_r = chain.iter().any(|c| c.eq_ignore_ascii_case(&fk.ref_table));
                match (in_t, in_r) {
                    (true, false) => Some(fk.ref_table.clone()),
                    (false, true) => Some(fk.table.clone()),
                    _ => None,
                }
            })
            .collect();
        match adjacent.choose(rng) {
            Some(next) => chain.push(next.clone()),
            None => break,
        }
    }
    Some(chain)
}

fn sample_witness(db: &BuiltDb, tables: &[String], rng: &mut StdRng) -> Option<Witness> {
    // SELECT every column of the chain through the FK join
    let all_cols: Vec<(String, String)> = tables
        .iter()
        .flat_map(|t| {
            db.table_meta(t)
                .map(|m| {
                    m.cols.iter().map(|c| (t.clone(), c.name.clone())).collect::<Vec<_>>()
                })
                .unwrap_or_default()
        })
        .collect();
    let probe = QuerySpec {
        tables: tables.to_vec(),
        select: all_cols
            .iter()
            .map(|(t, c)| SelectSpec::Column { table: t.clone(), column: c.clone() })
            .collect(),
        filters: Vec::new(),
        group_by: None,
        order: None,
        limit: None,
        distinct: false,
        difficulty: Difficulty::Simple,
    };
    let sql = print_select(&probe.to_sql(&db.database.schema));
    let rs = db.database.query(&sql).ok()?;
    let row = rs.rows.choose(rng)?;
    Some(all_cols.into_iter().zip(row.iter().cloned()).collect())
}

fn filter_candidates(db: &BuiltDb, tables: &[String]) -> Vec<(String, String, ColKind)> {
    tables
        .iter()
        .flat_map(|t| {
            db.table_meta(t)
                .map(|m| {
                    m.cols
                        .iter()
                        .filter(|c| {
                            (c.kind.filterable_eq() || c.kind.filterable_range())
                                && c.kind != ColKind::Flag
                        })
                        .map(|c| (t.clone(), c.name.clone(), c.kind))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        })
        .collect()
}

fn sample_filters(
    db: &BuiltDb,
    spec: &mut QuerySpec,
    witness: &Witness,
    difficulty: Difficulty,
    rng: &mut StdRng,
) {
    let n = match difficulty {
        Difficulty::Simple => 1,
        Difficulty::Moderate => rng.gen_range(1..=2),
        Difficulty::Challenging => rng.gen_range(2..=3),
    };
    let mut candidates = filter_candidates(db, &spec.tables);
    candidates.shuffle(rng);
    for (table, column, kind) in candidates.into_iter().take(n) {
        let Some(value) = witness_get(witness, &table, &column).cloned() else {
            continue;
        };
        if value.is_null() {
            continue;
        }
        let filter = match kind {
            ColKind::Date => sample_date_filter(table, column, &value, rng),
            k if k.filterable_range() => {
                sample_range_filter(db, table, column, k, &value, difficulty, rng)
            }
            _ => sample_eq_filter(db, &table, &column, &value),
        };
        if let Some(mut f) = filter {
            // BIRD's external knowledge is incomplete: a dirty value is
            // only documented ~60% of the time; the rest must be found by
            // the pipeline's value retrieval
            if f.display_mismatch() && !f.year_of_date && f.abstract_phrase.is_none() {
                f.has_evidence = rng.gen_bool(0.85);
            }
            spec.filters.push(f);
        }
    }
}

fn sample_eq_filter(db: &BuiltDb, table: &str, column: &str, value: &Value) -> Option<FilterSpec> {
    let display = match value {
        Value::Text(stored) => db
            .display_form(table, column, stored)
            .map(str::to_owned)
            .unwrap_or_else(|| stored.clone()),
        other => other.to_string(),
    };
    Some(FilterSpec {
        table: table.to_owned(),
        column: column.to_owned(),
        op: CmpOp::Eq,
        value: value.clone(),
        value2: None,
        display,
        year_of_date: false,
        abstract_phrase: None,
        has_evidence: true,
    })
}

fn sample_range_filter(
    db: &BuiltDb,
    table: String,
    column: String,
    kind: ColKind,
    value: &Value,
    difficulty: Difficulty,
    rng: &mut StdRng,
) -> Option<FilterSpec> {
    let v = value.as_f64()?;
    let delta = match kind {
        ColKind::Money => (v.abs() * 0.2).max(10.0),
        ColKind::Measure => (v.abs() * 0.15).max(5.0),
        ColKind::Count => 10.0,
        ColKind::Age => 4.0,
        ColKind::Year => 3.0,
        _ => 1.0,
    };
    let is_int = matches!(value, Value::Int(_));
    let mk = |x: f64| -> Value {
        if is_int {
            Value::Int(x.round() as i64)
        } else {
            Value::Real((x * 100.0).round() / 100.0)
        }
    };
    let op = *[CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Between]
        .choose(rng)
        .unwrap();
    let (lit, lit2) = match op {
        CmpOp::Gt => (mk(v - delta), None),
        CmpOp::Ge => (mk(v - delta * 0.5), None),
        CmpOp::Lt => (mk(v + delta), None),
        CmpOp::Le => (mk(v + delta * 0.5), None),
        CmpOp::Between => (mk(v - delta), Some(mk(v + delta))),
        _ => unreachable!(),
    };
    let display = lit.to_string();
    // challenging/moderate filters sometimes use abstract wording that only
    // the evidence string resolves (the BIRD external-knowledge pattern)
    let abstract_p = match difficulty {
        Difficulty::Challenging => 0.35,
        Difficulty::Moderate => 0.2,
        Difficulty::Simple => 0.05,
    };
    let abstract_phrase = if rng.gen_bool(abstract_p) {
        let col = column.to_lowercase();
        let noun = db.table_meta(&table).map(|t| t.noun.to_owned()).unwrap_or_default();
        let _ = noun;
        Some(match op {
            CmpOp::Gt | CmpOp::Ge => format!("the {col} is considered high"),
            CmpOp::Lt | CmpOp::Le => format!("the {col} is considered low"),
            _ => format!("the {col} is in the normal range"),
        })
    } else {
        None
    };
    Some(FilterSpec {
        table,
        column,
        op,
        value: lit,
        value2: lit2,
        display,
        year_of_date: false,
        abstract_phrase,
        has_evidence: true,
    })
}

fn sample_date_filter(
    table: String,
    column: String,
    value: &Value,
    rng: &mut StdRng,
) -> Option<FilterSpec> {
    let text = value.as_text()?;
    let year = text.get(0..4)?.to_owned();
    if rng.gen_bool(0.6) {
        let op = *[CmpOp::Ge, CmpOp::Le, CmpOp::Eq].choose(rng).unwrap();
        Some(FilterSpec {
            table,
            column,
            op,
            value: Value::Text(year.clone()),
            value2: None,
            display: year,
            year_of_date: true,
            abstract_phrase: None,
            has_evidence: true,
        })
    } else {
        let op = *[CmpOp::Ge, CmpOp::Le].choose(rng).unwrap();
        Some(FilterSpec {
            table,
            column,
            op,
            value: Value::Text(text.clone()),
            value2: None,
            display: text,
            year_of_date: false,
            abstract_phrase: None,
            has_evidence: true,
        })
    }
}

/// Decide the projection / grouping / ranking shape.
fn sample_shape(
    db: &BuiltDb,
    spec: &mut QuerySpec,
    difficulty: Difficulty,
    rng: &mut StdRng,
) -> Option<()> {
    let base = spec.tables[0].clone();
    let base_meta = db.table_meta(&base)?;
    let pk = base_meta.cols.iter().find(|c| c.kind == ColKind::Id)?.name.clone();

    let plain_cols: Vec<String> = base_meta
        .cols
        .iter()
        .filter(|c| !matches!(c.kind, ColKind::Id | ColKind::Fk))
        .map(|c| c.name.clone())
        .collect();
    let numeric_cols: Vec<(String, String)> = spec
        .tables
        .iter()
        .flat_map(|t| {
            db.table_meta(t)
                .map(|m| {
                    m.cols
                        .iter()
                        .filter(|c| c.kind.is_numeric())
                        .map(|c| (t.clone(), c.name.clone()))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        })
        .collect();
    let text_cols: Vec<(String, String)> = spec
        .tables
        .iter()
        .flat_map(|t| {
            db.table_meta(t)
                .map(|m| {
                    m.cols
                        .iter()
                        .filter(|c| c.kind.filterable_eq() && c.kind != ColKind::Flag)
                        .map(|c| (t.clone(), c.name.clone()))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        })
        .collect();

    let shape = match difficulty {
        Difficulty::Simple => {
            if rng.gen_bool(0.35) {
                Shape::Count
            } else {
                Shape::Columns
            }
        }
        Difficulty::Moderate => match rng.gen_range(0..10) {
            0..=2 => Shape::Count,
            3 => Shape::CountDistinct,
            4..=6 if !numeric_cols.is_empty() => Shape::Agg,
            _ => Shape::Columns,
        },
        Difficulty::Challenging => match rng.gen_range(0..10) {
            0..=2 if !text_cols.is_empty() => Shape::Grouped,
            3..=5 if !numeric_cols.is_empty() => Shape::Ranked,
            6..=7 if !numeric_cols.is_empty() => Shape::Agg,
            8 => Shape::CountDistinct,
            _ => Shape::Columns,
        },
    };

    match shape {
        Shape::Count => {
            spec.select =
                vec![SelectSpec::Agg { func: AggFunc::Count, table: base, column: None }];
        }
        Shape::CountDistinct => {
            spec.select = vec![SelectSpec::Agg {
                func: AggFunc::CountDistinct,
                table: base,
                column: Some(pk),
            }];
        }
        Shape::Agg => {
            let (t, c) = numeric_cols.choose(rng)?.clone();
            let func = *[AggFunc::Avg, AggFunc::Sum, AggFunc::Min, AggFunc::Max]
                .choose(rng)
                .unwrap();
            spec.select = vec![SelectSpec::Agg { func, table: t, column: Some(c) }];
        }
        Shape::Columns => {
            let mut cols = plain_cols.clone();
            cols.shuffle(rng);
            let take = rng.gen_range(1..=2);
            spec.select = cols
                .into_iter()
                .take(take.max(1))
                .map(|c| SelectSpec::Column { table: base.clone(), column: c })
                .collect();
            if spec.select.is_empty() {
                spec.select = vec![SelectSpec::Column { table: base, column: pk }];
            } else if rng.gen_bool(0.25) {
                spec.distinct = true;
            }
        }
        Shape::Grouped => {
            let (gt, gc) = text_cols.choose(rng)?.clone();
            let agg = if rng.gen_bool(0.6) || numeric_cols.is_empty() {
                SelectSpec::Agg { func: AggFunc::Count, table: gt.clone(), column: None }
            } else {
                let (t, c) = numeric_cols.choose(rng)?.clone();
                SelectSpec::Agg { func: AggFunc::Avg, table: t, column: Some(c) }
            };
            spec.select =
                vec![SelectSpec::Column { table: gt.clone(), column: gc.clone() }, agg];
            spec.group_by = Some((gt.clone(), gc));
            if rng.gen_bool(0.5) {
                spec.order = Some(OrderSpec {
                    table: gt,
                    column: pk,
                    agg: Some(AggFunc::Count),
                    desc: true,
                });
                spec.limit = Some(1);
            }
        }
        Shape::Ranked => {
            let (ot, oc) = numeric_cols.choose(rng)?.clone();
            let sel_col = plain_cols.choose(rng).cloned().unwrap_or(pk);
            spec.select = vec![SelectSpec::Column { table: base, column: sel_col }];
            spec.order = Some(OrderSpec {
                table: ot,
                column: oc,
                agg: None,
                desc: rng.gen_bool(0.7),
            });
            spec.limit = Some(if rng.gen_bool(0.8) { 1 } else { rng.gen_range(2..=5) });
        }
    }
    Some(())
}

enum Shape {
    Count,
    CountDistinct,
    Agg,
    Columns,
    Grouped,
    Ranked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_db, RowScale};
    use crate::domain::themes;
    use rand::SeedableRng;

    fn db() -> BuiltDb {
        build_db(&themes()[0], "h", "healthcare", RowScale::tiny(), 0.6, 5)
    }

    #[test]
    fn sampled_specs_execute_nonempty() {
        let b = db();
        let mut rng = StdRng::seed_from_u64(1);
        let mut produced = 0;
        for d in Difficulty::all() {
            for _ in 0..30 {
                if let Some(spec) = sample_spec(&b, d, &mut rng) {
                    produced += 1;
                    let sql = print_select(&spec.to_sql(&b.database.schema));
                    let rs = b.database.query(&sql).unwrap();
                    assert!(!rs.is_effectively_empty(), "{sql}");
                    assert_eq!(spec.difficulty, d);
                }
            }
        }
        assert!(produced > 40, "sampler too lossy: {produced}/90");
    }

    #[test]
    fn difficulty_scales_structure() {
        let b = db();
        let mut rng = StdRng::seed_from_u64(2);
        let mut simple_tables = 0usize;
        let mut challenging_tables = 0usize;
        let mut n_simple = 0usize;
        let mut n_chal = 0usize;
        for _ in 0..40 {
            if let Some(s) = sample_spec(&b, Difficulty::Simple, &mut rng) {
                simple_tables += s.tables.len();
                n_simple += 1;
            }
            if let Some(s) = sample_spec(&b, Difficulty::Challenging, &mut rng) {
                challenging_tables += s.tables.len();
                n_chal += 1;
            }
        }
        let avg_s = simple_tables as f64 / n_simple as f64;
        let avg_c = challenging_tables as f64 / n_chal as f64;
        assert!(avg_c > avg_s, "challenging ({avg_c}) should join more than simple ({avg_s})");
        assert!((avg_s - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn witness_guarantees_filters_match() {
        let b = db();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            if let Some(spec) = sample_spec(&b, Difficulty::Moderate, &mut rng) {
                // drop projections, count matching rows — must be >= 1
                let mut probe = spec.clone();
                probe.select = vec![SelectSpec::Agg {
                    func: AggFunc::Count,
                    table: probe.tables[0].clone(),
                    column: None,
                }];
                probe.group_by = None;
                probe.order = None;
                probe.limit = None;
                let sql = print_select(&probe.to_sql(&b.database.schema));
                let rs = b.database.query(&sql).unwrap();
                assert!(matches!(rs.rows[0][0], Value::Int(n) if n >= 1), "{sql}");
            }
        }
    }

    #[test]
    fn deterministic_sampling() {
        let b = db();
        let a = sample_spec(&b, Difficulty::Moderate, &mut StdRng::seed_from_u64(11));
        let c = sample_spec(&b, Difficulty::Moderate, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, c);
    }
}
