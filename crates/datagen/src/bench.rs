//! Benchmark assembly: profiles, examples, and splits.

use crate::build::{build_db, BuiltDb, RowScale};
use crate::domain::{domain_name, themes};
use crate::generator::sample_spec;
use crate::nlq::render;
use crate::spec::{Difficulty, QuerySpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::print_select;

/// One benchmark example.
#[derive(Debug, Clone)]
pub struct Example {
    /// Unique id within the benchmark.
    pub id: u32,
    /// Id of the database the example runs against.
    pub db_id: String,
    /// Natural-language question.
    pub question: String,
    /// BIRD-style evidence / external knowledge ("" when none).
    pub evidence: String,
    /// Gold SQL (guaranteed executable and non-empty).
    pub gold_sql: String,
    /// The underlying structured intent.
    pub spec: QuerySpec,
    /// Difficulty tier.
    pub difficulty: Difficulty,
}

/// Which split an example belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training set (few-shot library source).
    Train,
    /// Development set.
    Dev,
    /// Held-out test set.
    Test,
}

/// A generated benchmark: databases plus train/dev/test splits.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name ("bird", "spider", ...).
    pub name: String,
    /// Built databases.
    pub dbs: Vec<BuiltDb>,
    /// Training examples.
    pub train: Vec<Example>,
    /// Dev examples.
    pub dev: Vec<Example>,
    /// Test examples.
    pub test: Vec<Example>,
}

impl Benchmark {
    /// Look up a database by id.
    pub fn db(&self, id: &str) -> Option<&BuiltDb> {
        self.dbs.iter().find(|d| d.id == id)
    }

    /// Number of distinct domains.
    pub fn domain_count(&self) -> usize {
        let mut domains: Vec<&str> = self.dbs.iter().map(|d| d.domain.as_str()).collect();
        domains.sort();
        domains.dedup();
        domains.len()
    }

    /// All examples of a split.
    pub fn split(&self, split: Split) -> &[Example] {
        match split {
            Split::Train => &self.train,
            Split::Dev => &self.dev,
            Split::Test => &self.test,
        }
    }
}

/// Generation profile: sizes and style of a benchmark.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Benchmark name.
    pub name: String,
    /// Number of databases to build.
    pub n_databases: usize,
    /// Number of distinct domains (databases cycle through them).
    pub n_domains: usize,
    /// Split sizes.
    pub train: usize,
    /// Dev size.
    pub dev: usize,
    /// Test size.
    pub test: usize,
    /// Row scale for databases.
    pub scale: RowScale,
    /// Probability a text column stores mangled values.
    pub quirk_rate: f64,
    /// Probability mass of (simple, moderate, challenging).
    pub difficulty_mix: [f64; 3],
    /// Difficulty mix override for the test split (BIRD's holdout scores
    /// consistently higher than dev on the leaderboard).
    pub test_difficulty_mix: Option<[f64; 3]>,
    /// Master seed.
    pub seed: u64,
    /// Schema comprehension complexity passed to the simulated model
    /// (BIRD 1.0; Spider's simpler cross-domain schemas lower).
    pub complexity: f64,
}

impl Profile {
    /// BIRD-style profile (paper Table 1: 9428/1534/1789, 37 domains,
    /// 95 databases, complex schemas, dirty values).
    pub fn bird() -> Self {
        Profile {
            name: "bird".into(),
            n_databases: 95,
            n_domains: 37,
            train: 9428,
            dev: 1534,
            test: 1789,
            scale: RowScale::bird(),
            quirk_rate: 0.55,
            difficulty_mix: [0.40, 0.38, 0.22],
            test_difficulty_mix: Some([0.52, 0.34, 0.14]),
            seed: 0xB12D,
            complexity: 1.0,
        }
    }

    /// Spider-style profile (paper Table 1: 8659/1034/2147, 138 domains,
    /// 200 databases, cleaner values, simpler SQL).
    pub fn spider() -> Self {
        Profile {
            name: "spider".into(),
            n_databases: 200,
            n_domains: 138,
            train: 8659,
            dev: 1034,
            test: 2147,
            scale: RowScale::spider(),
            quirk_rate: 0.12,
            difficulty_mix: [0.55, 0.33, 0.12],
            test_difficulty_mix: None,
            seed: 0x59DE,
            complexity: 0.55,
        }
    }

    /// The BIRD **Mini-Dev** used for the paper's ablations: same style as
    /// BIRD, 500 dev questions, smaller everything else.
    pub fn bird_mini_dev() -> Self {
        Profile {
            name: "bird-mini-dev".into(),
            n_databases: 12,
            n_domains: 12,
            train: 1500,
            dev: 500,
            test: 0,
            scale: RowScale::bird(),
            quirk_rate: 0.55,
            difficulty_mix: [0.40, 0.38, 0.22],
            test_difficulty_mix: None,
            seed: 0xB12D,
            complexity: 1.0,
        }
    }

    /// A tiny profile for unit tests.
    pub fn tiny() -> Self {
        Profile {
            name: "tiny".into(),
            n_databases: 2,
            n_domains: 2,
            train: 40,
            dev: 16,
            test: 16,
            scale: RowScale::tiny(),
            quirk_rate: 0.5,
            difficulty_mix: [0.4, 0.4, 0.2],
            test_difficulty_mix: None,
            seed: 0x717,
            complexity: 1.0,
        }
    }

    /// Scale all split sizes by `f` (for quick experiment runs).
    pub fn scaled(mut self, f: f64) -> Self {
        self.train = ((self.train as f64) * f).round().max(1.0) as usize;
        self.dev = ((self.dev as f64) * f).round() as usize;
        self.test = ((self.test as f64) * f).round() as usize;
        self.n_databases = ((self.n_databases as f64) * f.sqrt()).round().max(2.0) as usize;
        self.n_domains = self.n_domains.min(self.n_databases);
        self
    }
}

/// Generate a full benchmark from a profile. Deterministic in the profile's
/// seed.
pub fn generate(profile: &Profile) -> Benchmark {
    let theme_lib = themes();
    let mut rng = StdRng::seed_from_u64(profile.seed);

    // databases: domain d uses theme d % themes, variant d / themes
    let mut dbs: Vec<BuiltDb> = Vec::with_capacity(profile.n_databases);
    for i in 0..profile.n_databases {
        let domain_idx = i % profile.n_domains.max(1);
        let theme = &theme_lib[domain_idx % theme_lib.len()];
        let variant = domain_idx / theme_lib.len();
        let domain = domain_name(theme, variant);
        let copy = i / profile.n_domains.max(1);
        let db_id =
            if copy == 0 { domain.clone() } else { format!("{domain}_{}", copy + 1) };
        let db_seed = rng.gen::<u64>();
        let mut db = build_db(theme, &db_id, &domain, profile.scale, profile.quirk_rate, db_seed);
        db.complexity = profile.complexity;
        dbs.push(db);
    }

    let mut next_id = 0u32;
    let mut make_split = |n: usize, mix: &[f64; 3], rng: &mut StdRng| -> Vec<Example> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 30 + 100 {
            attempts += 1;
            let db = &dbs[rng.gen_range(0..dbs.len())];
            let difficulty = pick_difficulty(mix, rng);
            let Some(spec) = sample_spec(db, difficulty, rng) else {
                continue;
            };
            let sql = print_select(&spec.to_sql(&db.database.schema));
            let rendered = render(&spec, db);
            out.push(Example {
                id: next_id,
                db_id: db.id.clone(),
                question: rendered.question,
                evidence: rendered.evidence,
                gold_sql: sql,
                spec,
                difficulty,
            });
            next_id += 1;
        }
        out
    };

    let train = make_split(profile.train, &profile.difficulty_mix, &mut rng);
    let dev = make_split(profile.dev, &profile.difficulty_mix, &mut rng);
    let test_mix = profile.test_difficulty_mix.unwrap_or(profile.difficulty_mix);
    let test = make_split(profile.test, &test_mix, &mut rng);

    Benchmark { name: profile.name.clone(), dbs, train, dev, test }
}

fn pick_difficulty(mix: &[f64; 3], rng: &mut StdRng) -> Difficulty {
    let x: f64 = rng.gen();
    if x < mix[0] {
        Difficulty::Simple
    } else if x < mix[0] + mix[1] {
        Difficulty::Moderate
    } else {
        Difficulty::Challenging
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_benchmark_generates_fully() {
        let b = generate(&Profile::tiny());
        assert_eq!(b.dbs.len(), 2);
        assert_eq!(b.train.len(), 40);
        assert_eq!(b.dev.len(), 16);
        assert_eq!(b.test.len(), 16);
        assert_eq!(b.domain_count(), 2);
    }

    #[test]
    fn every_gold_sql_is_answerable() {
        let b = generate(&Profile::tiny());
        for ex in b.train.iter().chain(&b.dev).chain(&b.test) {
            let db = b.db(&ex.db_id).unwrap();
            let rs = db.database.query(&ex.gold_sql).unwrap();
            assert!(!rs.is_effectively_empty(), "{}", ex.gold_sql);
            assert!(ex.question.ends_with('?'));
        }
    }

    #[test]
    fn ids_are_unique_across_splits() {
        let b = generate(&Profile::tiny());
        let mut ids: Vec<u32> = b
            .train
            .iter()
            .chain(&b.dev)
            .chain(&b.test)
            .map(|e| e.id)
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&Profile::tiny());
        let b = generate(&Profile::tiny());
        assert_eq!(a.dev.len(), b.dev.len());
        for (x, y) in a.dev.iter().zip(&b.dev) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.gold_sql, y.gold_sql);
        }
    }

    #[test]
    fn difficulty_mix_roughly_respected() {
        let mut p = Profile::tiny();
        p.train = 150;
        let b = generate(&p);
        let n_simple =
            b.train.iter().filter(|e| e.difficulty == Difficulty::Simple).count();
        let frac = n_simple as f64 / b.train.len() as f64;
        assert!((0.2..=0.6).contains(&frac), "simple fraction {frac}");
    }

    #[test]
    fn scaled_profile_shrinks() {
        let p = Profile::bird().scaled(0.01);
        assert!(p.train < 100);
        assert!(p.n_databases >= 2);
        assert!(p.n_domains <= p.n_databases);
    }

    #[test]
    fn some_examples_need_evidence() {
        let b = generate(&Profile::tiny());
        let with_evidence = b
            .train
            .iter()
            .chain(&b.dev)
            .filter(|e| !e.evidence.is_empty())
            .count();
        assert!(with_evidence > 0, "quirky profile must produce evidence examples");
    }
}
