//! Serving-traffic synthesis for load benchmarks.
//!
//! Real text-to-SQL serving traffic is not a uniform sweep of the dev
//! split: a few hot databases dominate (Zipf popularity), users repeat
//! each other's questions (dedup), and arrivals come in bursts rather
//! than a smooth open loop. [`synthesize`] turns a generated
//! [`Benchmark`] into a deterministic request schedule with those three
//! knobs, for driving the HTTP serving layer closed-loop.

use crate::bench::Benchmark;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Traffic-shape knobs.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// Total requests to schedule.
    pub requests: usize,
    /// Zipf exponent for database popularity (0 = uniform; ~1 = heavy
    /// head).
    pub zipf_s: f64,
    /// Probability a request repeats an already-issued question verbatim
    /// (fuel for result caching and in-flight coalescing).
    pub dedup_rate: f64,
    /// Arrivals per burst; the schedule marks a pause before each burst.
    pub burst_len: usize,
    /// Milliseconds of idle time between bursts.
    pub burst_gap_ms: u64,
    /// RNG seed; same seed + same benchmark → same schedule.
    pub seed: u64,
}

impl Default for TrafficProfile {
    fn default() -> Self {
        TrafficProfile {
            requests: 200,
            zipf_s: 1.0,
            dedup_rate: 0.0,
            burst_len: 16,
            burst_gap_ms: 5,
            seed: 0x7AFF1C,
        }
    }
}

impl TrafficProfile {
    /// A profile where most requests duplicate recent ones — exercises
    /// the result cache and in-flight coalescing.
    pub fn dedup_heavy(requests: usize, seed: u64) -> Self {
        TrafficProfile { requests, dedup_rate: 0.8, burst_len: 32, ..Self::default() }
            .with_seed(seed)
    }

    /// A profile of large simultaneous bursts — exercises admission
    /// control and shedding.
    pub fn bursty(requests: usize, burst_len: usize, seed: u64) -> Self {
        TrafficProfile { requests, burst_len, burst_gap_ms: 20, ..Self::default() }
            .with_seed(seed)
    }

    fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One scheduled request.
#[derive(Debug, Clone)]
pub struct TrafficRequest {
    /// Target database.
    pub db_id: String,
    /// Question text.
    pub question: String,
    /// Evidence ("" when none).
    pub evidence: String,
    /// Milliseconds the dispatcher should idle before issuing this
    /// request (non-zero only at burst boundaries).
    pub delay_before_ms: u64,
    /// Whether this request repeats an earlier one verbatim.
    pub is_repeat: bool,
}

/// Build a deterministic request schedule over a benchmark's dev split.
///
/// Databases are ranked by the seeded RNG and sampled with
/// Zipf(`zipf_s`) popularity; fresh requests walk the chosen database's
/// questions round-robin; repeats re-issue a uniformly chosen earlier
/// request.
pub fn synthesize(benchmark: &Benchmark, profile: &TrafficProfile) -> Vec<TrafficRequest> {
    let mut rng = StdRng::seed_from_u64(profile.seed);

    // per-db question pools, in stable db order, then shuffled into a
    // seeded popularity ranking
    let mut db_ids: Vec<&str> = benchmark.dbs.iter().map(|db| db.id.as_str()).collect();
    db_ids.shuffle(&mut rng);
    let pools: Vec<Vec<usize>> = db_ids
        .iter()
        .map(|id| {
            benchmark
                .dev
                .iter()
                .enumerate()
                .filter(|(_, ex)| ex.db_id == *id)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let ranked: Vec<usize> =
        (0..db_ids.len()).filter(|&i| !pools[i].is_empty()).collect();
    assert!(!ranked.is_empty(), "benchmark has no dev examples");

    // Zipf CDF over the ranked databases
    let weights: Vec<f64> =
        (0..ranked.len()).map(|rank| 1.0 / ((rank + 1) as f64).powf(profile.zipf_s)).collect();
    let total: f64 = weights.iter().sum();

    let mut cursors = vec![0usize; ranked.len()];
    let mut schedule: Vec<TrafficRequest> = Vec::with_capacity(profile.requests);
    for n in 0..profile.requests {
        let delay_before_ms = if n > 0 && profile.burst_len > 0 && n % profile.burst_len == 0 {
            profile.burst_gap_ms
        } else {
            0
        };
        let repeat = !schedule.is_empty() && rng.gen_bool(profile.dedup_rate.clamp(0.0, 1.0));
        if repeat {
            let earlier = rng.gen_range(0..schedule.len());
            let prior = &schedule[earlier];
            schedule.push(TrafficRequest {
                db_id: prior.db_id.clone(),
                question: prior.question.clone(),
                evidence: prior.evidence.clone(),
                delay_before_ms,
                is_repeat: true,
            });
            continue;
        }
        // inverse-CDF Zipf draw
        let mut draw = rng.gen_range(0.0..total);
        let mut pick = 0usize;
        for (rank, w) in weights.iter().enumerate() {
            if draw < *w {
                pick = rank;
                break;
            }
            draw -= w;
            pick = rank;
        }
        let pool = &pools[ranked[pick]];
        let ex = &benchmark.dev[pool[cursors[pick] % pool.len()]];
        cursors[pick] += 1;
        schedule.push(TrafficRequest {
            db_id: ex.db_id.clone(),
            question: ex.question.clone(),
            evidence: ex.evidence.clone(),
            delay_before_ms,
            is_repeat: false,
        });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{generate, Profile};
    use std::collections::HashMap;

    fn world() -> Benchmark {
        generate(&Profile::tiny())
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let bench = world();
        let profile = TrafficProfile { requests: 64, seed: 9, ..TrafficProfile::default() };
        let a = synthesize(&bench, &profile);
        let b = synthesize(&bench, &profile);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((&x.db_id, &x.question), (&y.db_id, &y.question));
        }
        let c = synthesize(&bench, &TrafficProfile { seed: 10, ..profile });
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.question != y.question),
            "different seeds should differ"
        );
    }

    #[test]
    fn dedup_rate_produces_repeats() {
        let bench = world();
        let heavy = synthesize(&bench, &TrafficProfile::dedup_heavy(300, 3));
        let repeats = heavy.iter().filter(|r| r.is_repeat).count();
        assert!(
            (150..300).contains(&repeats),
            "~80% of 300 should repeat, got {repeats}"
        );
        let fresh = synthesize(
            &bench,
            &TrafficProfile { requests: 300, dedup_rate: 0.0, ..TrafficProfile::default() },
        );
        assert!(fresh.iter().all(|r| !r.is_repeat));
    }

    #[test]
    fn zipf_skews_database_popularity() {
        let bench = world();
        let schedule = synthesize(
            &bench,
            &TrafficProfile {
                requests: 400,
                zipf_s: 1.4,
                dedup_rate: 0.0,
                ..TrafficProfile::default()
            },
        );
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for r in &schedule {
            *counts.entry(r.db_id.as_str()).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap();
        assert!(
            max >= 2 * min.max(1),
            "expected a hot head under zipf: max {max}, min {min}"
        );
    }

    #[test]
    fn bursts_carry_gaps_at_boundaries() {
        let bench = world();
        let schedule = synthesize(&bench, &TrafficProfile::bursty(50, 10, 1));
        for (i, r) in schedule.iter().enumerate() {
            if i > 0 && i % 10 == 0 {
                assert_eq!(r.delay_before_ms, 20, "at {i}");
            } else {
                assert_eq!(r.delay_before_ms, 0, "at {i}");
            }
        }
    }
}
