//! Domain themes: the table/column blueprints databases are built from.
//!
//! BIRD spans 37 professional domains (blockchain, hockey, healthcare,
//! education, ...); Spider spans 138. Each [`Theme`] here is a hand-written
//! blueprint in one of those domains, and profiles derive as many *domain
//! variants* as the target benchmark needs by cycling themes with different
//! RNG streams.

use crate::values::ColKind;

/// A column blueprint.
#[derive(Debug, Clone)]
pub struct ColTemplate {
    /// Column name (may intentionally collide across tables).
    pub name: &'static str,
    /// Semantic kind.
    pub kind: ColKind,
    /// Referenced table when `kind == Fk`.
    pub fk_to: Option<&'static str>,
}

impl ColTemplate {
    fn new(name: &'static str, kind: ColKind) -> Self {
        ColTemplate { name, kind, fk_to: None }
    }

    fn fk(name: &'static str, to: &'static str) -> Self {
        ColTemplate { name, kind: ColKind::Fk, fk_to: Some(to) }
    }
}

/// A table blueprint. The first column is always the integer primary key.
#[derive(Debug, Clone)]
pub struct TableTemplate {
    /// Table name.
    pub name: &'static str,
    /// Plural noun used in question rendering ("patients").
    pub noun: &'static str,
    /// Columns, PK first.
    pub cols: Vec<ColTemplate>,
}

/// A domain theme: a related set of tables.
#[derive(Debug, Clone)]
pub struct Theme {
    /// Domain name ("healthcare").
    pub name: &'static str,
    /// Tables, parents before children.
    pub tables: Vec<TableTemplate>,
}

macro_rules! table {
    ($name:literal, $noun:literal, [$($col:expr),+ $(,)?]) => {
        TableTemplate { name: $name, noun: $noun, cols: vec![$($col),+] }
    };
}

/// The built-in theme library.
pub fn themes() -> Vec<Theme> {
    use ColKind::*;
    let c = ColTemplate::new;
    let fk = ColTemplate::fk;
    vec![
        Theme {
            name: "healthcare",
            tables: vec![
                table!("Patient", "patients", [
                    c("PatientID", Id), c("Name", PersonName), c("City", City),
                    c("First Date", Date), c("Age", Age),
                ]),
                table!("Laboratory", "lab records", [
                    c("LabID", Id), fk("PatientID", "Patient"), c("IGA", Measure),
                    c("CheckDate", Date), c("Status", Status),
                ]),
                table!("Treatment", "treatments", [
                    c("TreatmentID", Id), fk("PatientID", "Patient"),
                    c("Department", Category(8)), c("Cost", Money), c("Status", Status),
                ]),
            ],
        },
        Theme {
            name: "education",
            tables: vec![
                table!("School", "schools", [
                    c("SchoolID", Id), c("SchoolName", Label), c("City", City),
                    c("Type", Category(4)), c("Enrollment", Count),
                ]),
                table!("Student", "students", [
                    c("StudentID", Id), fk("SchoolID", "School"), c("Name", PersonName),
                    c("Age", Age), c("GPA", Measure),
                ]),
                table!("Exam", "exams", [
                    c("ExamID", Id), fk("StudentID", "Student"), c("Subject", Category(9)),
                    c("Score", Measure), c("ExamDate", Date),
                ]),
            ],
        },
        Theme {
            name: "hockey",
            tables: vec![
                table!("Team", "teams", [
                    c("TeamID", Id), c("TeamName", Label), c("City", City), c("Founded", Year),
                ]),
                table!("Player", "players", [
                    c("PlayerID", Id), fk("TeamID", "Team"), c("Name", PersonName),
                    c("Position", Category(7)), c("Age", Age),
                ]),
                table!("GameLog", "game logs", [
                    c("LogID", Id), fk("PlayerID", "Player"), c("Goals", Count),
                    c("Assists", Count), c("Season", Year),
                ]),
            ],
        },
        Theme {
            name: "blockchain",
            tables: vec![
                table!("Wallet", "wallets", [
                    c("WalletID", Id), c("Owner", PersonName), c("Country", Country),
                    c("Created", Date),
                ]),
                table!("Transfer", "transfers", [
                    c("TransferID", Id), fk("WalletID", "Wallet"), c("Amount", Money),
                    c("Status", Status), c("TxDate", Date),
                ]),
                table!("Holding", "token holdings", [
                    c("HoldingID", Id), fk("WalletID", "Wallet"), c("Token", Label),
                    c("Balance", Measure),
                ]),
            ],
        },
        Theme {
            name: "retail",
            tables: vec![
                table!("Store", "stores", [
                    c("StoreID", Id), c("StoreName", Label), c("City", City),
                    c("Opened", Year),
                ]),
                table!("Product", "products", [
                    c("ProductID", Id), fk("StoreID", "Store"), c("ProductName", Label),
                    c("Price", Money), c("Size", Category(1)),
                ]),
                table!("Sale", "sales", [
                    c("SaleID", Id), fk("ProductID", "Product"), c("Quantity", Count),
                    c("SaleDate", Date), c("Payment", Category(5)),
                ]),
            ],
        },
        Theme {
            name: "airline",
            tables: vec![
                table!("Flight", "flights", [
                    c("FlightID", Id), c("Origin", City), c("Destination", City),
                    c("FlightDate", Date), c("Fare", Money),
                ]),
                table!("Passenger", "passengers", [
                    c("PassengerID", Id), c("Name", PersonName), c("Country", Country),
                    c("Age", Age),
                ]),
                table!("Booking", "bookings", [
                    c("BookingID", Id), fk("FlightID", "Flight"), fk("PassengerID", "Passenger"),
                    c("Status", Status), c("Paid", Money),
                ]),
            ],
        },
        Theme {
            name: "library",
            tables: vec![
                table!("Book", "books", [
                    c("BookID", Id), c("Title", Label), c("Genre", Category(9)),
                    c("Published", Year),
                ]),
                table!("Member", "members", [
                    c("MemberID", Id), c("Name", PersonName), c("City", City),
                    c("Joined", Date),
                ]),
                table!("Loan", "loans", [
                    c("LoanID", Id), fk("BookID", "Book"), fk("MemberID", "Member"),
                    c("LoanDate", Date), c("Status", Status),
                ]),
            ],
        },
        Theme {
            name: "banking",
            tables: vec![
                table!("Branch", "branches", [
                    c("BranchID", Id), c("BranchName", Label), c("City", City),
                    c("Opened", Year),
                ]),
                table!("Account", "accounts", [
                    c("AccountID", Id), fk("BranchID", "Branch"), c("Holder", PersonName),
                    c("Balance", Money), c("Status", Status),
                ]),
                table!("Movement", "movements", [
                    c("MovementID", Id), fk("AccountID", "Account"), c("Amount", Money),
                    c("MoveDate", Date), c("Channel", Category(5)),
                ]),
            ],
        },
        Theme {
            name: "energy",
            tables: vec![
                table!("Plant", "power plants", [
                    c("PlantID", Id), c("PlantName", Label), c("Country", Country),
                    c("Source", Category(11)), c("Commissioned", Year),
                ]),
                table!("Output", "output readings", [
                    c("OutputID", Id), fk("PlantID", "Plant"), c("Megawatts", Measure),
                    c("ReadDate", Date),
                ]),
                table!("Inspection", "inspections", [
                    c("InspectionID", Id), fk("PlantID", "Plant"), c("Inspector", PersonName),
                    c("Result", Status), c("InspDate", Date),
                ]),
            ],
        },
        Theme {
            name: "football",
            tables: vec![
                table!("Club", "clubs", [
                    c("ClubID", Id), c("ClubName", Label), c("City", City), c("Founded", Year),
                ]),
                table!("Footballer", "footballers", [
                    c("FootballerID", Id), fk("ClubID", "Club"), c("Name", PersonName),
                    c("Position", Category(7)), c("Salary", Money),
                ]),
                table!("SeasonStat", "season stats", [
                    c("StatID", Id), fk("FootballerID", "Footballer"), c("Season", Year),
                    c("Goals", Count), c("Appearances", Count),
                ]),
            ],
        },
        Theme {
            name: "restaurant",
            tables: vec![
                table!("Restaurant", "restaurants", [
                    c("RestaurantID", Id), c("RestaurantName", Label), c("City", City),
                    c("Rating", Measure),
                ]),
                table!("Dish", "dishes", [
                    c("DishID", Id), fk("RestaurantID", "Restaurant"), c("DishName", Label),
                    c("Price", Money), c("Style", Category(10)),
                ]),
                table!("OrderLine", "order lines", [
                    c("OrderID", Id), fk("DishID", "Dish"), c("Quantity", Count),
                    c("OrderDate", Date), c("Payment", Category(5)),
                ]),
            ],
        },
        Theme {
            name: "logistics",
            tables: vec![
                table!("Warehouse", "warehouses", [
                    c("WarehouseID", Id), c("WarehouseName", Label), c("City", City),
                    c("Capacity", Count),
                ]),
                table!("Driver", "drivers", [
                    c("DriverID", Id), c("Name", PersonName), c("Country", Country),
                    c("Age", Age),
                ]),
                table!("Shipment", "shipments", [
                    c("ShipmentID", Id), fk("WarehouseID", "Warehouse"), fk("DriverID", "Driver"),
                    c("Weight", Measure), c("ShipDate", Date), c("Status", Status),
                ]),
            ],
        },
        Theme {
            name: "university",
            tables: vec![
                table!("Faculty", "faculties", [
                    c("FacultyID", Id), c("FacultyName", Label), c("City", City),
                    c("Established", Year),
                ]),
                table!("Professor", "professors", [
                    c("ProfessorID", Id), fk("FacultyID", "Faculty"), c("Name", PersonName),
                    c("Salary", Money), c("Age", Age),
                ]),
                table!("Course", "courses", [
                    c("CourseID", Id), fk("ProfessorID", "Professor"), c("CourseName", Label),
                    c("Credits", Count), c("Level", Category(3)),
                ]),
            ],
        },
        Theme {
            name: "insurance",
            tables: vec![
                table!("Customer", "customers", [
                    c("CustomerID", Id), c("Name", PersonName), c("City", City), c("Age", Age),
                ]),
                table!("Policy", "policies", [
                    c("PolicyID", Id), fk("CustomerID", "Customer"), c("Premium", Money),
                    c("Kind", Category(3)), c("Status", Status),
                ]),
                table!("Claim", "claims", [
                    c("ClaimID", Id), fk("PolicyID", "Policy"), c("Amount", Money),
                    c("ClaimDate", Date), c("Status", Status),
                ]),
            ],
        },
        Theme {
            name: "realestate",
            tables: vec![
                table!("Agent", "agents", [
                    c("AgentID", Id), c("Name", PersonName), c("City", City),
                    c("Commission", Measure),
                ]),
                table!("Property", "properties", [
                    c("PropertyID", Id), fk("AgentID", "Agent"), c("City", City),
                    c("Price", Money), c("Kind", Category(6)),
                ]),
                table!("Viewing", "viewings", [
                    c("ViewingID", Id), fk("PropertyID", "Property"), c("Visitor", PersonName),
                    c("ViewDate", Date),
                ]),
            ],
        },
        Theme {
            name: "music",
            tables: vec![
                table!("Artist", "artists", [
                    c("ArtistID", Id), c("Name", PersonName), c("Country", Country),
                    c("Debut", Year),
                ]),
                table!("Album", "albums", [
                    c("AlbumID", Id), fk("ArtistID", "Artist"), c("Title", Label),
                    c("Released", Year), c("Sales", Count),
                ]),
                table!("Track", "tracks", [
                    c("TrackID", Id), fk("AlbumID", "Album"), c("TrackName", Label),
                    c("Minutes", Measure),
                ]),
            ],
        },
        Theme {
            name: "cinema",
            tables: vec![
                table!("Movie", "movies", [
                    c("MovieID", Id), c("Title", Label), c("Genre", Category(9)),
                    c("Released", Year), c("Budget", Money),
                ]),
                table!("Theater", "theaters", [
                    c("TheaterID", Id), c("TheaterName", Label), c("City", City),
                    c("Seats", Count),
                ]),
                table!("Screening", "screenings", [
                    c("ScreeningID", Id), fk("MovieID", "Movie"), fk("TheaterID", "Theater"),
                    c("ShowDate", Date), c("Attendance", Count),
                ]),
            ],
        },
        Theme {
            name: "ecommerce",
            tables: vec![
                table!("Shopper", "shoppers", [
                    c("ShopperID", Id), c("Name", PersonName), c("Country", Country),
                    c("Joined", Date),
                ]),
                table!("Purchase", "purchases", [
                    c("PurchaseID", Id), fk("ShopperID", "Shopper"), c("Total", Money),
                    c("PurchaseDate", Date), c("Status", Status),
                ]),
                table!("Review", "reviews", [
                    c("ReviewID", Id), fk("PurchaseID", "Purchase"), c("Stars", Count),
                    c("ReviewDate", Date),
                ]),
            ],
        },
        Theme {
            name: "hr",
            tables: vec![
                table!("Division", "divisions", [
                    c("DivisionID", Id), c("DivisionName", Label), c("City", City),
                    c("Headcount", Count),
                ]),
                table!("Employee", "employees", [
                    c("EmployeeID", Id), fk("DivisionID", "Division"), c("Name", PersonName),
                    c("Salary", Money), c("Hired", Date),
                ]),
                table!("Evaluation", "evaluations", [
                    c("EvaluationID", Id), fk("EmployeeID", "Employee"), c("Score", Measure),
                    c("EvalDate", Date), c("Grade", Category(0)),
                ]),
            ],
        },
        Theme {
            name: "telecom",
            tables: vec![
                table!("RatePlan", "rate plans", [
                    c("PlanID", Id), c("PlanName", Label), c("Monthly", Money),
                    c("Tier", Category(3)),
                ]),
                table!("Subscriber", "subscribers", [
                    c("SubscriberID", Id), fk("PlanID", "RatePlan"), c("Name", PersonName),
                    c("City", City), c("Since", Year),
                ]),
                table!("Usage", "usage records", [
                    c("UsageID", Id), fk("SubscriberID", "Subscriber"), c("Gigabytes", Measure),
                    c("Month", Date),
                ]),
            ],
        },
        Theme {
            name: "agriculture",
            tables: vec![
                table!("Farm", "farms", [
                    c("FarmID", Id), c("FarmName", Label), c("Country", Country),
                    c("Hectares", Measure),
                ]),
                table!("Crop", "crops", [
                    c("CropID", Id), fk("FarmID", "Farm"), c("CropName", Label),
                    c("Planted", Date),
                ]),
                table!("Harvest", "harvests", [
                    c("HarvestID", Id), fk("CropID", "Crop"), c("Tons", Measure),
                    c("HarvestDate", Date), c("Quality", Category(0)),
                ]),
            ],
        },
        Theme {
            name: "fitness",
            tables: vec![
                table!("Gym", "gyms", [
                    c("GymID", Id), c("GymName", Label), c("City", City), c("Opened", Year),
                ]),
                table!("Athlete", "athletes", [
                    c("AthleteID", Id), fk("GymID", "Gym"), c("Name", PersonName), c("Age", Age),
                ]),
                table!("Workout", "workouts", [
                    c("WorkoutID", Id), fk("AthleteID", "Athlete"), c("Minutes", Measure),
                    c("WorkoutDate", Date), c("Kind", Category(1)),
                ]),
            ],
        },
        Theme {
            name: "hotel",
            tables: vec![
                table!("Hotel", "hotels", [
                    c("HotelID", Id), c("HotelName", Label), c("City", City),
                    c("Stars", Count),
                ]),
                table!("Guest", "guests", [
                    c("GuestID", Id), c("Name", PersonName), c("Country", Country),
                ]),
                table!("Stay", "stays", [
                    c("StayID", Id), fk("HotelID", "Hotel"), fk("GuestID", "Guest"),
                    c("Nights", Count), c("CheckIn", Date), c("Bill", Money),
                ]),
            ],
        },
        Theme {
            name: "museum",
            tables: vec![
                table!("Museum", "museums", [
                    c("MuseumID", Id), c("MuseumName", Label), c("City", City),
                    c("Founded", Year),
                ]),
                table!("Exhibit", "exhibits", [
                    c("ExhibitID", Id), fk("MuseumID", "Museum"), c("ExhibitName", Label),
                    c("Era", Category(2)), c("Insured", Money),
                ]),
                table!("Visit", "visits", [
                    c("VisitID", Id), fk("ExhibitID", "Exhibit"), c("Visitors", Count),
                    c("VisitDate", Date),
                ]),
            ],
        },
        Theme {
            name: "government",
            tables: vec![
                table!("Agency", "agencies", [
                    c("AgencyID", Id), c("AgencyName", Label), c("City", City),
                    c("Budget", Money),
                ]),
                table!("Grant", "grants", [
                    c("GrantID", Id), fk("AgencyID", "Agency"), c("Recipient", PersonName),
                    c("Amount", Money), c("Status", Status), c("Awarded", Date),
                ]),
            ],
        },
        Theme {
            name: "weather",
            tables: vec![
                table!("Station", "weather stations", [
                    c("StationID", Id), c("StationName", Label), c("Country", Country),
                    c("Elevation", Measure),
                ]),
                table!("Reading", "readings", [
                    c("ReadingID", Id), fk("StationID", "Station"), c("Temperature", Measure),
                    c("Rainfall", Measure), c("ReadDate", Date),
                ]),
            ],
        },
        Theme {
            name: "motorsport",
            tables: vec![
                table!("Circuit", "circuits", [
                    c("CircuitID", Id), c("CircuitName", Label), c("Country", Country),
                    c("Opened", Year),
                ]),
                table!("Driver", "race drivers", [
                    c("DriverID", Id), c("Name", PersonName), c("Country", Country),
                    c("Age", Age),
                ]),
                table!("RaceResult", "race results", [
                    c("ResultID", Id), fk("CircuitID", "Circuit"), fk("DriverID", "Driver"),
                    c("Position", Count), c("Season", Year),
                ]),
            ],
        },
        Theme {
            name: "pharmacy",
            tables: vec![
                table!("Pharmacy", "pharmacies", [
                    c("PharmacyID", Id), c("PharmacyName", Label), c("City", City),
                ]),
                table!("Drug", "drugs", [
                    c("DrugID", Id), c("DrugName", Label), c("Price", Money),
                    c("Kind", Category(8)),
                ]),
                table!("Prescription", "prescriptions", [
                    c("PrescriptionID", Id), fk("PharmacyID", "Pharmacy"), fk("DrugID", "Drug"),
                    c("Quantity", Count), c("FillDate", Date),
                ]),
            ],
        },
        Theme {
            name: "streaming",
            tables: vec![
                table!("Channel", "channels", [
                    c("ChannelID", Id), c("ChannelName", Label), c("Country", Country),
                    c("Launched", Year),
                ]),
                table!("Show", "shows", [
                    c("ShowID", Id), fk("ChannelID", "Channel"), c("Title", Label),
                    c("Genre", Category(9)), c("Seasons", Count),
                ]),
                table!("ViewStat", "view stats", [
                    c("StatID", Id), fk("ShowID", "Show"), c("Hours", Measure),
                    c("Month", Date),
                ]),
            ],
        },
        Theme {
            name: "gaming",
            tables: vec![
                table!("Studio", "game studios", [
                    c("StudioID", Id), c("StudioName", Label), c("Country", Country),
                    c("Founded", Year),
                ]),
                table!("Game", "games", [
                    c("GameID", Id), fk("StudioID", "Studio"), c("Title", Label),
                    c("Price", Money), c("Rating", Measure),
                ]),
                table!("PlaySession", "play sessions", [
                    c("SessionID", Id), fk("GameID", "Game"), c("Minutes", Measure),
                    c("PlayDate", Date),
                ]),
            ],
        },
        Theme {
            name: "charity",
            tables: vec![
                table!("Charity", "charities", [
                    c("CharityID", Id), c("CharityName", Label), c("Country", Country),
                    c("Founded", Year),
                ]),
                table!("Donor", "donors", [
                    c("DonorID", Id), c("Name", PersonName), c("City", City),
                ]),
                table!("Donation", "donations", [
                    c("DonationID", Id), fk("CharityID", "Charity"), fk("DonorID", "Donor"),
                    c("Amount", Money), c("DonationDate", Date),
                ]),
            ],
        },
        Theme {
            name: "transit",
            tables: vec![
                table!("Route", "transit routes", [
                    c("RouteID", Id), c("RouteName", Label), c("City", City),
                    c("Kilometers", Measure),
                ]),
                table!("Vehicle", "vehicles", [
                    c("VehicleID", Id), fk("RouteID", "Route"), c("Kind", Category(6)),
                    c("Capacity", Count), c("Commissioned", Year),
                ]),
                table!("Ridership", "ridership records", [
                    c("RecordID", Id), fk("RouteID", "Route"), c("Riders", Count),
                    c("RecordDate", Date),
                ]),
            ],
        },
        Theme {
            name: "publishing",
            tables: vec![
                table!("Publisher", "publishers", [
                    c("PublisherID", Id), c("PublisherName", Label), c("City", City),
                ]),
                table!("Author", "authors", [
                    c("AuthorID", Id), c("Name", PersonName), c("Country", Country),
                    c("Debut", Year),
                ]),
                table!("Title", "published titles", [
                    c("TitleID", Id), fk("PublisherID", "Publisher"), fk("AuthorID", "Author"),
                    c("TitleName", Label), c("Copies", Count), c("Released", Year),
                ]),
            ],
        },
        Theme {
            name: "construction",
            tables: vec![
                table!("Contractor", "contractors", [
                    c("ContractorID", Id), c("ContractorName", Label), c("City", City),
                    c("Crew", Count),
                ]),
                table!("Project", "construction projects", [
                    c("ProjectID", Id), fk("ContractorID", "Contractor"), c("ProjectName", Label),
                    c("Budget", Money), c("Status", Status),
                ]),
                table!("Milestone", "milestones", [
                    c("MilestoneID", Id), fk("ProjectID", "Project"), c("Phase", Category(3)),
                    c("DueDate", Date),
                ]),
            ],
        },
        Theme {
            name: "veterinary",
            tables: vec![
                table!("ClinicV", "veterinary clinics", [
                    c("ClinicID", Id), c("ClinicName", Label), c("City", City),
                ]),
                table!("Animal", "animals", [
                    c("AnimalID", Id), fk("ClinicID", "ClinicV"), c("Species", Category(6)),
                    c("Name", Label), c("Age", Age),
                ]),
                table!("Visit", "vet visits", [
                    c("VisitID", Id), fk("AnimalID", "Animal"), c("Fee", Money),
                    c("VisitDate", Date), c("Outcome", Status),
                ]),
            ],
        },
        Theme {
            name: "winery",
            tables: vec![
                table!("Vineyard", "vineyards", [
                    c("VineyardID", Id), c("VineyardName", Label), c("Country", Country),
                    c("Hectares", Measure),
                ]),
                table!("Wine", "wines", [
                    c("WineID", Id), fk("VineyardID", "Vineyard"), c("WineName", Label),
                    c("Vintage", Year), c("Price", Money),
                ]),
                table!("Tasting", "tastings", [
                    c("TastingID", Id), fk("WineID", "Wine"), c("Score", Measure),
                    c("Taster", PersonName), c("TastingDate", Date),
                ]),
            ],
        },
        Theme {
            name: "aerospace",
            tables: vec![
                table!("LaunchSite", "launch sites", [
                    c("SiteID", Id), c("SiteName", Label), c("Country", Country),
                    c("Opened", Year),
                ]),
                table!("Rocket", "rockets", [
                    c("RocketID", Id), c("RocketName", Label), c("Payload", Measure),
                    c("Stage", Category(3)),
                ]),
                table!("Launch", "launches", [
                    c("LaunchID", Id), fk("SiteID", "LaunchSite"), fk("RocketID", "Rocket"),
                    c("LaunchDate", Date), c("Outcome", Status),
                ]),
            ],
        },
    ]
}

/// Domain name for database `index` (theme cycled, variant suffixed).
pub fn domain_name(theme: &Theme, variant: usize) -> String {
    if variant == 0 {
        theme.name.to_owned()
    } else {
        format!("{}_{}", theme.name, variant + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn themes_are_well_formed() {
        let ts = themes();
        assert!(ts.len() >= 37, "need a theme per BIRD domain, got {}", ts.len());
        for t in &ts {
            assert!(!t.tables.is_empty());
            for table in &t.tables {
                assert_eq!(table.cols[0].kind, ColKind::Id, "{}.{} must lead with PK", t.name, table.name);
                for col in &table.cols {
                    if col.kind == ColKind::Fk {
                        let target = col.fk_to.expect("fk must name a target");
                        assert!(
                            t.tables.iter().any(|tt| tt.name == target),
                            "{}: dangling FK to {target}",
                            t.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_theme_has_a_filterable_text_and_numeric_column() {
        for t in themes() {
            let mut has_eq = false;
            let mut has_range = false;
            for table in &t.tables {
                for col in &table.cols {
                    has_eq |= col.kind.filterable_eq();
                    has_range |= col.kind.filterable_range();
                }
            }
            assert!(has_eq && has_range, "theme {} lacks filter material", t.name);
        }
    }

    #[test]
    fn domain_names_vary_by_variant() {
        let ts = themes();
        assert_eq!(domain_name(&ts[0], 0), "healthcare");
        assert_eq!(domain_name(&ts[0], 1), "healthcare_2");
    }

    #[test]
    fn fk_parents_precede_children() {
        for t in themes() {
            let mut seen: Vec<&str> = Vec::new();
            for table in &t.tables {
                for col in &table.cols {
                    if let Some(target) = col.fk_to {
                        assert!(seen.contains(&target), "{}: {} references later table {target}", t.name, table.name);
                    }
                }
                seen.push(table.name);
            }
        }
    }
}
