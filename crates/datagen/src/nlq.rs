//! Rendering a [`QuerySpec`] as a natural-language question plus a
//! BIRD-style evidence string.
//!
//! Questions mention *display* forms of values; when those differ from the
//! stored forms (quirked columns, abstract phrases like "a normal IGA
//! level"), an evidence line spells out the mapping — exactly the situation
//! BIRD's external-knowledge field creates.

use crate::build::BuiltDb;
use crate::spec::{AggFunc, CmpOp, FilterSpec, QuerySpec, SelectSpec};
use sqlkit::Value;

/// Rendered natural-language artefacts of a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedQuestion {
    /// The question.
    pub question: String,
    /// Evidence / external-knowledge lines ("" when none needed).
    pub evidence: String,
}

/// Render the question and evidence for a spec.
pub fn render(spec: &QuerySpec, db: &BuiltDb) -> RenderedQuestion {
    let noun = spec
        .tables
        .first()
        .and_then(|t| db.table_meta(t))
        .map(|t| t.noun.clone())
        .unwrap_or_else(|| "rows".to_owned());

    let filter_clause = render_filters(&spec.filters, db);
    let head = render_head(spec, db, &noun);

    let mut question = head;
    if !filter_clause.is_empty() {
        question.push(' ');
        question.push_str(&filter_clause);
    }
    question.push('?');

    let evidence = render_evidence(spec, db);
    RenderedQuestion { question, evidence }
}

fn pretty_col(db: &BuiltDb, table: &str, column: &str) -> String {
    let _ = db;
    let _ = table;
    column.to_lowercase()
}

fn render_head(spec: &QuerySpec, db: &BuiltDb, noun: &str) -> String {
    // grouped queries
    if let Some((gt, gc)) = &spec.group_by {
        let agg_part = spec
            .select
            .iter()
            .find_map(|s| match s {
                SelectSpec::Agg { func, table, column } => {
                    Some(render_agg(*func, table, column.as_deref(), db, noun))
                }
                _ => None,
            })
            .unwrap_or_else(|| format!("the number of {noun}"));
        let mut head = format!("For each {}, what is {}", pretty_col(db, gt, gc), agg_part);
        if let Some(o) = &spec.order {
            if spec.limit.is_some() {
                head = format!(
                    "Which {} has the {} {}",
                    pretty_col(db, gt, gc),
                    if o.desc { "highest" } else { "lowest" },
                    match &o.agg {
                        Some(f) => format!("{} of {}", f.english(), pretty_col(db, &o.table, &o.column)),
                        None => pretty_col(db, &o.table, &o.column),
                    }
                );
            }
        }
        return head;
    }

    // ranked (ORDER BY ... LIMIT) queries
    if let (Some(o), Some(n)) = (&spec.order, spec.limit) {
        let superlative = if o.desc { "highest" } else { "lowest" };
        let sel = render_select_list(spec, db, noun);
        if n == 1 {
            return format!(
                "What is {} of the {} with the {} {}",
                sel,
                singular(noun),
                superlative,
                pretty_col(db, &o.table, &o.column)
            );
        }
        return format!(
            "List {} of the {} {} with the {} {}",
            sel,
            n,
            noun,
            superlative,
            pretty_col(db, &o.table, &o.column)
        );
    }

    // plain aggregates
    if let Some(SelectSpec::Agg { func, table, column }) = spec.select.first() {
        let agg = render_agg(*func, table, column.as_deref(), db, noun);
        return match func {
            AggFunc::Count | AggFunc::CountDistinct => format!("How many {}", agg),
            _ => format!("What is {}", agg),
        };
    }

    // bare column lists
    let sel = render_select_list(spec, db, noun);
    format!("What {} {} of the {}", if spec.select.len() > 1 { "are" } else { "is" }, sel, noun)
}

fn render_agg(
    func: AggFunc,
    table: &str,
    column: Option<&str>,
    db: &BuiltDb,
    noun: &str,
) -> String {
    match func {
        // count over a PK / plain column still reads as "how many X"
        AggFunc::Count => noun.to_owned(),
        AggFunc::CountDistinct => match column {
            Some(c) => format!("distinct {} among the {}", pretty_col(db, table, c), noun),
            None => noun.to_owned(),
        },
        _ => {
            let c = column.map(|c| pretty_col(db, table, c)).unwrap_or_default();
            format!("the {} {} of the {}", func.english(), c, noun)
        }
    }
}

fn render_select_list(spec: &QuerySpec, db: &BuiltDb, noun: &str) -> String {
    let parts: Vec<String> = spec
        .select
        .iter()
        .map(|s| match s {
            SelectSpec::Column { table, column } => format!("the {}", pretty_col(db, table, column)),
            SelectSpec::Agg { func, table, column } => {
                render_agg(*func, table, column.as_deref(), db, noun)
            }
        })
        .collect();
    parts.join(" and ")
}

fn render_filters(filters: &[FilterSpec], db: &BuiltDb) -> String {
    if filters.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = filters.iter().map(|f| render_filter(f, db)).collect();
    format!("where {}", parts.join(" and "))
}

fn render_filter(f: &FilterSpec, db: &BuiltDb) -> String {
    if let Some(phrase) = &f.abstract_phrase {
        return phrase.clone();
    }
    let col = pretty_col(db, &f.table, &f.column);
    if f.year_of_date {
        return match f.op {
            CmpOp::Ge | CmpOp::Gt => format!("the {} is in {} or later", col, f.display),
            CmpOp::Le | CmpOp::Lt => format!("the {} is in {} or earlier", col, f.display),
            _ => format!("the {} falls in {}", col, f.display),
        };
    }
    match f.op {
        CmpOp::Between => format!(
            "the {} is between {} and {}",
            col,
            f.display,
            f.value2.as_ref().map(value_display).unwrap_or_default()
        ),
        op => format!("the {} {} {}", col, op.english(), quote_display(f, &f.display)),
    }
}

fn quote_display(f: &FilterSpec, display: &str) -> String {
    match f.value {
        Value::Text(_) => format!("\"{display}\""),
        _ => display.to_owned(),
    }
}

fn value_display(v: &Value) -> String {
    v.to_string()
}

fn singular(noun: &str) -> &str {
    noun.strip_suffix('s').unwrap_or(noun)
}

/// Evidence lines: one per filter whose question wording differs from the
/// stored literal.
pub fn render_evidence(spec: &QuerySpec, db: &BuiltDb) -> String {
    let mut lines: Vec<String> = Vec::new();
    for f in &spec.filters {
        if !f.display_mismatch() || !f.has_evidence {
            continue;
        }
        let col_ref = format!("{}.{}", f.table, quote_ident(&f.column));
        let lhs = if f.year_of_date {
            format!("strftime('%Y', {col_ref})")
        } else {
            col_ref
        };
        let rhs = sqlkit::printer::literal(&f.value);
        let cond = match f.op {
            CmpOp::Eq => format!("{lhs} = {rhs}"),
            CmpOp::Ne => format!("{lhs} != {rhs}"),
            CmpOp::Gt => format!("{lhs} > {rhs}"),
            CmpOp::Ge => format!("{lhs} >= {rhs}"),
            CmpOp::Lt => format!("{lhs} < {rhs}"),
            CmpOp::Le => format!("{lhs} <= {rhs}"),
            CmpOp::Between => format!(
                "{lhs} BETWEEN {rhs} AND {}",
                sqlkit::printer::literal(f.value2.as_ref().unwrap_or(&f.value))
            ),
        };
        let subject = f
            .abstract_phrase
            .clone()
            .unwrap_or_else(|| format!("\"{}\"", f.display));
        lines.push(format!("{subject} refers to {cond}"));
    }
    let _ = db;
    lines.join("; ")
}

fn quote_ident(name: &str) -> String {
    sqlkit::printer::ident(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_db, RowScale};
    use crate::domain::themes;
    use crate::spec::{Difficulty, OrderSpec};

    fn db() -> BuiltDb {
        build_db(&themes()[0], "h", "healthcare", RowScale::tiny(), 0.0, 3)
    }

    fn base_spec() -> QuerySpec {
        QuerySpec {
            tables: vec!["Patient".into()],
            select: vec![SelectSpec::Agg {
                func: AggFunc::Count,
                table: "Patient".into(),
                column: None,
            }],
            filters: vec![FilterSpec {
                table: "Patient".into(),
                column: "City".into(),
                op: CmpOp::Eq,
                value: Value::text("OSL"),
                value2: None,
                display: "Oslo".into(),
                year_of_date: false,
                abstract_phrase: None,
                has_evidence: true,
            }],
            group_by: None,
            order: None,
            limit: None,
            distinct: false,
            difficulty: Difficulty::Simple,
        }
    }

    #[test]
    fn count_question_reads_naturally() {
        let r = render(&base_spec(), &db());
        assert_eq!(r.question, "How many patients where the city is \"Oslo\"?");
    }

    #[test]
    fn evidence_emitted_on_display_mismatch() {
        let r = render(&base_spec(), &db());
        assert_eq!(r.evidence, "\"Oslo\" refers to Patient.City = 'OSL'");
        // no mismatch → no evidence
        let mut s = base_spec();
        s.filters[0].value = Value::text("Oslo");
        let r = render(&s, &db());
        assert!(r.evidence.is_empty());
    }

    #[test]
    fn abstract_phrase_takes_over_wording() {
        let mut s = base_spec();
        s.filters[0].abstract_phrase = Some("patients living in the capital".into());
        let r = render(&s, &db());
        assert!(r.question.contains("patients living in the capital"), "{}", r.question);
        assert!(r.evidence.contains("refers to Patient.City = 'OSL'"), "{}", r.evidence);
    }

    #[test]
    fn ranked_question() {
        let mut s = base_spec();
        s.select =
            vec![SelectSpec::Column { table: "Patient".into(), column: "Name".into() }];
        s.filters.clear();
        s.order = Some(OrderSpec {
            table: "Patient".into(),
            column: "Age".into(),
            agg: None,
            desc: true,
        });
        s.limit = Some(1);
        let r = render(&s, &db());
        assert_eq!(r.question, "What is the name of the patient with the highest age?");
    }

    #[test]
    fn grouped_question() {
        let mut s = base_spec();
        s.filters.clear();
        s.select = vec![
            SelectSpec::Column { table: "Patient".into(), column: "City".into() },
            SelectSpec::Agg { func: AggFunc::Count, table: "Patient".into(), column: None },
        ];
        s.group_by = Some(("Patient".into(), "City".into()));
        let r = render(&s, &db());
        assert!(r.question.starts_with("For each city"), "{}", r.question);
    }

    #[test]
    fn year_of_date_phrasing() {
        let mut s = base_spec();
        s.filters = vec![FilterSpec {
            table: "Patient".into(),
            column: "First Date".into(),
            op: CmpOp::Ge,
            value: Value::text("1990"),
            value2: None,
            display: "1990".into(),
            year_of_date: true,
            abstract_phrase: None,
            has_evidence: true,
        }];
        let r = render(&s, &db());
        assert!(r.question.contains("in 1990 or later"), "{}", r.question);
        assert!(r.evidence.contains("strftime('%Y', Patient.`First Date`) >= '1990'"), "{}", r.evidence);
    }
}
