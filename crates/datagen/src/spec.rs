//! Structured query specifications.
//!
//! Every benchmark example is generated *from* a [`QuerySpec`]: the gold
//! SQL and the natural-language question are two renderings of the same
//! spec. The simulated LLM later re-derives (a possibly corrupted copy of)
//! the spec, which is what makes hallucination injection causally tied to
//! prompt content rather than string-mangling.

use serde::{Deserialize, Serialize};
use sqlkit::ast::{
    BinOp, Expr, FromClause, Join, JoinKind, OrderItem, SelectCore, SelectItem, SelectStmt,
    TableRef,
};
use sqlkit::schema::DbSchema;
use sqlkit::{Span, Value};

/// Aggregate functions a spec can ask for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(col)` or `COUNT(*)`.
    Count,
    /// `COUNT(DISTINCT col)`.
    CountDistinct,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggFunc {
    /// SQL function name.
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// English rendering for question templates.
    pub fn english(&self) -> &'static str {
        match self {
            AggFunc::Count => "number",
            AggFunc::CountDistinct => "number of distinct",
            AggFunc::Sum => "total",
            AggFunc::Avg => "average",
            AggFunc::Min => "lowest",
            AggFunc::Max => "highest",
        }
    }
}

/// One projected output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectSpec {
    /// A bare column.
    Column {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// An aggregate; `column: None` means `COUNT(*)`.
    Agg {
        /// The aggregate.
        func: AggFunc,
        /// Table of the aggregated column.
        table: String,
        /// Aggregated column (None for `COUNT(*)`).
        column: Option<String>,
    },
}

/// Comparison operators for filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `BETWEEN a AND b`
    Between,
}

impl CmpOp {
    fn bin_op(self) -> BinOp {
        match self {
            CmpOp::Eq => BinOp::Eq,
            CmpOp::Ne => BinOp::Ne,
            CmpOp::Gt => BinOp::Gt,
            CmpOp::Ge => BinOp::Ge,
            CmpOp::Lt => BinOp::Lt,
            CmpOp::Le => BinOp::Le,
            CmpOp::Between => unreachable!("between handled separately"),
        }
    }

    /// English rendering.
    pub fn english(&self) -> &'static str {
        match self {
            CmpOp::Eq => "is",
            CmpOp::Ne => "is not",
            CmpOp::Gt => "is greater than",
            CmpOp::Ge => "is at least",
            CmpOp::Lt => "is less than",
            CmpOp::Le => "is at most",
            CmpOp::Between => "is between",
        }
    }
}

/// One WHERE condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterSpec {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Comparison.
    pub op: CmpOp,
    /// Stored-form comparison value (what gold SQL uses).
    pub value: Value,
    /// Second value for `Between`.
    pub value2: Option<Value>,
    /// Human display form used in the question.
    pub display: String,
    /// When set, the filter is `strftime('%Y', col) <op> 'YYYY'`.
    pub year_of_date: bool,
    /// Abstract phrase used in the question instead of the literal value
    /// ("a normal IGA level"); implies an evidence line.
    pub abstract_phrase: Option<String>,
    /// Whether the benchmark provides an evidence line for this filter.
    /// BIRD's external knowledge is incomplete: some dirty values are
    /// documented, others must be found by value retrieval.
    pub has_evidence: bool,
}

impl FilterSpec {
    /// Does the question's wording differ from the stored literal (so the
    /// example needs evidence or value retrieval)?
    pub fn display_mismatch(&self) -> bool {
        if self.abstract_phrase.is_some() || self.year_of_date {
            return true;
        }
        match &self.value {
            Value::Text(stored) => *stored != self.display,
            _ => false,
        }
    }
}

/// ORDER BY target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderSpec {
    /// Table of the sort column.
    pub table: String,
    /// Sort column.
    pub column: String,
    /// Aggregate applied to the sort column (for grouped queries).
    pub agg: Option<AggFunc>,
    /// Descending flag.
    pub desc: bool,
}

/// Difficulty tiers, mirroring BIRD's simple/moderate/challenging split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    /// Single table, one filter.
    Simple,
    /// One join or one aggregate.
    Moderate,
    /// Multi-join, multi-filter, grouped or ranked.
    Challenging,
}

impl Difficulty {
    /// Display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Difficulty::Simple => "simple",
            Difficulty::Moderate => "moderate",
            Difficulty::Challenging => "challenging",
        }
    }

    /// All tiers in order.
    pub fn all() -> [Difficulty; 3] {
        [Difficulty::Simple, Difficulty::Moderate, Difficulty::Challenging]
    }
}

/// A complete structured query intent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Tables involved, base first; each subsequent table FK-adjacent to an
    /// earlier one.
    pub tables: Vec<String>,
    /// Projection.
    pub select: Vec<SelectSpec>,
    /// Conjunctive filters.
    pub filters: Vec<FilterSpec>,
    /// GROUP BY column.
    pub group_by: Option<(String, String)>,
    /// ORDER BY.
    pub order: Option<OrderSpec>,
    /// LIMIT.
    pub limit: Option<u32>,
    /// SELECT DISTINCT flag.
    pub distinct: bool,
    /// Difficulty tier the spec was sampled for.
    pub difficulty: Difficulty,
}

impl QuerySpec {
    /// Alias (`T1`, `T2`, ...) for a table; falls back to the table name
    /// when the table is not part of the spec (hallucinated references).
    pub fn alias_of(&self, table: &str) -> String {
        match self.tables.iter().position(|t| t.eq_ignore_ascii_case(table)) {
            Some(i) => format!("T{}", i + 1),
            None => table.to_owned(),
        }
    }

    /// Every `(table, column)` pair the spec touches.
    pub fn columns_used(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        let mut push = |t: &str, c: &str| {
            let pair = (t.to_owned(), c.to_owned());
            if !out.contains(&pair) {
                out.push(pair);
            }
        };
        for s in &self.select {
            match s {
                SelectSpec::Column { table, column } => push(table, column),
                SelectSpec::Agg { table, column: Some(c), .. } => push(table, c),
                SelectSpec::Agg { .. } => {}
            }
        }
        for f in &self.filters {
            push(&f.table, &f.column);
        }
        if let Some((t, c)) = &self.group_by {
            push(t, c);
        }
        if let Some(o) = &self.order {
            push(&o.table, &o.column);
        }
        out
    }

    /// Render the spec as a SQL AST, inferring join conditions from the
    /// schema's FK graph. This is the *gold* rendering; the simulated LLM
    /// renders corrupted copies through the same function.
    pub fn to_sql(&self, schema: &DbSchema) -> SelectStmt {
        let use_aliases = self.tables.len() > 1;
        let tref = |i: usize, name: &str| TableRef::Named {
            name: schema.table(name).map(|t| t.name.clone()).unwrap_or_else(|| name.to_owned()),
            alias: use_aliases.then(|| format!("T{}", i + 1)),
            span: Span::default(),
        };
        let qual = |spec: &QuerySpec, table: &str| -> String {
            if use_aliases {
                spec.alias_of(table)
            } else {
                table.to_owned()
            }
        };

        // FROM with FK-inferred joins
        let from = if self.tables.is_empty() {
            None
        } else {
            let base = tref(0, &self.tables[0]);
            let mut joins = Vec::new();
            for (i, t) in self.tables.iter().enumerate().skip(1) {
                let mut on = None;
                'search: for (j, prev) in self.tables.iter().enumerate().take(i) {
                    for fk in &schema.foreign_keys {
                        let fwd = fk.table.eq_ignore_ascii_case(t)
                            && fk.ref_table.eq_ignore_ascii_case(prev);
                        let back = fk.ref_table.eq_ignore_ascii_case(t)
                            && fk.table.eq_ignore_ascii_case(prev);
                        if fwd || back {
                            let (lt, lc, rt, rc) = if fwd {
                                (i, &fk.column, j, &fk.ref_column)
                            } else {
                                (i, &fk.ref_column, j, &fk.column)
                            };
                            on = Some(Expr::binary(
                                Expr::qcol(qual(self, &self.tables[lt]), lc.clone()),
                                BinOp::Eq,
                                Expr::qcol(qual(self, &self.tables[rt]), rc.clone()),
                            ));
                            break 'search;
                        }
                    }
                }
                joins.push(Join { kind: JoinKind::Inner, table: tref(i, t), on });
            }
            Some(FromClause { base, joins })
        };

        // SELECT items
        let items: Vec<SelectItem> = self
            .select
            .iter()
            .map(|s| SelectItem::Expr { expr: self.select_expr(s, &qual), alias: None })
            .collect();

        // WHERE
        let mut where_clause: Option<Expr> = None;
        for f in &self.filters {
            let cond = self.filter_expr(f, &qual);
            where_clause = Some(match where_clause {
                None => cond,
                Some(acc) => Expr::binary(acc, BinOp::And, cond),
            });
        }

        // GROUP BY
        let group_by = self
            .group_by
            .iter()
            .map(|(t, c)| Expr::qcol(qual(self, t), c.clone()))
            .collect();

        // ORDER BY / LIMIT
        let order_by = self
            .order
            .iter()
            .map(|o| {
                let col = Expr::qcol(qual(self, &o.table), o.column.clone());
                let expr = match o.agg {
                    Some(f) => Expr::Function {
                        name: f.sql_name().into(),
                        args: vec![col],
                        distinct: f == AggFunc::CountDistinct,
                        span: Span::default(),
                    },
                    None => col,
                };
                OrderItem { expr, desc: o.desc }
            })
            .collect();

        SelectStmt {
            core: SelectCore {
                distinct: self.distinct,
                items,
                from,
                where_clause,
                group_by,
                having: None,
            },
            compounds: Vec::new(),
            order_by,
            limit: self.limit.map(|n| Expr::lit(n as i64)),
            offset: None,
        }
    }

    fn select_expr(&self, s: &SelectSpec, qual: &dyn Fn(&QuerySpec, &str) -> String) -> Expr {
        match s {
            SelectSpec::Column { table, column } => {
                Expr::qcol(qual(self, table), column.clone())
            }
            SelectSpec::Agg { func, table, column } => {
                let arg = match column {
                    Some(c) => Expr::qcol(qual(self, table), c.clone()),
                    None => Expr::Wildcard,
                };
                Expr::Function {
                    name: func.sql_name().into(),
                    args: vec![arg],
                    distinct: *func == AggFunc::CountDistinct,
                    span: Span::default(),
                }
            }
        }
    }

    fn filter_expr(&self, f: &FilterSpec, qual: &dyn Fn(&QuerySpec, &str) -> String) -> Expr {
        let mut col = Expr::qcol(qual(self, &f.table), f.column.clone());
        if f.year_of_date {
            col = Expr::Function {
                name: "strftime".into(),
                args: vec![Expr::lit("%Y"), col],
                distinct: false,
                span: Span::default(),
            };
        }
        match f.op {
            CmpOp::Between => Expr::Between {
                expr: Box::new(col),
                low: Box::new(Expr::Literal(f.value.clone())),
                high: Box::new(Expr::Literal(
                    f.value2.clone().expect("between carries a second value"),
                )),
                negated: false,
            },
            op => Expr::binary(col, op.bin_op(), Expr::Literal(f.value.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_db, RowScale};
    use crate::domain::themes;

    fn spec() -> QuerySpec {
        QuerySpec {
            tables: vec!["Patient".into(), "Laboratory".into()],
            select: vec![SelectSpec::Agg {
                func: AggFunc::CountDistinct,
                table: "Patient".into(),
                column: Some("PatientID".into()),
            }],
            filters: vec![
                FilterSpec {
                    table: "Laboratory".into(),
                    column: "IGA".into(),
                    op: CmpOp::Gt,
                    value: Value::Real(80.0),
                    value2: None,
                    display: "80".into(),
                    year_of_date: false,
                    abstract_phrase: None,
                    has_evidence: true,
                },
                FilterSpec {
                    table: "Patient".into(),
                    column: "First Date".into(),
                    op: CmpOp::Ge,
                    value: Value::text("1990"),
                    value2: None,
                    display: "1990".into(),
                    year_of_date: true,
                    abstract_phrase: None,
                    has_evidence: true,
                },
            ],
            group_by: None,
            order: None,
            limit: None,
            distinct: false,
            difficulty: Difficulty::Moderate,
        }
    }

    #[test]
    fn renders_paper_shaped_sql() {
        let b = build_db(&themes()[0], "h", "healthcare", RowScale::tiny(), 0.0, 3);
        let sql = sqlkit::print_select(&spec().to_sql(&b.database.schema));
        assert!(sql.contains("COUNT(DISTINCT T1.PatientID)"), "{sql}");
        assert!(sql.contains("INNER JOIN Laboratory AS T2 ON T2.PatientID = T1.PatientID"), "{sql}");
        assert!(sql.contains("STRFTIME('%Y', T1.`First Date`) >= '1990'"), "{sql}");
        // and it executes
        b.database.query(&sql).unwrap();
    }

    #[test]
    fn single_table_skips_aliases() {
        let b = build_db(&themes()[0], "h", "healthcare", RowScale::tiny(), 0.0, 3);
        let s = QuerySpec {
            tables: vec!["Patient".into()],
            select: vec![SelectSpec::Column { table: "Patient".into(), column: "Name".into() }],
            filters: vec![],
            group_by: None,
            order: Some(OrderSpec {
                table: "Patient".into(),
                column: "Age".into(),
                agg: None,
                desc: true,
            }),
            limit: Some(1),
            distinct: false,
            difficulty: Difficulty::Simple,
        };
        let sql = sqlkit::print_select(&s.to_sql(&b.database.schema));
        assert_eq!(sql, "SELECT Patient.Name FROM Patient ORDER BY Patient.Age DESC LIMIT 1");
        b.database.query(&sql).unwrap();
    }

    #[test]
    fn columns_used_deduplicates() {
        let s = spec();
        let cols = s.columns_used();
        assert_eq!(cols.len(), 3);
        assert!(cols.contains(&("Laboratory".into(), "IGA".into())));
    }

    #[test]
    fn display_mismatch_detection() {
        let mut f = spec().filters[0].clone();
        assert!(!f.display_mismatch());
        f.abstract_phrase = Some("a high IGA".into());
        assert!(f.display_mismatch());
        let g = FilterSpec {
            table: "t".into(),
            column: "c".into(),
            op: CmpOp::Eq,
            value: Value::text("OSL"),
            value2: None,
            display: "Oslo".into(),
            year_of_date: false,
            abstract_phrase: None,
            has_evidence: true,
        };
        assert!(g.display_mismatch());
    }

    #[test]
    fn group_by_and_order_render() {
        let b = build_db(&themes()[0], "h", "healthcare", RowScale::tiny(), 0.0, 3);
        let s = QuerySpec {
            tables: vec!["Patient".into()],
            select: vec![
                SelectSpec::Column { table: "Patient".into(), column: "City".into() },
                SelectSpec::Agg { func: AggFunc::Count, table: "Patient".into(), column: None },
            ],
            filters: vec![],
            group_by: Some(("Patient".into(), "City".into())),
            order: Some(OrderSpec {
                table: "Patient".into(),
                column: "PatientID".into(),
                agg: Some(AggFunc::Count),
                desc: true,
            }),
            limit: Some(3),
            distinct: false,
            difficulty: Difficulty::Challenging,
        };
        let sql = sqlkit::print_select(&s.to_sql(&b.database.schema));
        assert!(sql.contains("GROUP BY Patient.City"), "{sql}");
        assert!(sql.contains("ORDER BY COUNT(Patient.PatientID) DESC"), "{sql}");
        let rs = b.database.query(&sql).unwrap();
        assert!(rs.rows.len() <= 3);
    }
}
