//! Value vocabularies, column kinds, and storage quirks.
//!
//! BIRD's headline difficulty is *dirty values*: the way a value is stored
//! (`'OSL'`, `'JOHN SMITH'`, `'CAT_Tier-2'`) rarely matches how the question
//! mentions it ("Oslo", "John Smith", "tier 2"). Every text column here
//! carries a [`Quirk`] describing the storage transformation, and the
//! generator keeps both the *display form* (used in questions) and the
//! *stored form* (used in gold SQL) so the pipeline's value retrieval has
//! real work to do.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Semantic column kinds; each knows how to generate values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColKind {
    /// Integer surrogate primary key.
    Id,
    /// Foreign key (value range bound to the referenced table's ids).
    Fk,
    /// Person full name.
    PersonName,
    /// City name.
    City,
    /// Country name.
    Country,
    /// Themed categorical value; the payload selects the pool.
    Category(u8),
    /// Workflow status.
    Status,
    /// ISO date stored as text.
    Date,
    /// Calendar year.
    Year,
    /// Monetary amount (two decimals).
    Money,
    /// Physical / score measurement (one decimal).
    Measure,
    /// Small non-negative count.
    Count,
    /// Person age.
    Age,
    /// 0/1 flag.
    Flag,
    /// Short free-text label.
    Label,
}

impl ColKind {
    /// Is this a text-valued kind (candidate for value indexing)?
    pub fn is_textual(&self) -> bool {
        matches!(
            self,
            ColKind::PersonName
                | ColKind::City
                | ColKind::Country
                | ColKind::Category(_)
                | ColKind::Status
                | ColKind::Date
                | ColKind::Label
        )
    }

    /// Is this kind usable in an equality filter mentioned in a question?
    pub fn filterable_eq(&self) -> bool {
        matches!(
            self,
            ColKind::PersonName
                | ColKind::City
                | ColKind::Country
                | ColKind::Category(_)
                | ColKind::Status
                | ColKind::Flag
        )
    }

    /// Is this kind usable in a range filter?
    pub fn filterable_range(&self) -> bool {
        matches!(
            self,
            ColKind::Year | ColKind::Money | ColKind::Measure | ColKind::Count | ColKind::Age
        ) || matches!(self, ColKind::Date)
    }

    /// Is this kind numeric (usable under SUM/AVG)?
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            ColKind::Money | ColKind::Measure | ColKind::Count | ColKind::Age | ColKind::Year
        )
    }

    /// SQL type affinity for the column.
    pub fn type_name(&self) -> sqlkit::ast::TypeName {
        use sqlkit::ast::TypeName::*;
        match self {
            ColKind::Id | ColKind::Fk | ColKind::Year | ColKind::Count | ColKind::Age
            | ColKind::Flag => Integer,
            ColKind::Money | ColKind::Measure => Real,
            _ => Text,
        }
    }
}

/// Storage transformation applied to text values: display form (as a
/// question would say it) → stored form (as the database holds it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quirk {
    /// Stored exactly as displayed.
    None,
    /// Stored in ALL CAPS (`'Oslo'` → `'OSLO'`).
    Upper,
    /// Stored lower-cased (`'Oslo'` → `'oslo'`).
    Lower,
    /// Stored as a code: first three consonant-ish chars upper-cased
    /// (`'Oslo'` → `'OSL'`).
    Abbrev,
    /// Stored with a namespace prefix and underscores
    /// (`'tier two'` → `'C_tier_two'`).
    Coded,
}

impl Quirk {
    /// Transform a display form into the stored form.
    pub fn apply(&self, display: &str) -> String {
        match self {
            Quirk::None => display.to_owned(),
            Quirk::Upper => display.to_uppercase(),
            Quirk::Lower => display.to_lowercase(),
            Quirk::Abbrev => display
                .chars()
                .filter(|c| c.is_alphanumeric())
                .take(3)
                .collect::<String>()
                .to_uppercase(),
            Quirk::Coded => format!("C_{}", display.to_lowercase().replace(' ', "_")),
        }
    }
}

// ------------- vocabularies -------------

/// First names.
pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
    "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony",
    "Sandra", "Mark", "Margaret", "Donald", "Ashley", "Steven", "Kimberly", "Andrew", "Emily",
    "Paul", "Donna", "Joshua", "Michelle", "Kenneth", "Carol", "Kevin", "Amanda", "Brian",
    "Melissa", "George", "Deborah", "Timothy", "Stephanie", "Ronald", "Rebecca", "Jason", "Laura",
    "Edward", "Sharon", "Jeffrey", "Cynthia", "Ryan", "Kathleen", "Jacob", "Amy", "Gary",
    "Angela", "Nicholas", "Shirley", "Eric", "Anna", "Jonathan", "Brenda", "Stephen", "Pamela",
    "Larry", "Emma", "Justin", "Nicole", "Scott", "Helen", "Brandon", "Samantha",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker", "Hall",
    "Rivera", "Campbell", "Mitchell", "Carter", "Roberts", "Gomez", "Phillips", "Evans",
    "Turner", "Diaz", "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers",
];

/// City names.
pub const CITIES: &[&str] = &[
    "Oslo", "Berne", "Madrid", "Lisbon", "Prague", "Vienna", "Dublin", "Athens", "Warsaw",
    "Helsinki", "Brussels", "Copenhagen", "Stockholm", "Budapest", "Zagreb", "Riga", "Vilnius",
    "Tallinn", "Porto", "Lyon", "Marseille", "Hamburg", "Munich", "Cologne", "Turin", "Naples",
    "Valencia", "Seville", "Rotterdam", "Antwerp", "Geneva", "Basel", "Krakow", "Gdansk",
    "Bergen", "Aarhus", "Malmo", "Tampere", "Graz", "Linz", "Bilbao", "Bologna", "Florence",
    "Leipzig", "Dresden", "Utrecht", "Ghent", "Cork", "Galway", "Toledo",
];

/// Country names.
pub const COUNTRIES: &[&str] = &[
    "Norway", "Switzerland", "Spain", "Portugal", "Czechia", "Austria", "Ireland", "Greece",
    "Poland", "Finland", "Belgium", "Denmark", "Sweden", "Hungary", "Croatia", "Latvia",
    "Lithuania", "Estonia", "France", "Germany", "Italy", "Netherlands", "Slovenia", "Slovakia",
    "Romania", "Bulgaria", "Iceland", "Malta", "Cyprus", "Luxembourg",
];

/// Status values.
pub const STATUSES: &[&str] = &[
    "active", "inactive", "pending", "approved", "rejected", "archived", "completed", "draft",
    "suspended", "expired",
];

/// Themed categorical pools, selected by `ColKind::Category(i)`.
pub const CATEGORY_POOLS: &[&[&str]] = &[
    &["gold", "silver", "bronze", "platinum"],
    &["small", "medium", "large", "extra large"],
    &["north", "south", "east", "west", "central"],
    &["tier one", "tier two", "tier three"],
    &["public", "private", "charter", "community"],
    &["cash", "credit", "debit", "transfer", "voucher"],
    &["sedan", "hatchback", "wagon", "coupe", "van"],
    &["forward", "midfielder", "defender", "goalkeeper"],
    &["oncology", "cardiology", "neurology", "pediatrics", "radiology"],
    &["fiction", "biography", "poetry", "reference", "travel"],
    &["espresso", "filter", "cold brew", "cappuccino"],
    &["solar", "wind", "hydro", "nuclear", "coal"],
];

/// Adjective+noun label vocabulary (free-text labels, project names, ...).
pub const LABEL_ADJ: &[&str] = &[
    "bright", "silent", "rapid", "calm", "bold", "amber", "crimson", "azure", "velvet", "iron",
    "silver", "golden", "hollow", "vivid", "quiet", "brisk",
];
/// Nouns for labels.
pub const LABEL_NOUN: &[&str] = &[
    "falcon", "harbor", "meadow", "summit", "canyon", "beacon", "orchard", "lantern", "compass",
    "anchor", "breeze", "thicket", "prairie", "glacier", "ember", "willow",
];

/// A generated value: what the question says vs what the database stores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenValue {
    /// Human form used when rendering the question.
    pub display: String,
    /// Stored form placed in the database and the gold SQL.
    pub stored: sqlkit::Value,
}

/// Generate one value of the given kind.
///
/// `fk_range` bounds foreign-key ids; `quirk` transforms text kinds.
pub fn generate(kind: ColKind, quirk: Quirk, rng: &mut StdRng, fk_range: u32) -> GenValue {
    use sqlkit::Value;
    let pick = |rng: &mut StdRng, pool: &[&str]| pool[rng.gen_range(0..pool.len())].to_owned();
    match kind {
        ColKind::Id => unreachable!("ids are assigned sequentially"),
        ColKind::Fk => {
            let id = rng.gen_range(1..=fk_range.max(1)) as i64;
            GenValue { display: id.to_string(), stored: Value::Int(id) }
        }
        ColKind::PersonName => {
            let display =
                format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES));
            GenValue { stored: Value::Text(quirk.apply(&display)), display }
        }
        ColKind::City => text(pick(rng, CITIES), quirk),
        ColKind::Country => text(pick(rng, COUNTRIES), quirk),
        ColKind::Category(pool) => {
            let pool = CATEGORY_POOLS[pool as usize % CATEGORY_POOLS.len()];
            text(pick(rng, pool), quirk)
        }
        ColKind::Status => text(pick(rng, STATUSES), quirk),
        ColKind::Date => {
            let y = rng.gen_range(1980..=2023);
            let m = rng.gen_range(1..=12);
            let d = rng.gen_range(1..=28);
            let s = format!("{y:04}-{m:02}-{d:02}");
            GenValue { display: s.clone(), stored: Value::Text(s) }
        }
        ColKind::Year => {
            let y = rng.gen_range(1980..=2023) as i64;
            GenValue { display: y.to_string(), stored: Value::Int(y) }
        }
        ColKind::Money => {
            let v = (rng.gen_range(100..2_000_000) as f64) / 100.0;
            GenValue { display: format!("{v:.2}"), stored: Value::Real(v) }
        }
        ColKind::Measure => {
            let v = (rng.gen_range(0..10_000) as f64) / 10.0;
            GenValue { display: format!("{v:.1}"), stored: Value::Real(v) }
        }
        ColKind::Count => {
            let v = rng.gen_range(0..500) as i64;
            GenValue { display: v.to_string(), stored: Value::Int(v) }
        }
        ColKind::Age => {
            let v = rng.gen_range(16..95) as i64;
            GenValue { display: v.to_string(), stored: Value::Int(v) }
        }
        ColKind::Flag => {
            let v = rng.gen_range(0..=1) as i64;
            GenValue { display: if v == 1 { "yes".into() } else { "no".into() }, stored: Value::Int(v) }
        }
        ColKind::Label => {
            let display = format!("{} {}", pick(rng, LABEL_ADJ), pick(rng, LABEL_NOUN));
            GenValue { stored: Value::Text(quirk.apply(&display)), display }
        }
    }
}

fn text(display: String, quirk: Quirk) -> GenValue {
    GenValue { stored: sqlkit::Value::Text(quirk.apply(&display)), display }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quirks_transform_display_forms() {
        assert_eq!(Quirk::Upper.apply("Oslo"), "OSLO");
        assert_eq!(Quirk::Lower.apply("Oslo"), "oslo");
        assert_eq!(Quirk::Abbrev.apply("Oslo"), "OSL");
        assert_eq!(Quirk::Coded.apply("tier two"), "C_tier_two");
        assert_eq!(Quirk::None.apply("Oslo"), "Oslo");
    }

    #[test]
    fn generated_text_respects_quirk() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = generate(ColKind::City, Quirk::Upper, &mut rng, 1);
        assert_eq!(v.stored, sqlkit::Value::Text(v.display.to_uppercase()));
    }

    #[test]
    fn fk_values_respect_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v = generate(ColKind::Fk, Quirk::None, &mut rng, 7);
            match v.stored {
                sqlkit::Value::Int(i) => assert!((1..=7).contains(&i)),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn kind_predicates_are_consistent() {
        assert!(ColKind::City.is_textual());
        assert!(ColKind::City.filterable_eq());
        assert!(!ColKind::City.filterable_range());
        assert!(ColKind::Money.filterable_range());
        assert!(ColKind::Money.is_numeric());
        assert!(!ColKind::Money.is_textual());
        assert!(ColKind::Date.filterable_range());
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(ColKind::PersonName, Quirk::Upper, &mut StdRng::seed_from_u64(9), 1);
        let b = generate(ColKind::PersonName, Quirk::Upper, &mut StdRng::seed_from_u64(9), 1);
        assert_eq!(a, b);
    }
}
