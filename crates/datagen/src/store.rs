//! Durable store export/import for generated benchmarks.
//!
//! Where [`crate::export`] mirrors BIRD's human-readable layout (JSON
//! splits + SQL scripts), this module persists each database as an
//! `osql-store` page file: the `sqlkit` schema and rows go into typed
//! sections, and the generation metadata the pipeline needs beyond the
//! raw data — column kinds, quirks, nouns, the display↔stored
//! dictionaries — rides along as a named blob encoded with the store's
//! own checksummed binary codec. A directory of `<db_id>.store` files
//! is exactly what [`open_store_catalog`] demand-pages at serve time.

use crate::bench::Benchmark;
use crate::build::{BuiltDb, ColMeta, TableMeta};
use crate::values::{ColKind, Quirk};
use osql_store::{Catalog, CodecError, Dec, Enc, StoreError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Name of the blob section carrying datagen metadata.
pub const META_BLOB: &str = "datagen.meta";

// ---- ColKind / Quirk tags (two bytes: tag + payload) -------------------

fn kind_tag(kind: ColKind) -> (u8, u8) {
    match kind {
        ColKind::Id => (0, 0),
        ColKind::Fk => (1, 0),
        ColKind::PersonName => (2, 0),
        ColKind::City => (3, 0),
        ColKind::Country => (4, 0),
        ColKind::Category(n) => (5, n),
        ColKind::Status => (6, 0),
        ColKind::Date => (7, 0),
        ColKind::Year => (8, 0),
        ColKind::Money => (9, 0),
        ColKind::Measure => (10, 0),
        ColKind::Count => (11, 0),
        ColKind::Age => (12, 0),
        ColKind::Flag => (13, 0),
        ColKind::Label => (14, 0),
    }
}

fn tag_kind(tag: u8, payload: u8) -> Result<ColKind, CodecError> {
    Ok(match tag {
        0 => ColKind::Id,
        1 => ColKind::Fk,
        2 => ColKind::PersonName,
        3 => ColKind::City,
        4 => ColKind::Country,
        5 => ColKind::Category(payload),
        6 => ColKind::Status,
        7 => ColKind::Date,
        8 => ColKind::Year,
        9 => ColKind::Money,
        10 => ColKind::Measure,
        11 => ColKind::Count,
        12 => ColKind::Age,
        13 => ColKind::Flag,
        14 => ColKind::Label,
        t => return Err(CodecError(format!("unknown ColKind tag {t}"))),
    })
}

fn quirk_tag(q: Quirk) -> u8 {
    match q {
        Quirk::None => 0,
        Quirk::Upper => 1,
        Quirk::Lower => 2,
        Quirk::Abbrev => 3,
        Quirk::Coded => 4,
    }
}

fn tag_quirk(tag: u8) -> Result<Quirk, CodecError> {
    Ok(match tag {
        0 => Quirk::None,
        1 => Quirk::Upper,
        2 => Quirk::Lower,
        3 => Quirk::Abbrev,
        4 => Quirk::Coded,
        t => return Err(CodecError(format!("unknown Quirk tag {t}"))),
    })
}

// ---- metadata blob codec -----------------------------------------------

fn encode_meta(db: &BuiltDb) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_str(&db.domain);
    enc.put_f64(db.complexity);
    enc.put_u32(db.tables.len() as u32);
    for t in &db.tables {
        enc.put_str(&t.name);
        enc.put_str(&t.noun);
        enc.put_u32(t.cols.len() as u32);
        for c in &t.cols {
            enc.put_str(&c.name);
            let (tag, payload) = kind_tag(c.kind);
            enc.put_u8(tag);
            enc.put_u8(payload);
            enc.put_u8(quirk_tag(c.quirk));
            match &c.fk_to {
                Some(target) => {
                    enc.put_u8(1);
                    enc.put_str(target);
                }
                None => enc.put_u8(0),
            }
        }
    }
    // display dictionaries, sorted for a deterministic byte image
    let mut keys: Vec<&(String, String)> = db.display_map().keys().collect();
    keys.sort();
    enc.put_u32(keys.len() as u32);
    for key in keys {
        let map = &db.display_map()[key];
        enc.put_str(&key.0);
        enc.put_str(&key.1);
        let mut stored: Vec<&String> = map.keys().collect();
        stored.sort();
        enc.put_u32(stored.len() as u32);
        for s in stored {
            enc.put_str(s);
            enc.put_str(&map[s]);
        }
    }
    enc.into_bytes()
}

fn decode_meta(
    id: String,
    database: sqlkit::Database,
    bytes: &[u8],
) -> Result<BuiltDb, CodecError> {
    let mut dec = Dec::new(bytes);
    let domain = dec.get_str()?;
    let complexity = dec.get_f64()?;
    let n_tables = dec.get_u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(4096));
    for _ in 0..n_tables {
        let name = dec.get_str()?;
        let noun = dec.get_str()?;
        let n_cols = dec.get_u32()? as usize;
        let mut cols = Vec::with_capacity(n_cols.min(4096));
        for _ in 0..n_cols {
            let cname = dec.get_str()?;
            let tag = dec.get_u8()?;
            let payload = dec.get_u8()?;
            let kind = tag_kind(tag, payload)?;
            let quirk = tag_quirk(dec.get_u8()?)?;
            let fk_to = if dec.get_u8()? != 0 { Some(dec.get_str()?) } else { None };
            cols.push(ColMeta { name: cname, kind, quirk, fk_to });
        }
        tables.push(TableMeta { name, noun, cols });
    }
    let n_dicts = dec.get_u32()? as usize;
    let mut display_of: HashMap<(String, String), HashMap<String, String>> =
        HashMap::with_capacity(n_dicts.min(4096));
    for _ in 0..n_dicts {
        let table = dec.get_str()?;
        let column = dec.get_str()?;
        let n = dec.get_u32()? as usize;
        let mut map = HashMap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let stored = dec.get_str()?;
            let display = dec.get_str()?;
            map.insert(stored, display);
        }
        display_of.insert((table, column), map);
    }
    if dec.remaining() != 0 {
        return Err(CodecError(format!("{} trailing bytes after metadata", dec.remaining())));
    }
    Ok(BuiltDb::from_parts(id, domain, database, tables, complexity, display_of))
}

// ---- export / import ---------------------------------------------------

/// Write one built database as a store file (schema + row sections plus
/// the metadata blob). Exports are fresh snapshots with no log history,
/// so the TOC's `base_seq` is 0. Returns the bytes written.
pub fn export_db_store(db: &BuiltDb, path: &Path) -> std::io::Result<u64> {
    osql_store::write_database(path, &db.database, &[(META_BLOB.to_owned(), encode_meta(db))], 0)
}

/// Write every database of a benchmark into `dir` as `<db_id>.store`
/// files. Returns the written paths in benchmark order.
pub fn export_store(bench: &Benchmark, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(bench.dbs.len());
    for db in &bench.dbs {
        let path = dir.join(format!("{}.{}", db.id, osql_store::STORE_EXT));
        export_db_store(db, &path)?;
        paths.push(path);
    }
    Ok(paths)
}

/// What [`import_store`] read back from disk.
#[derive(Debug)]
pub struct ImportedStore {
    /// The reconstructed database plus its generation metadata.
    pub db: BuiltDb,
    /// Store file size in bytes (the catalog's residency cost).
    pub file_bytes: u64,
    /// The base file's `base_seq`: the last WAL commit its snapshot
    /// folded in. Callers that replay a sidecar WAL on top must pass
    /// this to `osql_store::replay_into` so folded commits are skipped.
    pub base_seq: u64,
}

/// Read one store file back into a [`BuiltDb`], together with its byte
/// size and the base snapshot's WAL watermark.
pub fn import_store(path: &Path) -> Result<ImportedStore, StoreError> {
    let loaded = osql_store::read_database(path)?;
    let id = loaded.database.schema.name.clone();
    let meta = loaded
        .blobs
        .iter()
        .find(|(name, _)| name == META_BLOB)
        .map(|(_, bytes)| bytes.as_slice())
        .ok_or_else(|| StoreError::corrupt(format!("store has no {META_BLOB} blob")))?;
    let db = decode_meta(id, loaded.database, meta)?;
    Ok(ImportedStore { db, file_bytes: loaded.file_bytes, base_seq: loaded.base_seq })
}

/// Open a demand-paged catalog over a directory of `<db_id>.store`
/// files. Each entry loads as a single-database [`Benchmark`] slice
/// (empty splits) so `Preprocessed::for_db` works unchanged; `budget`
/// bounds resident bytes (the just-loaded entry is never evicted).
pub fn open_store_catalog(
    dir: &Path,
    budget: u64,
    bench_name: &str,
) -> std::io::Result<Catalog<Benchmark>> {
    let name = bench_name.to_owned();
    Catalog::open(dir, budget, move |path: &Path| {
        let imported = import_store(path).map_err(std::io::Error::other)?;
        let mini = Benchmark {
            name: name.clone(),
            dbs: vec![imported.db],
            train: Vec::new(),
            dev: Vec::new(),
            test: Vec::new(),
        };
        Ok((mini, imported.file_bytes))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{generate, Profile};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("osql-datagen-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn built_db_round_trips_through_store() {
        let bench = generate(&Profile::tiny());
        let dir = tmpdir("roundtrip");
        let paths = export_store(&bench, &dir).unwrap();
        assert_eq!(paths.len(), bench.dbs.len());
        for (db, path) in bench.dbs.iter().zip(&paths) {
            let imported = import_store(path).unwrap();
            let (back, bytes) = (imported.db, imported.file_bytes);
            assert!(bytes > 0);
            assert_eq!(imported.base_seq, 0, "fresh exports carry no WAL history");
            assert_eq!(back.id, db.id);
            assert_eq!(back.domain, db.domain);
            assert_eq!(back.complexity, db.complexity);
            assert_eq!(back.database.schema, db.database.schema);
            assert_eq!(back.database.total_rows(), db.database.total_rows());
            for t in &db.tables {
                assert_eq!(back.database.rows(&t.name).unwrap(), db.database.rows(&t.name).unwrap());
                let bt = back.table_meta(&t.name).unwrap();
                assert_eq!(bt.noun, t.noun);
                for c in &t.cols {
                    let bc = back.col_meta(&t.name, &c.name).unwrap();
                    assert_eq!((bc.kind, bc.quirk, &bc.fk_to), (c.kind, c.quirk, &c.fk_to));
                    // display dictionary intact
                    for stored in db.stored_values(&t.name, &c.name) {
                        assert_eq!(
                            back.display_form(&t.name, &c.name, &stored),
                            db.display_form(&t.name, &c.name, &stored)
                        );
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn catalog_pages_benchmarks_lazily() {
        let bench = generate(&Profile::tiny());
        let dir = tmpdir("catalog");
        export_store(&bench, &dir).unwrap();
        let cat = open_store_catalog(&dir, u64::MAX, &bench.name).unwrap();
        let ids = cat.available().unwrap();
        assert_eq!(ids.len(), bench.dbs.len());
        for id in &ids {
            let mini = cat.get(id).unwrap();
            assert_eq!(mini.name, bench.name);
            assert_eq!(mini.dbs.len(), 1);
            assert_eq!(&mini.dbs[0].id, id);
            assert!(mini.train.is_empty() && mini.dev.is_empty() && mini.test.is_empty());
        }
        assert_eq!(cat.loads(), ids.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn import_rejects_store_without_metadata() {
        let bench = generate(&Profile::tiny());
        let dir = tmpdir("nometa");
        let path = dir.join("bare.store");
        osql_store::write_database(&path, &bench.dbs[0].database, &[], 0).unwrap();
        let err = import_store(&path).unwrap_err();
        assert!(err.to_string().contains(META_BLOB));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
