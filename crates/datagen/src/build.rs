//! Materialising a [`Theme`] into a populated [`Database`] plus the
//! generation metadata (`kind`, `quirk`, display↔stored dictionaries) the
//! query sampler and the simulated LLM need.

use crate::domain::Theme;
use crate::values::{generate, ColKind, GenValue, Quirk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::schema::{ColumnInfo, ForeignKey, TableInfo};
use sqlkit::{Database, Value};
use std::collections::HashMap;

/// Generation metadata for one column.
#[derive(Debug, Clone)]
pub struct ColMeta {
    /// Column name.
    pub name: String,
    /// Semantic kind.
    pub kind: ColKind,
    /// Storage quirk (textual kinds only; `None` otherwise).
    pub quirk: Quirk,
    /// FK target table, if any.
    pub fk_to: Option<String>,
}

/// Generation metadata for one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Plural noun for question rendering.
    pub noun: String,
    /// Column metadata, PK first.
    pub cols: Vec<ColMeta>,
}

/// A built database: engine-loadable data plus generation metadata.
#[derive(Debug, Clone)]
pub struct BuiltDb {
    /// Database id (unique within a benchmark).
    pub id: String,
    /// Domain name.
    pub domain: String,
    /// The populated database.
    pub database: Database,
    /// Table metadata in schema order.
    pub tables: Vec<TableMeta>,
    /// Relative comprehension complexity of this database's schema
    /// (BIRD-style complex schemas = 1.0; Spider-style simple schemas are
    /// lower). Consumed by the simulated model's misread rate.
    pub complexity: f64,
    /// `(table, column) → stored-text → display-text` for textual columns.
    display_of: HashMap<(String, String), HashMap<String, String>>,
}

/// Row-count scaling of built databases.
#[derive(Debug, Clone, Copy)]
pub struct RowScale {
    /// Rows in parent (FK-free) tables.
    pub base_rows: usize,
    /// Multiplier for child tables.
    pub child_factor: usize,
}

impl RowScale {
    /// BIRD-flavoured: larger tables.
    pub fn bird() -> Self {
        RowScale { base_rows: 60, child_factor: 4 }
    }

    /// Spider-flavoured: small tables.
    pub fn spider() -> Self {
        RowScale { base_rows: 25, child_factor: 3 }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> Self {
        RowScale { base_rows: 10, child_factor: 2 }
    }
}

impl BuiltDb {
    /// Look up table metadata case-insensitively.
    pub fn table_meta(&self, name: &str) -> Option<&TableMeta> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Column metadata.
    pub fn col_meta(&self, table: &str, column: &str) -> Option<&ColMeta> {
        self.table_meta(table)?.cols.iter().find(|c| c.name.eq_ignore_ascii_case(column))
    }

    /// The display form of a stored text value, when known.
    pub fn display_form(&self, table: &str, column: &str, stored: &str) -> Option<&str> {
        self.display_of
            .get(&(table.to_lowercase(), column.to_lowercase()))
            .and_then(|m| m.get(stored))
            .map(String::as_str)
    }

    /// The full display dictionary (store persistence needs it whole).
    pub(crate) fn display_map(&self) -> &HashMap<(String, String), HashMap<String, String>> {
        &self.display_of
    }

    /// Reassemble a `BuiltDb` from persisted parts (store import).
    pub(crate) fn from_parts(
        id: String,
        domain: String,
        database: Database,
        tables: Vec<TableMeta>,
        complexity: f64,
        display_of: HashMap<(String, String), HashMap<String, String>>,
    ) -> Self {
        BuiltDb { id, domain, database, tables, complexity, display_of }
    }

    /// All distinct stored text values of a column (for value indexing).
    pub fn stored_values(&self, table: &str, column: &str) -> Vec<String> {
        self.display_of
            .get(&(table.to_lowercase(), column.to_lowercase()))
            .map(|m| {
                let mut v: Vec<String> = m.keys().cloned().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    }
}

/// Build and populate a database from a theme.
///
/// `quirk_rate` is the probability that a textual column stores values in a
/// mangled form (BIRD-style dirty values); the remainder store display
/// forms verbatim.
pub fn build_db(
    theme: &Theme,
    db_id: &str,
    domain: &str,
    scale: RowScale,
    quirk_rate: f64,
    seed: u64,
) -> BuiltDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut database = Database::new(db_id);
    let mut tables: Vec<TableMeta> = Vec::with_capacity(theme.tables.len());
    let mut display_of: HashMap<(String, String), HashMap<String, String>> = HashMap::new();
    let mut row_counts: HashMap<String, u32> = HashMap::new();

    for tmpl in &theme.tables {
        // decide quirks per column
        let cols: Vec<ColMeta> = tmpl
            .cols
            .iter()
            .map(|c| {
                let quirk = if c.kind.is_textual()
                    && c.kind != ColKind::Date
                    && rng.gen_bool(quirk_rate)
                {
                    match rng.gen_range(0..4) {
                        0 => Quirk::Upper,
                        1 => Quirk::Lower,
                        2 => Quirk::Abbrev,
                        _ => Quirk::Coded,
                    }
                } else {
                    Quirk::None
                };
                ColMeta {
                    name: c.name.to_owned(),
                    kind: c.kind,
                    quirk,
                    fk_to: c.fk_to.map(str::to_owned),
                }
            })
            .collect();

        // schema
        let info = TableInfo {
            name: tmpl.name.to_owned(),
            columns: cols
                .iter()
                .map(|c| ColumnInfo {
                    name: c.name.clone(),
                    ty: c.kind.type_name(),
                    description: describe_column(tmpl.noun, c),
                    primary_key: c.kind == ColKind::Id,
                })
                .collect(),
        };
        database.create_table(info).expect("theme tables are unique");
        for c in &cols {
            if let Some(target) = &c.fk_to {
                let ref_pk = tables
                    .iter()
                    .find(|t| t.name == *target)
                    .and_then(|t| t.cols.iter().find(|cc| cc.kind == ColKind::Id))
                    .map(|cc| cc.name.clone())
                    .expect("FK parents are built first");
                database.add_foreign_key(ForeignKey {
                    table: tmpl.name.to_owned(),
                    column: c.name.clone(),
                    ref_table: target.clone(),
                    ref_column: ref_pk,
                });
            }
        }

        // data
        let is_child = cols.iter().any(|c| c.kind == ColKind::Fk);
        let n_rows = if is_child {
            scale.base_rows * scale.child_factor + rng.gen_range(0..scale.base_rows)
        } else {
            scale.base_rows + rng.gen_range(0..scale.base_rows / 2 + 1)
        };
        for row_id in 1..=n_rows {
            let mut row: Vec<Value> = Vec::with_capacity(cols.len());
            for c in &cols {
                if c.kind == ColKind::Id {
                    row.push(Value::Int(row_id as i64));
                    continue;
                }
                let fk_range = c
                    .fk_to
                    .as_ref()
                    .and_then(|t| row_counts.get(t.as_str()).copied())
                    .unwrap_or(1);
                let v: GenValue = generate(c.kind, c.quirk, &mut rng, fk_range);
                if let Value::Text(stored) = &v.stored {
                    if c.kind.is_textual() {
                        display_of
                            .entry((tmpl.name.to_lowercase(), c.name.to_lowercase()))
                            .or_default()
                            .insert(stored.clone(), v.display.clone());
                    }
                }
                row.push(v.stored);
            }
            database.insert_row(tmpl.name, row).expect("generated rows match schema");
        }
        row_counts.insert(tmpl.name.to_owned(), n_rows as u32);
        tables.push(TableMeta {
            name: tmpl.name.to_owned(),
            noun: tmpl.noun.to_owned(),
            cols,
        });
    }

    // declare the default index set (PKs and FK endpoints) so point
    // lookups and equi-joins plan as index operators; store exports
    // persist the built runs as index sections
    database.ensure_default_indexes();

    BuiltDb {
        id: db_id.to_owned(),
        domain: domain.to_owned(),
        database,
        tables,
        display_of,
        complexity: 1.0,
    }
}

fn describe_column(noun: &str, c: &ColMeta) -> String {
    let pretty = c.name.to_lowercase();
    match c.kind {
        ColKind::Id => format!("unique id of the {}", singular(noun)),
        ColKind::Fk => format!("references {}", c.fk_to.as_deref().unwrap_or("?")),
        _ => format!("the {pretty} of the {}", singular(noun)),
    }
}

fn singular(noun: &str) -> &str {
    noun.strip_suffix('s').unwrap_or(noun)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::themes;

    fn sample() -> BuiltDb {
        let t = themes();
        build_db(&t[0], "healthcare_0", "healthcare", RowScale::tiny(), 0.8, 42)
    }

    #[test]
    fn builds_schema_and_rows() {
        let b = sample();
        assert_eq!(b.database.schema.tables.len(), 3);
        assert!(b.database.total_rows() > 20);
        assert!(!b.database.schema.foreign_keys.is_empty());
    }

    #[test]
    fn fk_integrity_holds() {
        let b = sample();
        for fk in &b.database.schema.foreign_keys.clone() {
            let rs = b
                .database
                .query(&format!(
                    "SELECT COUNT(*) FROM {} WHERE {} NOT IN (SELECT {} FROM {})",
                    fk.table, fk.column, fk.ref_column, fk.ref_table
                ))
                .unwrap();
            assert_eq!(rs.rows[0][0], Value::Int(0), "dangling FK {fk:?}");
        }
    }

    #[test]
    fn display_dictionary_maps_stored_values() {
        let b = sample();
        for table in &b.tables {
            for col in &table.cols {
                if col.kind.is_textual() && col.kind != ColKind::Date {
                    for stored in b.stored_values(&table.name, &col.name) {
                        let display = b.display_form(&table.name, &col.name, &stored).unwrap();
                        assert_eq!(col.quirk.apply(display), stored);
                    }
                }
            }
        }
    }

    #[test]
    fn quirk_rate_zero_keeps_values_clean() {
        let t = themes();
        let b = build_db(&t[1], "edu", "education", RowScale::tiny(), 0.0, 7);
        for table in &b.tables {
            for col in &table.cols {
                assert_eq!(col.quirk, Quirk::None);
            }
        }
    }

    #[test]
    fn deterministic_build() {
        let t = themes();
        let a = build_db(&t[2], "x", "hockey", RowScale::tiny(), 0.5, 99);
        let b = build_db(&t[2], "x", "hockey", RowScale::tiny(), 0.5, 99);
        assert_eq!(a.database.total_rows(), b.database.total_rows());
        let qa = a.database.query("SELECT * FROM Player ORDER BY PlayerID LIMIT 3").unwrap();
        let qb = b.database.query("SELECT * FROM Player ORDER BY PlayerID LIMIT 3").unwrap();
        assert_eq!(qa.rows, qb.rows);
    }

    #[test]
    fn descriptions_are_present() {
        let b = sample();
        let schema_text = b.database.schema.describe(None);
        assert!(schema_text.contains("unique id of the patient"));
    }
}
