//! # baselines — the eight comparison systems of the paper's Tables 2–3
//!
//! Each baseline is re-implemented as a *module subset* of the shared
//! pipeline substrate, holding the engine, benchmark, and simulated model
//! fixed — which is exactly the comparison the paper's leaderboard makes.
//! The characteristic architecture of each system is encoded in its
//! [`PipelineConfig`] plus its model profile:
//!
//! | System | Characteristic modules |
//! |---|---|
//! | GPT-4 zero-shot | bare prompt, single sample |
//! | DIN-SQL | schema linking + decomposition-style CoT |
//! | DAIL-SQL | Query-SQL few-shot by masked-question similarity |
//! | MAC-SQL | schema selector + decomposer + execution refiner |
//! | MCS-SQL | multiple prompts + multiple-choice selection (vote) |
//! | C3-SQL | zero-shot clear prompting + consistent output (vote) |
//! | CHESS | strong retrieval + column pruning + revision |
//! | Distillery | fine-tuned GPT-4o, no schema linking |

#![deny(missing_docs)]
#![warn(clippy::all)]

use llmsim::ModelProfile;
use opensearch_sql::{CotMode, FewshotMode, PipelineConfig};

/// A named baseline: configuration plus model profile.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// Module subset.
    pub config: PipelineConfig,
    /// Simulated model profile.
    pub profile: ModelProfile,
}

fn bare() -> PipelineConfig {
    // strip the OpenSearch-SQL-specific machinery; baselines opt back in
    PipelineConfig {
        extraction: false,
        values_retrieval: false,
        column_filtering: false,
        info_alignment: false,
        gen_fewshot: FewshotMode::None,
        fewshot_k: 0,
        cot: CotMode::None,
        alignments: false,
        refinement: false,
        correction: false,
        refine_fewshot: false,
        n_candidates: 1,
        self_consistency: false,
        ..PipelineConfig::default()
    }
}

/// GPT-4 with a zero-shot text-to-SQL prompt.
pub fn gpt4_zero_shot() -> Baseline {
    Baseline { name: "GPT-4", config: bare(), profile: ModelProfile::gpt_4() }
}

/// DIN-SQL: question classification & decomposition with schema linking
/// and a self-correction pass.
pub fn din_sql() -> Baseline {
    let config = PipelineConfig {
        extraction: true,
        column_filtering: true,
        table_level_linking: true,
        cot: CotMode::Unstructured,
        refinement: true,
        correction: true,
        max_correction_rounds: 1,
        ..bare()
    };
    Baseline { name: "DIN-SQL + GPT-4", config, profile: ModelProfile::gpt_4() }
}

/// DAIL-SQL: masked-question-similarity Query-SQL few-shot prompting.
pub fn dail_sql() -> Baseline {
    let config = PipelineConfig {
        gen_fewshot: FewshotMode::QuerySql,
        fewshot_k: 5,
        ..bare()
    };
    Baseline { name: "DAIL-SQL + GPT-4", config, profile: ModelProfile::gpt_4() }
}

/// MAC-SQL: selector (schema pruning) + decomposer (CoT) + refiner
/// (execution-guided correction).
pub fn mac_sql() -> Baseline {
    let config = PipelineConfig {
        extraction: true,
        column_filtering: true,
        table_level_linking: true,
        gen_fewshot: FewshotMode::QuerySql,
        fewshot_k: 3,
        cot: CotMode::Unstructured,
        refinement: true,
        correction: true,
        refine_fewshot: true,
        max_correction_rounds: 2,
        ..bare()
    };
    Baseline { name: "MAC-SQL + GPT-4", config, profile: ModelProfile::gpt_4() }
}

/// MCS-SQL: multiple prompts, many candidates, multiple-choice selection.
pub fn mcs_sql() -> Baseline {
    let config = PipelineConfig {
        extraction: true,
        column_filtering: true,
        table_level_linking: true,
        values_retrieval: true,
        gen_fewshot: FewshotMode::QuerySql,
        fewshot_k: 5,
        cot: CotMode::Unstructured,
        refinement: true,
        n_candidates: 15,
        self_consistency: true,
        ..bare()
    };
    Baseline { name: "MCS-SQL + GPT-4", config, profile: ModelProfile::gpt_4() }
}

/// C3-SQL: zero-shot clear prompting with calibration hints and consistent
/// output (small vote). Reported on Spider with ChatGPT.
pub fn c3_sql() -> Baseline {
    let config = PipelineConfig {
        extraction: true,
        column_filtering: true,
        table_level_linking: true,
        cot: CotMode::Unstructured,
        refinement: true,
        n_candidates: 7,
        self_consistency: true,
        ..bare()
    };
    Baseline { name: "C3 + ChatGPT", config, profile: ModelProfile::gpt_4o_mini() }
}

/// CHESS: contextual retrieval, aggressive column pruning, and a reviser
/// driven by execution.
pub fn chess() -> Baseline {
    let config = PipelineConfig {
        extraction: true,
        column_filtering: true,
        table_level_linking: true,
        values_retrieval: true,
        cot: CotMode::Unstructured,
        gen_fewshot: FewshotMode::QuerySql,
        fewshot_k: 5,
        refinement: true,
        correction: true,
        refine_fewshot: true,
        n_candidates: 5,
        self_consistency: true,
        max_correction_rounds: 3,
        ..bare()
    };
    Baseline { name: "CHESS", config, profile: ModelProfile::gpt_4() }
}

/// Distillery: fine-tuned GPT-4o, deliberately *without* schema linking
/// (their thesis), single candidate.
pub fn distillery() -> Baseline {
    let config = PipelineConfig {
        extraction: true,
        values_retrieval: true,
        cot: CotMode::Unstructured,
        refinement: true,
        correction: true,
        max_correction_rounds: 1,
        ..bare()
    };
    Baseline {
        name: "Distillery + GPT-4o(ft)",
        config,
        profile: ModelProfile::gpt_4o_finetuned(),
    }
}

/// OpenSearch-SQL with a given model profile (full configuration).
pub fn opensearch_sql(profile: ModelProfile, with_vote: bool) -> Baseline {
    let config = if with_vote {
        PipelineConfig::full()
    } else {
        PipelineConfig::full().without_self_consistency()
    };
    let name: &'static str = match (profile.name.as_str(), with_vote) {
        ("gpt-4", _) => "OpenSearch-SQL + GPT-4",
        (_, false) => "OpenSearch-SQL + GPT-4o w/o SC & Vote",
        _ => "OpenSearch-SQL + GPT-4o",
    };
    Baseline { name, config, profile }
}

/// The Table 2 (BIRD) line-up, leaderboard order.
pub fn bird_lineup() -> Vec<Baseline> {
    vec![
        gpt4_zero_shot(),
        din_sql(),
        dail_sql(),
        mac_sql(),
        mcs_sql(),
        chess(),
        distillery(),
        opensearch_sql(ModelProfile::gpt_4(), true),
        opensearch_sql(ModelProfile::gpt_4o(), false),
        opensearch_sql(ModelProfile::gpt_4o(), true),
    ]
}

/// The Table 3 (Spider) line-up, paper order.
pub fn spider_lineup() -> Vec<Baseline> {
    vec![
        gpt4_zero_shot(),
        c3_sql(),
        din_sql(),
        dail_sql(),
        mac_sql(),
        mcs_sql(),
        chess(),
        opensearch_sql(ModelProfile::gpt_4(), true),
        opensearch_sql(ModelProfile::gpt_4o(), true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineups_are_complete() {
        assert_eq!(bird_lineup().len(), 10);
        assert_eq!(spider_lineup().len(), 9);
    }

    #[test]
    fn zero_shot_has_no_machinery() {
        let b = gpt4_zero_shot();
        assert!(!b.config.extraction);
        assert_eq!(b.config.n_candidates, 1);
        assert_eq!(b.config.gen_fewshot, FewshotMode::None);
        assert_eq!(b.config.cot, CotMode::None);
    }

    #[test]
    fn modules_escalate_towards_opensearch() {
        // a coarse monotonicity check on the number of enabled boolean
        // modules per baseline, mirroring the historical progression
        let score = |b: &Baseline| -> usize {
            [
                b.config.extraction,
                b.config.values_retrieval,
                b.config.column_filtering,
                b.config.info_alignment,
                b.config.alignments,
                b.config.refinement,
                b.config.correction,
                b.config.self_consistency,
                b.config.gen_fewshot != FewshotMode::None,
                b.config.cot != CotMode::None,
            ]
            .iter()
            .filter(|x| **x)
            .count()
        };
        assert!(score(&gpt4_zero_shot()) < score(&din_sql()));
        assert!(score(&din_sql()) < score(&mac_sql()));
        assert!(score(&mac_sql()) < score(&mcs_sql()));
        let full = opensearch_sql(ModelProfile::gpt_4o(), true);
        assert!(score(&mcs_sql()) < score(&full));
        assert_eq!(score(&full), 10);
    }

    #[test]
    fn distillery_skips_schema_linking() {
        let b = distillery();
        assert!(!b.config.column_filtering, "the Distillery thesis");
        assert!(b.config.values_retrieval);
        assert_eq!(b.profile.name, "gpt-4o-ft");
    }
}
