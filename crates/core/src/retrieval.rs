//! Value and column retrieval over the preprocessed vector database.
//!
//! Preprocessing indexes **string-valued** cells only (paper §3.3, to save
//! index space) plus column descriptors. Retrieval is multi-path (§3.4):
//! embedding search with split retrieval for phrases, plus a normalised
//! scan path that catches abbreviation/coding quirks embeddings miss.

use sqlkit::Value;
use vecstore::{Embedder, Hnsw, HnswConfig, Neighbor, VectorIndex};

/// One indexed stored value.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueHit {
    /// Table name (original casing).
    pub table: String,
    /// Column name (original casing).
    pub column: String,
    /// The stored text value.
    pub stored: String,
    /// Similarity score of the retrieval (1.0 for scan-path hits).
    pub score: f32,
}

/// The per-database value index.
pub struct ValueIndex {
    embedder: Embedder,
    index: Hnsw,
    entries: Vec<(String, String, String)>,
}

impl ValueIndex {
    /// Index every distinct string value of every textual column.
    pub fn build(db: &datagen::BuiltDb) -> Self {
        let embedder = Embedder::new();
        let mut index = Hnsw::new(HnswConfig { seed: 0x71ED, ..HnswConfig::default() });
        let mut entries = Vec::new();
        for table in &db.tables {
            for col in &table.cols {
                if !col.kind.is_textual() {
                    continue;
                }
                for stored in db.stored_values(&table.name, &col.name) {
                    index.add(embedder.embed(&stored));
                    entries.push((table.name.clone(), col.name.clone(), stored));
                }
            }
        }
        ValueIndex { embedder, index, entries }
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Multi-path retrieval for one entity mention: embedding search on
    /// the full phrase, split retrieval on its words, and a normalised
    /// scan. Results deduplicated, above-threshold, best first.
    pub fn retrieve(&self, entity: &str, top_k: usize, threshold: f32) -> Vec<ValueHit> {
        let mut hits: Vec<ValueHit> = Vec::new();
        let push = |idx: usize, score: f32, hits: &mut Vec<ValueHit>| {
            let (t, c, v) = &self.entries[idx];
            if !hits.iter().any(|h| h.table == *t && h.column == *c && h.stored == *v) {
                hits.push(ValueHit {
                    table: t.clone(),
                    column: c.clone(),
                    stored: v.clone(),
                    score,
                });
            }
        };

        // embedding path: whole phrase, then split retrieval on words
        let mut queries: Vec<String> = vec![entity.to_owned()];
        if entity.split_whitespace().count() > 1 {
            queries.extend(entity.split_whitespace().map(str::to_owned));
        }
        for q in &queries {
            for Neighbor { id, score } in self.index.search(&self.embedder.embed(q), top_k) {
                if score >= threshold {
                    push(id, score, &mut hits);
                }
            }
        }

        // scan path: normalised equality or prefix containment (catches
        // 'OSL' ~ 'Oslo', 'C_tier_two' ~ 'tier two')
        let qn = normalize(entity);
        if qn.len() >= 3 {
            for (idx, (_, _, stored)) in self.entries.iter().enumerate() {
                let sn = normalize(stored);
                if sn.is_empty() {
                    continue;
                }
                let matched = sn == qn
                    || (sn.len() >= 3 && (qn.starts_with(&sn) || sn.starts_with(&qn)));
                if matched {
                    push(idx, 1.0, &mut hits);
                }
            }
        }

        hits.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
        });
        hits.truncate(top_k.max(1) * 2);
        hits
    }

    /// All stored values of one column.
    pub fn values_of(&self, table: &str, column: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(t, c, _)| {
                t.eq_ignore_ascii_case(table) && c.eq_ignore_ascii_case(column)
            })
            .map(|(_, _, v)| v.as_str())
            .collect()
    }

    /// Does a column hold this exact value?
    pub fn contains(&self, table: &str, column: &str, value: &str) -> bool {
        self.values_of(table, column).contains(&value)
    }

    /// Exact (normalised/prefix) stored-value match within one column.
    pub fn exact_in_column(&self, table: &str, column: &str, literal: &str) -> Option<String> {
        let values = self.values_of(table, column);
        let ln = normalize(literal);
        if let Some(v) = values.iter().find(|v| normalize(v) == ln) {
            return Some((*v).to_owned());
        }
        values
            .iter()
            .find(|v| {
                let vn = normalize(v);
                vn.len() >= 3 && ln.len() >= 3 && (vn.starts_with(&ln) || ln.starts_with(&vn))
            })
            .map(|v| (*v).to_owned())
    }

    /// Best stored value of a column for a wrong literal: exact normalised
    /// match first, then embedding similarity above `threshold`.
    pub fn best_in_column(
        &self,
        table: &str,
        column: &str,
        literal: &str,
        threshold: f32,
    ) -> Option<String> {
        if let Some(v) = self.exact_in_column(table, column, literal) {
            return Some(v);
        }
        let values = self.values_of(table, column);
        let q = self.embedder.embed(literal);
        let mut best: Option<(f32, &str)> = None;
        for v in values {
            let s = Embedder::cosine(&q, &self.embedder.embed(v));
            if s >= threshold && best.map(|(bs, _)| s > bs).unwrap_or(true) {
                best = Some((s, v));
            }
        }
        best.map(|(_, v)| v.to_owned())
    }

    /// Which `(table, column)` pairs hold this exact value (for
    /// requalification of same-name columns)?
    pub fn locate(&self, value: &str) -> Vec<(&str, &str)> {
        self.entries
            .iter()
            .filter(|(_, _, v)| v == value)
            .map(|(t, c, _)| (t.as_str(), c.as_str()))
            .collect()
    }
}

/// The per-database column descriptor index (vector recall path of column
/// filtering).
pub struct ColumnIndex {
    embedder: Embedder,
    index: Hnsw,
    entries: Vec<(String, String)>,
}

impl ColumnIndex {
    /// Index `table column description` descriptors.
    pub fn build(db: &datagen::BuiltDb) -> Self {
        let embedder = Embedder::new();
        let mut index = Hnsw::new(HnswConfig { seed: 0xC01, ..HnswConfig::default() });
        let mut entries = Vec::new();
        for t in &db.database.schema.tables {
            for c in &t.columns {
                let descriptor = format!("{} {} {}", t.name, c.name, c.description);
                index.add(embedder.embed(&descriptor));
                entries.push((t.name.clone(), c.name.clone()));
            }
        }
        ColumnIndex { embedder, index, entries }
    }

    /// Columns similar to an entity phrase, above threshold.
    pub fn retrieve(&self, entity: &str, top_k: usize, threshold: f32) -> Vec<(String, String)> {
        self.index
            .search(&self.embedder.embed(entity), top_k)
            .into_iter()
            .filter(|n| n.score >= threshold)
            .map(|n| self.entries[n.id].clone())
            .collect()
    }
}

fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Is a literal a plausible value mention (worth indexing / aligning)?
pub fn is_alignable_literal(v: &Value) -> bool {
    match v {
        Value::Text(t) => !t.is_empty() && t.chars().any(|c| c.is_alphabetic()),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{build::build_db, domain::themes, RowScale};

    fn db() -> datagen::BuiltDb {
        build_db(&themes()[0], "h", "healthcare", RowScale::tiny(), 0.7, 21)
    }

    #[test]
    fn indexes_only_text_columns() {
        let b = db();
        let idx = ValueIndex::build(&b);
        assert!(!idx.is_empty());
        // a numeric column contributes nothing
        assert!(idx.values_of("Laboratory", "IGA").is_empty());
        assert!(!idx.values_of("Patient", "City").is_empty());
    }

    #[test]
    fn retrieves_quirked_values_from_display_form() {
        let b = db();
        let idx = ValueIndex::build(&b);
        // find a quirky column with a value whose display differs
        let mut checked = 0;
        for t in &b.tables {
            for c in &t.cols {
                if c.kind.is_textual() && c.quirk != datagen::Quirk::None {
                    for stored in b.stored_values(&t.name, &c.name).into_iter().take(3) {
                        let display = b.display_form(&t.name, &c.name, &stored).unwrap();
                        let hits = idx.retrieve(display, 5, 0.4);
                        assert!(
                            hits.iter().any(|h| h.stored == stored),
                            "display {display:?} should retrieve stored {stored:?}; got {hits:?}"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0, "fixture must contain quirky columns");
    }

    #[test]
    fn best_in_column_repairs_case() {
        let b = db();
        let idx = ValueIndex::build(&b);
        let (t, c, stored) = {
            let mut found = None;
            'outer: for t in &b.tables {
                for c in &t.cols {
                    if c.kind.is_textual() && c.kind != datagen::ColKind::Date {
                        if let Some(v) = b.stored_values(&t.name, &c.name).first() {
                            found = Some((t.name.clone(), c.name.clone(), v.clone()));
                            break 'outer;
                        }
                    }
                }
            }
            found.unwrap()
        };
        let wrong = stored.to_lowercase();
        let fixed = idx.best_in_column(&t, &c, &wrong, 0.6);
        assert_eq!(fixed.as_deref(), Some(stored.as_str()));
    }

    #[test]
    fn locate_finds_owning_columns() {
        let b = db();
        let idx = ValueIndex::build(&b);
        let any = idx.values_of("Patient", "City");
        if let Some(v) = any.first() {
            let locs = idx.locate(v);
            assert!(locs.iter().any(|(t, c)| *t == "Patient" && *c == "City"));
        }
    }

    #[test]
    fn column_index_finds_named_column() {
        let b = db();
        let idx = ColumnIndex::build(&b);
        let hits = idx.retrieve("first date of the patient", 5, 0.2);
        assert!(
            hits.iter().any(|(t, c)| t == "Patient" && c == "First Date"),
            "got {hits:?}"
        );
    }

    #[test]
    fn alignable_literal_filter() {
        assert!(is_alignable_literal(&Value::text("Oslo")));
        assert!(!is_alignable_literal(&Value::text("1990")));
        assert!(!is_alignable_literal(&Value::Int(3)));
    }
}
