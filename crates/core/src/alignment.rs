//! Consistency alignment (paper §3.1, §3.5): repair a candidate SQL by
//! re-aligning it with the agent's *inputs* — the schema, the stored
//! values, and the expected SELECT style.
//!
//! Three aligners mirror Listing 6:
//!
//! - **Agent Alignment** — columns that do not exist are mapped onto the
//!   closest real column; WHERE literals that do not match any stored value
//!   of their column are replaced by the closest stored value, or
//!   re-qualified onto the same-named column that actually holds the value;
//! - **Function Alignment** — aggregates misplaced in `ORDER BY` of an
//!   ungrouped query are unwrapped;
//! - **Style Alignment** — `col = (SELECT MAX(col) ...)` subqueries are
//!   rewritten into the dataset's `ORDER BY col DESC LIMIT 1` style, and
//!   SELECT items beyond the expected count (from Info Alignment) are
//!   trimmed.

use crate::cost::{CostLedger, Module};
use crate::retrieval::{is_alignable_literal, ValueIndex};
use sqlkit::ast::{BinOp, Expr, OrderItem, SelectItem, SelectStmt, TableRef};
use sqlkit::{parse_select, print_select, DbSchema, Value};
use std::time::Instant;

/// Outcome of aligning one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Aligned {
    /// The aligned SQL (identical to the input when nothing fired).
    pub sql: String,
    /// Whether any aligner changed the statement.
    pub changed: bool,
    /// When the input did not parse: the analyzer's `E0001` finding, so the
    /// caller can say *why* alignment was skipped. The SQL itself still
    /// passes through untouched — Correction owns syntax repair.
    pub parse_diagnostic: Option<sqlkit::Diagnostic>,
}

/// Run all aligners over a candidate SQL. Unparseable SQL is returned
/// untouched (the Correction step owns syntax errors), but no longer
/// silently: the returned [`Aligned::parse_diagnostic`] carries the parse
/// finding.
pub fn align_candidate(
    sql: &str,
    schema: &DbSchema,
    values: &ValueIndex,
    expected_select: Option<usize>,
    ledger: &mut CostLedger,
) -> Aligned {
    let stage_start = Instant::now();
    let Ok(mut stmt) = parse_select(sql) else {
        let diag = sqlkit::analyze_sql(schema, sql).diagnostics.into_iter().next();
        ledger.charge(Module::Alignments, stage_start.elapsed().as_secs_f64() * 1e3, 0);
        osql_trace::active::event(
            "align_skipped",
            &[("code", diag.as_ref().map(|d| d.code.as_str()).unwrap_or("unknown"))],
        );
        return Aligned { sql: sql.to_owned(), changed: false, parse_diagnostic: diag };
    };
    let mut changed = false;
    let flag = |b: bool| if b { "true" } else { "false" };

    let t0 = Instant::now();
    let hop = agent_align(&mut stmt, schema, values);
    let agent_ms = t0.elapsed().as_secs_f64() * 1e3;
    ledger.charge(Module::AgentAlign, agent_ms, 0);
    osql_trace::active::event_timed(
        "align_hop",
        &[("hop", "agent"), ("changed", flag(hop))],
        &[("ms", agent_ms)],
    );
    changed |= hop;

    let t0 = Instant::now();
    let hop = function_align(&mut stmt);
    let function_ms = t0.elapsed().as_secs_f64() * 1e3;
    ledger.charge(Module::FunctionAlign, function_ms, 0);
    osql_trace::active::event_timed(
        "align_hop",
        &[("hop", "function"), ("changed", flag(hop))],
        &[("ms", function_ms)],
    );
    changed |= hop;

    let t0 = Instant::now();
    let hop = style_align(&mut stmt) | trim_select(&mut stmt, expected_select);
    let style_ms = t0.elapsed().as_secs_f64() * 1e3;
    ledger.charge(Module::StyleAlign, style_ms, 0);
    osql_trace::active::event_timed(
        "align_hop",
        &[("hop", "style"), ("changed", flag(hop))],
        &[("ms", style_ms)],
    );
    changed |= hop;

    ledger.charge(Module::Alignments, stage_start.elapsed().as_secs_f64() * 1e3, 0);
    let out = if changed { print_select(&stmt) } else { sql.to_owned() };
    Aligned { sql: out, changed, parse_diagnostic: None }
}

/// `binding → table name` pairs of the statement's top-level FROM clause.
fn alias_map(stmt: &SelectStmt) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(from) = &stmt.core.from {
        let mut push = |r: &TableRef| {
            if let TableRef::Named { name, alias, .. } = r {
                out.push((alias.clone().unwrap_or_else(|| name.clone()), name.clone()));
            }
        };
        push(&from.base);
        for j in &from.joins {
            push(&j.table);
        }
    }
    out
}

fn table_of<'a>(aliases: &'a [(String, String)], qualifier: &str) -> Option<&'a str> {
    aliases
        .iter()
        .find(|(b, _)| b.eq_ignore_ascii_case(qualifier))
        .map(|(_, t)| t.as_str())
}

// ---------------- Agent Alignment ----------------

fn agent_align(stmt: &mut SelectStmt, schema: &DbSchema, values: &ValueIndex) -> bool {
    let aliases = alias_map(stmt);
    let mut changed = false;

    // 1. repair hallucinated column names. The analyzer's resolution pass
    //    is the evidence source: each `UnresolvedColumn` carries ranked
    //    repair candidates computed under the executor's own scope rules
    //    (so subquery scopes are honoured). The local distance scan stays
    //    as a fallback for references the analyzer has no candidate for.
    let unresolved = sqlkit::analyze(schema, stmt).unresolved;
    let analyzer_fix = |table: &Option<String>, column: &str| -> Option<String> {
        unresolved
            .iter()
            .find(|u| {
                u.column.eq_ignore_ascii_case(column)
                    && match (&u.table, table) {
                        (Some(a), Some(b)) => a.eq_ignore_ascii_case(b),
                        (None, None) => true,
                        _ => false,
                    }
            })
            .and_then(|u| u.suggestions.first())
            .map(|(_, c)| c.clone())
    };
    stmt.walk_exprs_mut(&mut |e| {
        if let Expr::Column { table, column, .. } = e {
            let target_tables: Vec<&str> = match table.as_deref() {
                Some(q) => table_of(&aliases, q).into_iter().collect(),
                None => aliases.iter().map(|(_, t)| t.as_str()).collect(),
            };
            if target_tables.is_empty() {
                return;
            }
            let exists = target_tables
                .iter()
                .any(|t| schema.table(t).map(|ti| ti.column(column).is_some()).unwrap_or(false));
            if exists {
                return;
            }
            if let Some(fixed) = analyzer_fix(table, column) {
                *column = fixed;
                changed = true;
                return;
            }
            // closest real column across the candidate tables
            let mut best: Option<(usize, String)> = None;
            for t in &target_tables {
                if let Some(ti) = schema.table(t) {
                    for c in &ti.columns {
                        let d = name_distance(column, &c.name);
                        if d <= 2 && best.as_ref().map(|(bd, _)| d < *bd).unwrap_or(true) {
                            best = Some((d, c.name.clone()));
                        }
                    }
                }
            }
            if let Some((_, fixed)) = best {
                *column = fixed;
                changed = true;
            }
        }
    });

    // 2. repair WHERE literals that do not exist in their column, or
    //    re-qualify onto the same-named column that holds the value
    let aliases2 = aliases.clone();
    stmt.walk_exprs_mut(&mut |e| {
        let Expr::Binary { left, op, right } = e else { return };
        if !matches!(op, BinOp::Eq | BinOp::Ne) {
            return;
        }
        let (col_expr, lit_expr) = match (left.as_mut(), right.as_mut()) {
            (Expr::Column { .. }, Expr::Literal(_)) => (left.as_mut(), right.as_mut()),
            (Expr::Literal(_), Expr::Column { .. }) => (right.as_mut(), left.as_mut()),
            _ => return,
        };
        let (Expr::Column { table, column, .. }, Expr::Literal(lit)) = (col_expr, lit_expr) else {
            return;
        };
        if !is_alignable_literal(lit) {
            return;
        }
        let Value::Text(text) = lit.clone() else { return };
        let owner = match table.as_deref() {
            Some(q) => table_of(&aliases2, q).map(str::to_owned),
            None => aliases2
                .iter()
                .find(|(_, t)| {
                    schema.table(t).map(|ti| ti.column(column).is_some()).unwrap_or(false)
                })
                .map(|(_, t)| t.clone()),
        };
        let Some(owner) = owner else { return };
        if values.contains(&owner, column, &text) {
            return;
        }
        // (a) exact (normalised) stored value within this column
        if let Some(fixed) = values.exact_in_column(&owner, column, &text) {
            *lit = Value::Text(fixed);
            changed = true;
            return;
        }
        // (b) the exact value lives in a same-named column of another
        //     joined table → re-qualify (the wrong-table hallucination)
        for (binding, t) in &aliases2 {
            if t.eq_ignore_ascii_case(&owner) {
                continue;
            }
            let same_col = schema
                .table(t)
                .map(|ti| ti.column(column).is_some())
                .unwrap_or(false);
            if same_col && values.contains(t, column, &text) {
                *table = Some(binding.clone());
                changed = true;
                return;
            }
        }
        // (c) fuzzy repair within this column
        if let Some(fixed) = values.best_in_column(&owner, column, &text, 0.55) {
            *lit = Value::Text(fixed);
            changed = true;
        }
    });

    changed
}

/// Case/space-insensitive edit distance between column names, with free
/// separator stripping so `First_Date ~ First Date` is distance 0.
fn name_distance(a: &str, b: &str) -> usize {
    let norm = |s: &str| -> Vec<char> {
        s.chars()
            .filter(|c| c.is_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    levenshtein(&norm(a), &norm(b))
}

fn levenshtein(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

// ---------------- Function Alignment ----------------

fn function_align(stmt: &mut SelectStmt) -> bool {
    let mut changed = false;
    if stmt.core.group_by.is_empty() {
        for item in &mut stmt.order_by {
            if let Expr::Function { name, args, .. } = &item.expr {
                let aggregate = matches!(
                    name.as_str(),
                    "min" | "max" | "avg" | "sum" | "count" | "total"
                );
                if aggregate && args.len() == 1 && !matches!(args[0], Expr::Wildcard) {
                    item.expr = args[0].clone();
                    changed = true;
                }
            }
        }
    }
    changed
}

// ---------------- Style Alignment ----------------

fn style_align(stmt: &mut SelectStmt) -> bool {
    // only rewrite when the outer statement is not already ranked
    if !stmt.order_by.is_empty() || stmt.limit.is_some() {
        return false;
    }
    let Some(where_clause) = stmt.core.where_clause.take() else {
        return false;
    };
    let mut conjuncts = Vec::new();
    collect_conjuncts(where_clause, &mut conjuncts);

    let mut rewrite: Option<(Expr, bool)> = None;
    let mut kept = Vec::with_capacity(conjuncts.len());
    for c in conjuncts {
        if rewrite.is_none() {
            if let Some((col, desc)) = match_extremum_subquery(&c) {
                rewrite = Some((col, desc));
                continue;
            }
        }
        kept.push(c);
    }
    stmt.core.where_clause = rebuild_conjunction(kept);
    match rewrite {
        Some((col, desc)) => {
            stmt.order_by.push(OrderItem { expr: col, desc });
            stmt.limit = Some(Expr::lit(1i64));
            true
        }
        None => false,
    }
}

fn collect_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary { left, op: BinOp::And, right } => {
            collect_conjuncts(*left, out);
            collect_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

fn rebuild_conjunction(mut parts: Vec<Expr>) -> Option<Expr> {
    let mut acc = parts.drain(..).reduce(|a, b| Expr::binary(a, BinOp::And, b));
    acc.take()
}

/// Match `col = (SELECT MAX|MIN(col') ...)` where the column names agree;
/// returns the column and whether the extremum was MAX (→ DESC).
fn match_extremum_subquery(e: &Expr) -> Option<(Expr, bool)> {
    let Expr::Binary { left, op: BinOp::Eq, right } = e else {
        return None;
    };
    let (col, sub) = match (left.as_ref(), right.as_ref()) {
        (Expr::Column { .. }, Expr::Subquery(q)) => (left.as_ref(), q),
        (Expr::Subquery(q), Expr::Column { .. }) => (right.as_ref(), q),
        _ => return None,
    };
    let Expr::Column { column, .. } = col else {
        return None;
    };
    if sub.core.items.len() != 1 || !sub.order_by.is_empty() {
        return None;
    }
    let SelectItem::Expr { expr: Expr::Function { name, args, .. }, .. } = &sub.core.items[0]
    else {
        return None;
    };
    let desc = match name.as_str() {
        "max" => true,
        "min" => false,
        _ => return None,
    };
    let [Expr::Column { column: inner, .. }] = args.as_slice() else {
        return None;
    };
    if !inner.eq_ignore_ascii_case(column) {
        return None;
    }
    Some((col.clone(), desc))
}

/// Trim SELECT items beyond the count expected by Info Alignment.
fn trim_select(stmt: &mut SelectStmt, expected: Option<usize>) -> bool {
    let Some(n) = expected else {
        return false;
    };
    if n >= 1 && stmt.core.items.len() > n {
        stmt.core.items.truncate(n);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{build::build_db, domain::themes, RowScale};

    struct Fx {
        db: datagen::BuiltDb,
        values: ValueIndex,
    }

    impl Fx {
        fn new() -> Self {
            let db = build_db(&themes()[0], "h", "healthcare", RowScale::tiny(), 0.7, 33);
            let values = ValueIndex::build(&db);
            Fx { db, values }
        }

        fn align(&self, sql: &str) -> Aligned {
            let mut ledger = CostLedger::new();
            align_candidate(sql, &self.db.database.schema, &self.values, None, &mut ledger)
        }
    }

    #[test]
    fn repairs_mangled_column_names() {
        let fx = Fx::new();
        let a = fx.align("SELECT First_Date FROM Patient");
        assert!(a.changed);
        assert!(a.sql.contains("`First Date`"), "{}", a.sql);
        // result actually executes now
        fx.db.database.query(&a.sql).unwrap();
    }

    #[test]
    fn repairs_wrong_value_case() {
        let fx = Fx::new();
        // find a stored city value, lowercase it in the SQL
        let stored = fx.values.values_of("Patient", "City")[0].to_owned();
        let wrong = stored.to_lowercase();
        if wrong == stored {
            return; // quirk made it lowercase already
        }
        let sql = format!("SELECT Name FROM Patient WHERE City = '{wrong}'");
        let a = fx.align(&sql);
        assert!(a.changed, "{}", a.sql);
        assert!(a.sql.contains(&format!("'{stored}'")), "{}", a.sql);
    }

    #[test]
    fn requalifies_same_name_column() {
        let fx = Fx::new();
        // Laboratory.Status and Treatment.Status are same-named; take a
        // value stored only in Treatment and qualify it with Laboratory
        let lab: Vec<String> =
            fx.values.values_of("Laboratory", "Status").iter().map(|s| s.to_string()).collect();
        let treat = fx.values.values_of("Treatment", "Status");
        // the value must not be repairable *within* Laboratory.Status either:
        // agent alignment prefers an in-column normalised/prefix match over
        // re-qualification, so a case- or prefix-variant would be rewritten
        // in place rather than moved to T3
        let norm = |s: &str| -> String {
            s.chars().filter(|c| c.is_alphanumeric()).map(|c| c.to_ascii_lowercase()).collect()
        };
        let only_treat = treat.iter().find(|v| {
            let vn = norm(v);
            !lab.iter().any(|l| {
                let ln = norm(l);
                ln == vn
                    || (ln.len() >= 3
                        && vn.len() >= 3
                        && (ln.starts_with(&vn) || vn.starts_with(&ln)))
            })
        });
        let Some(v) = only_treat else { return };
        let sql = format!(
            "SELECT T1.Name FROM Patient AS T1 INNER JOIN Laboratory AS T2 ON T1.PatientID = T2.PatientID \
             INNER JOIN Treatment AS T3 ON T1.PatientID = T3.PatientID WHERE T2.Status = '{v}'"
        );
        let a = fx.align(&sql);
        assert!(a.changed);
        assert!(a.sql.contains(&format!("T3.Status = '{v}'")), "{}", a.sql);
    }

    #[test]
    fn function_alignment_unwraps_order_by_aggregate() {
        let fx = Fx::new();
        let a = fx.align("SELECT Name FROM Patient ORDER BY MAX(Age) DESC LIMIT 1");
        assert!(a.changed);
        assert!(a.sql.contains("ORDER BY Age DESC"), "{}", a.sql);
        // grouped queries keep their aggregate order keys
        let b = fx.align(
            "SELECT City, COUNT(*) FROM Patient GROUP BY City ORDER BY COUNT(PatientID) DESC",
        );
        assert!(!b.changed);
    }

    #[test]
    fn style_alignment_rewrites_extremum_subquery() {
        let fx = Fx::new();
        let a = fx.align(
            "SELECT Name FROM Patient WHERE Age = (SELECT MAX(Age) FROM Patient)",
        );
        assert!(a.changed);
        assert!(a.sql.contains("ORDER BY Age DESC LIMIT 1"), "{}", a.sql);
        assert!(!a.sql.contains("MAX"), "{}", a.sql);
        // other WHERE conjuncts survive
        let b = fx.align(
            "SELECT Name FROM Patient WHERE City = 'X' AND Age = (SELECT MIN(Age) FROM Patient)",
        );
        assert!(b.sql.contains("WHERE"), "{}", b.sql);
        assert!(b.sql.contains("ORDER BY Age LIMIT 1"), "{}", b.sql);
    }

    #[test]
    fn trims_extra_select_items() {
        let fx = Fx::new();
        let mut ledger = CostLedger::new();
        let a = align_candidate(
            "SELECT Name, PatientID FROM Patient",
            &fx.db.database.schema,
            &fx.values,
            Some(1),
            &mut ledger,
        );
        assert!(a.changed);
        assert_eq!(a.sql, "SELECT Name FROM Patient");
        assert!(ledger.get(Module::StyleAlign).calls > 0);
    }

    #[test]
    fn unparseable_sql_passes_through() {
        let fx = Fx::new();
        let a = fx.align("SELECT x FORM y");
        assert!(!a.changed);
        assert_eq!(a.sql, "SELECT x FORM y");
    }

    #[test]
    fn clean_sql_untouched() {
        let fx = Fx::new();
        let sql = "SELECT Name FROM Patient WHERE Age > 30";
        let a = fx.align(sql);
        assert!(!a.changed);
        assert_eq!(a.sql, sql);
    }

    #[test]
    fn name_distance_ignores_separators() {
        assert_eq!(name_distance("First_Date", "First Date"), 0);
        assert_eq!(name_distance("PatientIDs", "PatientID"), 1);
        assert_eq!(name_distance("completely", "different"), 8);
    }
}
