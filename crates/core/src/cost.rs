//! Per-module time and token accounting (reproduces paper Table 6).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Pipeline modules charged in the ledger, mirroring Table 6's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Module {
    /// Extraction stage total (entity & column + retrieval).
    Extraction,
    /// LLM entity/column extraction call.
    EntityColumn,
    /// Vector value/column retrieval.
    Retrieval,
    /// Generation stage.
    Generation,
    /// Refinement stage total.
    Refinement,
    /// Execution-guided correction.
    Correction,
    /// Pre-execution static analysis (the refinement gate).
    Analyze,
    /// Self-consistency & vote.
    Vote,
    /// All alignments together.
    Alignments,
    /// SELECT-style alignment (runs every time).
    SelectAlign,
    /// Agent alignment.
    AgentAlign,
    /// Style alignment.
    StyleAlign,
    /// Function alignment.
    FunctionAlign,
}

impl Module {
    /// All modules in report order.
    pub fn all() -> [Module; 13] {
        use Module::*;
        [
            Extraction, EntityColumn, Retrieval, Generation, Refinement, Correction, Analyze,
            Vote, Alignments, SelectAlign, AgentAlign, StyleAlign, FunctionAlign,
        ]
    }

    /// Display name matching the paper's Table 6 rows.
    pub fn as_str(&self) -> &'static str {
        match self {
            Module::Extraction => "Extraction",
            Module::EntityColumn => "Entity & Column",
            Module::Retrieval => "Retrieval",
            Module::Generation => "Generation",
            Module::Refinement => "Refinement",
            Module::Correction => "Correction",
            Module::Analyze => "Static Analysis",
            Module::Vote => "Self-consistency & Vote",
            Module::Alignments => "Alignments",
            Module::SelectAlign => "SELECT Alignment",
            Module::AgentAlign => "Agent Alignment",
            Module::StyleAlign => "Style Alignment",
            Module::FunctionAlign => "Function Alignment",
        }
    }
}

/// Accumulated cost of one module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ModuleCost {
    /// Modelled + measured time in milliseconds.
    pub time_ms: f64,
    /// LLM tokens (prompt + completion).
    pub tokens: u64,
    /// Number of charges.
    pub calls: u64,
}

/// The per-run (or aggregated) cost ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostLedger {
    entries: BTreeMap<Module, ModuleCost>,
}

impl CostLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge a module.
    pub fn charge(&mut self, module: Module, time_ms: f64, tokens: u64) {
        let e = self.entries.entry(module).or_default();
        e.time_ms += time_ms;
        e.tokens += tokens;
        e.calls += 1;
    }

    /// Cost of one module.
    pub fn get(&self, module: Module) -> ModuleCost {
        self.entries.get(&module).copied().unwrap_or_default()
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        for (m, c) in &other.entries {
            let e = self.entries.entry(*m).or_default();
            e.time_ms += c.time_ms;
            e.tokens += c.tokens;
            e.calls += c.calls;
        }
    }

    /// Whole-pipeline totals (sum of top-level stages, not sub-modules).
    pub fn pipeline_total(&self) -> ModuleCost {
        let mut total = ModuleCost::default();
        for m in [Module::Extraction, Module::Generation, Module::Refinement, Module::Alignments] {
            let c = self.get(m);
            total.time_ms += c.time_ms;
            total.tokens += c.tokens;
            total.calls += c.calls;
        }
        total
    }

    /// Iterate entries in report order.
    pub fn iter(&self) -> impl Iterator<Item = (Module, ModuleCost)> + '_ {
        self.entries.iter().map(|(m, c)| (*m, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut l = CostLedger::new();
        l.charge(Module::Generation, 10.0, 100);
        l.charge(Module::Generation, 5.0, 50);
        let c = l.get(Module::Generation);
        assert_eq!(c.calls, 2);
        assert_eq!(c.tokens, 150);
        assert!((c.time_ms - 15.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_total() {
        let mut a = CostLedger::new();
        a.charge(Module::Extraction, 2.0, 10);
        let mut b = CostLedger::new();
        b.charge(Module::Extraction, 3.0, 20);
        b.charge(Module::Generation, 7.0, 70);
        a.merge(&b);
        assert_eq!(a.get(Module::Extraction).tokens, 30);
        let total = a.pipeline_total();
        assert_eq!(total.tokens, 100);
        assert!((total.time_ms - 12.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_module_is_zero() {
        let l = CostLedger::new();
        assert_eq!(l.get(Module::Vote), ModuleCost::default());
    }
}
