//! The self-taught dynamic few-shot library (paper §3.2).
//!
//! Preprocessing upgrades every train-set Query-SQL pair into a
//! Query-CoT-SQL pair by asking the LLM to fill in the reasoning fields
//! (Listing 2), then indexes the *masked* questions (MQs) so that, at
//! answer time, the `K_f` most skeleton-similar examples drive generation.
//! Correction few-shots (Listing 3) are organised per execution-error type.

use crate::config::FewshotMode;
use llmsim::proto;
use llmsim::{ChatRequest, LanguageModel};
use sqlkit::SqlErrorKind;
use vecstore::{mask_question, Embedder, Hnsw, HnswConfig, VectorIndex};

/// One library entry.
#[derive(Debug, Clone)]
pub struct FewshotEntry {
    /// Original question.
    pub question: String,
    /// Masked skeleton.
    pub masked: String,
    /// Full Query-CoT-SQL block (Listing 2 body, includes the final
    /// `#SQL:` line).
    pub cot_block: String,
    /// Gold SQL.
    pub sql: String,
}

/// The dynamic few-shot library.
pub struct FewshotLibrary {
    embedder: Embedder,
    index: Hnsw,
    entries: Vec<FewshotEntry>,
}

impl FewshotLibrary {
    /// Build the library from train examples via self-taught CoT
    /// augmentation. Returns the library plus total LLM tokens spent.
    pub fn build(llm: &dyn LanguageModel, train: &[datagen::Example]) -> (Self, u64) {
        let embedder = Embedder::new();
        let mut index = Hnsw::new(HnswConfig { seed: 0xF5, ..HnswConfig::default() });
        let mut entries = Vec::with_capacity(train.len());
        let mut tokens = 0u64;
        for ex in train {
            let prompt = format!(
                "{} {}\n{} {}\n/* Answer the following: {} */\n{} {}\n",
                proto::TASK_PREFIX,
                proto::TASK_COT_AUGMENT,
                proto::DB_PREFIX,
                ex.db_id,
                ex.question,
                proto::SQL_PREFIX,
                ex.gold_sql
            );
            let resp = llm.complete(&ChatRequest::once(prompt));
            tokens += (resp.prompt_tokens + resp.completion_tokens) as u64;
            let cot_block = resp.texts.into_iter().next().unwrap_or_default();
            if cot_block.is_empty() {
                continue;
            }
            let masked = mask_question(&ex.question);
            index.add(embedder.embed(&masked));
            entries.push(FewshotEntry {
                question: ex.question.clone(),
                masked,
                cot_block,
                sql: ex.gold_sql.clone(),
            });
        }
        (FewshotLibrary { embedder, index, entries }, tokens)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the library empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `k` entries most similar to a question under MQs.
    pub fn top_k(&self, question: &str, k: usize) -> Vec<&FewshotEntry> {
        let masked = mask_question(question);
        self.index
            .search(&self.embedder.embed(&masked), k)
            .into_iter()
            .map(|n| &self.entries[n.id])
            .collect()
    }

    /// Render a few-shot block for a generation prompt.
    pub fn render_block(&self, question: &str, k: usize, mode: FewshotMode) -> String {
        if mode == FewshotMode::None || k == 0 || self.is_empty() {
            return String::new();
        }
        let mut out = String::from(proto::FEWSHOT_HEADER);
        out.push('\n');
        for e in self.top_k(question, k) {
            out.push_str(&format!("/* Answer the following: {} */\n", e.question));
            match mode {
                FewshotMode::QueryCotSql => {
                    out.push_str(&e.cot_block);
                    out.push('\n');
                }
                FewshotMode::QuerySql => {
                    out.push_str(&format!("{} {}\n", proto::SQL_PREFIX, e.sql));
                }
                FewshotMode::None => unreachable!(),
            }
        }
        out
    }
}

/// Static correction few-shots per execution-error type (Listing 3).
pub fn correction_shot(kind: SqlErrorKind) -> &'static str {
    match kind {
        SqlErrorKind::Syntax => {
            "/* Fix the SQL and answer the question */\n\
             #Error SQL: SELECT name FORM users WHERE id = 3\n\
             Error: syntax error near FORM\n\
             #Change Ambiguity: repair the malformed keyword, keep the logic unchanged\n\
             #SQL: SELECT name FROM users WHERE id = 3\n"
        }
        SqlErrorKind::NoSuchColumn | SqlErrorKind::Ambiguous => {
            "/* Fix the SQL and answer the question */\n\
             #Error SQL: SELECT First_Date FROM Patient\n\
             Error: no such column: First_Date\n\
             #values: Patient.`First Date`\n\
             #Change Ambiguity: map the hallucinated name onto the closest real column\n\
             #SQL: SELECT `First Date` FROM Patient\n"
        }
        SqlErrorKind::NoSuchTable => {
            "/* Fix the SQL and answer the question */\n\
             #Error SQL: SELECT name FROM Patients\n\
             Error: no such table: Patients\n\
             #Change Ambiguity: restore the dropped join / fix the table name\n\
             #SQL: SELECT name FROM Patient\n"
        }
        SqlErrorKind::Function => {
            "/* Fix the SQL and answer the question */\n\
             #Error SQL: SELECT id FROM t ORDER BY MAX(score)\n\
             Error: misuse of aggregate\n\
             #Change Ambiguity: aggregates do not belong in ORDER BY without GROUP BY\n\
             #SQL: SELECT id FROM t ORDER BY score DESC LIMIT 1\n"
        }
        SqlErrorKind::Other => {
            "/* Fix the SQL and answer the question */\n\
             #Error SQL: SELECT id FROM t WHERE name = 'john'\n\
             Error: Result: None\n\
             #values: t.name = 'JOHN'\n\
             #Change Ambiguity: the filter must use the value exactly as stored\n\
             #SQL: SELECT id FROM t WHERE name = 'JOHN'\n"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};
    use std::sync::Arc;

    fn library() -> (FewshotLibrary, datagen::Benchmark) {
        let bench = generate(&Profile::tiny());
        let oracle = Arc::new(Oracle::new(Arc::new(bench.clone())));
        let llm = SimLlm::new(oracle, ModelProfile::gpt_4o(), 1);
        let (lib, tokens) = FewshotLibrary::build(&llm, &bench.train);
        assert!(tokens > 0);
        (lib, bench)
    }

    #[test]
    fn builds_entries_with_cot_blocks() {
        let (lib, bench) = library();
        assert_eq!(lib.len(), bench.train.len());
        for e in lib.top_k("How many things are there?", 3) {
            assert!(e.cot_block.contains("#reason:"));
            assert!(e.cot_block.contains("#SQL-like:"));
            assert!(e.cot_block.contains("#SQL:"));
        }
    }

    #[test]
    fn retrieval_prefers_same_skeleton() {
        let (lib, bench) = library();
        // query with a train question itself: its own skeleton must rank top
        let q = &bench.train[0].question;
        let top = lib.top_k(q, 1);
        assert_eq!(top[0].masked, mask_question(q));
    }

    #[test]
    fn render_block_modes() {
        let (lib, bench) = library();
        let q = &bench.dev[0].question;
        let cot = lib.render_block(q, 3, FewshotMode::QueryCotSql);
        assert_eq!(cot.matches("/* Answer the following:").count(), 3);
        assert!(cot.contains("#reason:"));
        let plain = lib.render_block(q, 3, FewshotMode::QuerySql);
        assert!(!plain.contains("#reason:"));
        assert!(plain.contains("#SQL:"));
        assert!(lib.render_block(q, 3, FewshotMode::None).is_empty());
        assert!(lib.render_block(q, 0, FewshotMode::QueryCotSql).is_empty());
    }

    #[test]
    fn correction_shots_cover_all_kinds() {
        for kind in [
            SqlErrorKind::Syntax,
            SqlErrorKind::NoSuchColumn,
            SqlErrorKind::NoSuchTable,
            SqlErrorKind::Ambiguous,
            SqlErrorKind::Function,
            SqlErrorKind::Other,
        ] {
            let shot = correction_shot(kind);
            assert!(shot.contains("#Error SQL:"));
            assert!(shot.contains("#SQL:"));
        }
    }
}
