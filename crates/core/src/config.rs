//! Pipeline configuration.
//!
//! Every module the paper ablates in Table 4/5/7 is a switch here, so the
//! experiment harness can run `w/o X` configurations by flipping exactly
//! one field.

use serde::{Deserialize, Serialize};

/// Few-shot flavour for a stage (paper §3.2, Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FewshotMode {
    /// Self-taught Query-CoT-SQL pairs (Listing 2).
    QueryCotSql,
    /// Plain Query-SQL pairs (Listing 1).
    QuerySql,
    /// No few-shot.
    None,
}

/// Chain-of-thought flavour for generation (paper §4.7, Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CotMode {
    /// The structured CoT of Listing 5 (reason → columns → values →
    /// SELECT → SQL-like → SQL).
    Structured,
    /// Free-form "let's think step by step".
    Unstructured,
    /// No CoT: answer with bare SQL.
    None,
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Run the Extraction stage at all (off = full schema, no values).
    pub extraction: bool,
    /// Retrieve similar stored values for the prompt.
    pub values_retrieval: bool,
    /// Filter the schema to relevant columns.
    pub column_filtering: bool,
    /// Table-level schema linking: keep every column of any linked table
    /// (how DIN-SQL / MAC-SQL style selectors prune, vs OpenSearch-SQL's
    /// column-level filtering).
    pub table_level_linking: bool,
    /// Info Alignment: schema expansion + SELECT-style alignment.
    pub info_alignment: bool,
    /// Few-shot flavour for Generation.
    pub gen_fewshot: FewshotMode,
    /// Number of few-shot examples (paper sweeps {0,3,5,7,9}).
    pub fewshot_k: usize,
    /// CoT flavour for Generation.
    pub cot: CotMode,
    /// Post-generation alignments (Agent / Function / Style).
    pub alignments: bool,
    /// Run the Refinement stage at all.
    pub refinement: bool,
    /// Execution-guided correction inside Refinement.
    pub correction: bool,
    /// Error-type few-shots inside correction prompts.
    pub refine_fewshot: bool,
    /// Number of generation candidates (paper sweeps {1,3,7,15,21}).
    pub n_candidates: usize,
    /// Self-consistency & vote over candidates (off = take candidate 0).
    pub self_consistency: bool,
    /// Sampling temperature for Generation/Refinement (paper: 0.7).
    pub temperature: f64,
    /// Similarity threshold for value retrieval (paper: 0.65).
    pub retrieval_threshold: f32,
    /// Top-K values retrieved per entity.
    pub retrieval_top_k: usize,
    /// Maximum correction rounds per candidate.
    pub max_correction_rounds: usize,
    /// Worker threads for candidate refinement (1 = sequential). Purely a
    /// throughput knob: results are ordered by candidate index and ledgers
    /// merged deterministically, so every report field is identical to the
    /// sequential path.
    #[serde(default = "default_refine_threads")]
    pub refine_threads: usize,
    /// Gate candidate execution on the static analyzer: when analysis
    /// proves the exact error a candidate must fail with, skip the
    /// execution and feed the richer diagnostic to correction instead.
    #[serde(default = "default_true")]
    pub analyze_gate: bool,
}

fn default_true() -> bool {
    true
}

fn default_refine_threads() -> usize {
    1
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            extraction: true,
            values_retrieval: true,
            column_filtering: true,
            table_level_linking: false,
            info_alignment: true,
            gen_fewshot: FewshotMode::QueryCotSql,
            fewshot_k: 5,
            cot: CotMode::Structured,
            alignments: true,
            refinement: true,
            correction: true,
            refine_fewshot: true,
            n_candidates: 21,
            self_consistency: true,
            temperature: 0.7,
            retrieval_threshold: 0.65,
            retrieval_top_k: 5,
            max_correction_rounds: 2,
            refine_threads: default_refine_threads(),
            analyze_gate: default_true(),
        }
    }
}

impl PipelineConfig {
    /// The paper's full configuration.
    pub fn full() -> Self {
        Self::default()
    }

    /// A light configuration for unit tests (few candidates).
    pub fn fast() -> Self {
        PipelineConfig { n_candidates: 3, ..Self::default() }
    }

    /// Disable the pre-execution static-analysis gate (ablation).
    pub fn without_analyze_gate(mut self) -> Self {
        self.analyze_gate = false;
        self
    }

    /// Drop the whole Extraction stage (Table 4 row 2).
    pub fn without_extraction(mut self) -> Self {
        self.extraction = false;
        self.values_retrieval = false;
        self.column_filtering = false;
        self
    }

    /// Drop values retrieval only.
    pub fn without_values_retrieval(mut self) -> Self {
        self.values_retrieval = false;
        self
    }

    /// Drop column filtering only.
    pub fn without_column_filtering(mut self) -> Self {
        self.column_filtering = false;
        self
    }

    /// Drop Info Alignment.
    pub fn without_info_alignment(mut self) -> Self {
        self.info_alignment = false;
        self
    }

    /// Drop generation few-shot.
    pub fn without_gen_fewshot(mut self) -> Self {
        self.gen_fewshot = FewshotMode::None;
        self
    }

    /// Drop CoT.
    pub fn without_cot(mut self) -> Self {
        self.cot = CotMode::None;
        self
    }

    /// Drop post-generation alignments.
    pub fn without_alignments(mut self) -> Self {
        self.alignments = false;
        self
    }

    /// Drop the whole Refinement stage (correction *and* vote; the final
    /// SQL is the first aligned candidate, so EX equals EX_R).
    pub fn without_refinement(mut self) -> Self {
        self.refinement = false;
        self.correction = false;
        self.self_consistency = false;
        self.n_candidates = 1;
        self
    }

    /// Drop correction only.
    pub fn without_correction(mut self) -> Self {
        self.correction = false;
        self
    }

    /// Drop the refinement few-shot only.
    pub fn without_refine_fewshot(mut self) -> Self {
        self.refine_fewshot = false;
        self
    }

    /// Drop self-consistency & vote (single candidate).
    pub fn without_self_consistency(mut self) -> Self {
        self.self_consistency = false;
        self.n_candidates = 1;
        self
    }

    /// Refine candidates on `n` worker threads (answers are unchanged).
    pub fn with_refine_threads(mut self, n: usize) -> Self {
        self.refine_threads = n.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_pipeline() {
        let c = PipelineConfig::default();
        assert!(c.extraction && c.alignments && c.refinement && c.self_consistency);
        assert_eq!(c.n_candidates, 21);
        assert_eq!(c.gen_fewshot, FewshotMode::QueryCotSql);
        assert_eq!(c.cot, CotMode::Structured);
        assert!((c.temperature - 0.7).abs() < f64::EPSILON);
        assert!((c.retrieval_threshold - 0.65).abs() < f32::EPSILON);
    }

    #[test]
    fn ablation_builders_flip_one_axis() {
        let c = PipelineConfig::full().without_extraction();
        assert!(!c.extraction && !c.values_retrieval && !c.column_filtering);
        assert!(c.alignments, "other modules untouched");

        let c = PipelineConfig::full().without_self_consistency();
        assert_eq!(c.n_candidates, 1);
        assert!(!c.self_consistency);

        let c = PipelineConfig::full().without_cot();
        assert_eq!(c.cot, CotMode::None);
        assert_eq!(c.gen_fewshot, FewshotMode::QueryCotSql);
    }

    #[test]
    fn refine_threads_defaults_to_sequential() {
        assert_eq!(PipelineConfig::full().refine_threads, 1);
        assert_eq!(default_refine_threads(), 1, "missing field deserializes to sequential");
        assert_eq!(PipelineConfig::full().with_refine_threads(0).refine_threads, 1, "clamped");
        assert_eq!(PipelineConfig::full().with_refine_threads(8).refine_threads, 8);
    }
}
