//! The Refinement stage (paper §3.6, Figure 2): execution-guided
//! correction followed by self-consistency & vote.
//!
//! The vote implements the paper's Eq. 3 exactly: among candidates whose
//! execution succeeded with a non-empty answer, pick the most frequent
//! answer; within that answer class, pick the SQL with the lowest
//! execution cost (which is also why the method wins on R-VES).

use crate::alignment::align_candidate;
use crate::config::PipelineConfig;
use crate::cost::{CostLedger, Module};
use crate::extraction::{evidence_line, values_block, ExtractionOutput};
use crate::preprocess::Preprocessed;
use crate::retrieval::ValueHit;
use llmsim::proto;
use llmsim::{ChatRequest, LanguageModel};
use osql_trace::active;
use sqlkit::{parse_select, ResultSet, SqlError};
use std::collections::HashMap;
use std::time::Instant;

/// A candidate after refinement.
#[derive(Debug, Clone)]
pub struct RefinedCandidate {
    /// SQL as generated (pre-alignment).
    pub raw_sql: String,
    /// SQL after alignments and correction rounds.
    pub sql: String,
    /// Execution result of `sql`.
    pub result: Result<ResultSet, SqlError>,
    /// Deterministic execution-cost proxy (rows visited).
    pub exec_cost: u64,
    /// Measured execution time in milliseconds.
    pub exec_ms: f64,
    /// Number of correction rounds spent.
    pub correction_rounds: usize,
    /// Executions skipped because the static analyzer proved the exact
    /// error in advance (the pre-execution gate).
    pub analyze_skips: usize,
}

impl RefinedCandidate {
    /// Did execution succeed with a non-empty answer?
    pub fn is_valid(&self) -> bool {
        matches!(&self.result, Ok(rs) if !rs.is_effectively_empty())
    }

    /// One-word-ish execution outcome: `empty`, `N row(s)`, or
    /// `error: …` — the vocabulary shared by trace labels and
    /// [`crate::PipelineRun::explain`].
    pub fn outcome_label(&self) -> String {
        match &self.result {
            Ok(rs) if rs.is_effectively_empty() => "empty".to_owned(),
            Ok(rs) => format!("{} row(s)", rs.rows.len()),
            Err(e) => format!("error: {e}"),
        }
    }
}

/// Fraction of the beam agreeing with the winner — the *margin* of the
/// vote. When the winner executed to a non-empty answer, agreement means
/// the same normalised answer (the vote's own grouping, Eq. 3); when the
/// vote fell back to an invalid winner, agreement degrades to SQL-string
/// equality. This is the single formula behind both the trace's `vote`
/// event and the runtime's `vote_margin` histogram.
pub fn vote_margin(candidates: &[RefinedCandidate], winner: usize) -> f64 {
    if candidates.len() < 2 {
        return 1.0;
    }
    let Some(w) = candidates.get(winner) else {
        return 0.0;
    };
    let agreeing = match &w.result {
        Ok(wrs) if w.is_valid() => {
            let target = wrs.normalized_rows();
            candidates
                .iter()
                .filter(|c| {
                    c.is_valid()
                        && matches!(&c.result, Ok(rs) if rs.normalized_rows() == target)
                })
                .count()
        }
        _ => candidates.iter().filter(|c| c.sql == w.sql).count(),
    };
    agreeing as f64 / candidates.len() as f64
}

/// Execute a SQL string against a database, returning result + costs.
///
/// Goes through the process-wide [`sqlkit::plan_cache`]: the refine →
/// execute → correct loop, the vote tie-break, and eval's repeated
/// gold-SQL executions re-run the same statements constantly, so each one
/// is parsed and bound once and then served from the cache. Cached plans
/// carry a lowered physical form where the planner could prove
/// equivalence, so hot statements run on the pipelined executor (index
/// scans and index joins on declared indexes) and only fall back to the
/// legacy interpreter when lowering declined or an index was unusable.
pub fn execute(db: &sqlkit::Database, sql: &str) -> (Result<ResultSet, SqlError>, u64, f64) {
    let t0 = Instant::now();
    match sqlkit::plan_cache().execute(db, sql) {
        Ok((rs, stats)) => (Ok(rs), stats.rows_scanned, t0.elapsed().as_secs_f64() * 1e3),
        Err(e) => (Err(e), 0, t0.elapsed().as_secs_f64() * 1e3),
    }
}

/// What one gated execution attempt produced.
struct GateOutcome {
    result: Result<ResultSet, SqlError>,
    cost: u64,
    ms: f64,
    /// Rendered analyzer findings (quote-sanitised for prompt embedding).
    note: Option<String>,
    /// Execution was skipped: the analyzer proved the error.
    skipped: bool,
}

/// Run the statement through the static analyzer, then execute — unless
/// the analyzer *proved* the exact error the execution must fail with, in
/// which case the prediction substitutes for the execution byte-for-byte.
fn analyze_and_execute(
    db: &sqlkit::Database,
    sql: &str,
    config: &PipelineConfig,
    ledger: &mut CostLedger,
) -> GateOutcome {
    if !config.analyze_gate {
        let (result, cost, ms) = execute(db, sql);
        return GateOutcome { result, cost, ms, note: None, skipped: false };
    }
    let t0 = Instant::now();
    let analysis = sqlkit::analyze_sql(&db.schema, sql);
    let analyze_ms = t0.elapsed().as_secs_f64() * 1e3;
    ledger.charge(Module::Analyze, analyze_ms, 0);
    let diags = analysis.diagnostics.len();
    // Single quotes are scrubbed so the note cannot inject new string
    // literals into the correction prompt (the simulated model mines the
    // prompt for quoted values; the SQL itself is already there verbatim).
    let note = (diags > 0).then(|| analysis.rendered(sql).replace('\'', "`"));
    let verdict = if analysis.certain_error.is_some() {
        "reject"
    } else if diags > 0 {
        "flagged"
    } else {
        "clean"
    };
    active::event_timed(
        "analyze_gate",
        &[("verdict", verdict), ("diags", &diags.to_string())],
        &[("analyze_ms", analyze_ms)],
    );
    if let Some(err) = analysis.certain_error {
        return GateOutcome { result: Err(err), cost: 0, ms: 0.0, note, skipped: true };
    }
    let (result, cost, ms) = execute(db, sql);
    GateOutcome { result, cost, ms, note, skipped: false }
}

/// Refine one candidate: align → execute → correct (bounded rounds).
#[allow(clippy::too_many_arguments)]
pub fn refine_candidate(
    pre: &Preprocessed,
    llm: &dyn LanguageModel,
    config: &PipelineConfig,
    db_id: &str,
    question: &str,
    evidence: &str,
    extraction: &ExtractionOutput,
    raw_sql: &str,
    raw_text: Option<&str>,
    candidate_idx: usize,
    ledger: &mut CostLedger,
) -> RefinedCandidate {
    let db = pre.db(db_id).expect("refinement runs on known databases");
    let assets = pre.assets(db_id).expect("assets exist for known databases");
    let span = active::start("candidate");
    active::label(span, "idx", &candidate_idx.to_string());

    // SQL-Like fallback: when the final SQL is malformed but the CoT's
    // intermediate representation parses, reconstruct the SQL from the
    // logic (§3.5) — repairs syntax-class hallucinations without an LLM
    // round trip.
    let mut effective_sql = raw_sql.to_owned();
    if config.alignments && parse_select(raw_sql).is_err() {
        if let Some(line) =
            raw_text.and_then(|t| llmsim::proto::parse_field(t, "SQL-like"))
        {
            let t0 = std::time::Instant::now();
            let recovered = crate::sqllike::recover_sql(line, &db.database.schema);
            active::event(
                "sqllike_fallback",
                &[("recovered", if recovered.is_ok() { "true" } else { "false" })],
            );
            if let Ok(sql) = recovered {
                effective_sql = sql;
            }
            ledger.charge(Module::StyleAlign, t0.elapsed().as_secs_f64() * 1e3, 0);
        }
    }

    // Alignment is skipped on unparseable SQL; surface *why* (the parse
    // diagnostic) into the correction prompt rather than dropping it —
    // Correction still owns the repair.
    let mut align_note: Option<String> = None;
    let mut sql = if config.alignments {
        let aligned = align_candidate(
            &effective_sql,
            &db.database.schema,
            &assets.values,
            extraction.expected_select,
            ledger,
        );
        align_note = aligned
            .parse_diagnostic
            .as_ref()
            .map(|d| format!("alignment skipped: {}", d.headline()).replace('\'', "`"));
        aligned.sql
    } else {
        effective_sql
    };

    let gate = analyze_and_execute(&db.database, &sql, config, ledger);
    let (mut result, mut cost, mut ms) = (gate.result, gate.cost, gate.ms);
    let mut note = gate.note;
    let mut skips = gate.skipped as usize;
    let mut rounds = 0usize;

    if config.refinement && config.correction {
        while rounds < config.max_correction_rounds {
            let needs_fix = match &result {
                Err(_) => true,
                Ok(rs) => rs.is_effectively_empty(),
            };
            if !needs_fix {
                break;
            }
            rounds += 1;
            let error_text = match &result {
                Err(e) => e.to_string(),
                Ok(_) => "Result: None".to_owned(),
            };
            let kind = match &result {
                Err(e) => e.kind(),
                Ok(_) => sqlkit::SqlErrorKind::Other,
            };
            let round_span = active::start("correction_round");
            active::label(round_span, "attempt", &rounds.to_string());
            active::label(round_span, "error_kind", &format!("{kind:?}"));
            let full_note = match (&align_note, &note) {
                (Some(a), Some(n)) => Some(format!("{a}\n{n}")),
                (Some(a), None) => Some(a.clone()),
                (None, n) => n.clone(),
            };
            let prompt = build_correction_prompt(
                pre, config, db_id, question, evidence, extraction, &sql, &error_text, kind,
                full_note.as_deref(),
            );
            let resp = llm.complete(&ChatRequest {
                prompt,
                temperature: config.temperature,
                n: 1,
                seed_tag: 0xC0DE + (candidate_idx as u64) * 31 + rounds as u64,
            });
            ledger.charge(
                Module::Correction,
                resp.latency_ms,
                (resp.prompt_tokens + resp.completion_tokens) as u64,
            );
            let Some(fixed) = resp
                .texts
                .first()
                .and_then(|t| proto::parse_sql_from_response(t))
                .map(str::to_owned)
            else {
                active::label(round_span, "correction", "none");
                active::end(round_span);
                break;
            };
            active::label(round_span, "correction", "applied");
            sql = if config.alignments {
                let aligned = align_candidate(
                    &fixed,
                    &db.database.schema,
                    &assets.values,
                    extraction.expected_select,
                    ledger,
                );
                align_note = aligned
                    .parse_diagnostic
                    .as_ref()
                    .map(|d| format!("alignment skipped: {}", d.headline()).replace('\'', "`"));
                aligned.sql
            } else {
                align_note = None;
                fixed
            };
            let gate = analyze_and_execute(&db.database, &sql, config, ledger);
            result = gate.result;
            cost = gate.cost;
            ms = gate.ms;
            note = gate.note;
            skips += gate.skipped as usize;
            active::end(round_span);
        }
    }

    let refined = RefinedCandidate {
        raw_sql: raw_sql.to_owned(),
        sql,
        result,
        exec_cost: cost,
        exec_ms: ms,
        correction_rounds: rounds,
        analyze_skips: skips,
    };
    active::label(span, "sql", &refined.sql);
    if refined.sql != refined.raw_sql {
        active::label(span, "raw", &refined.raw_sql);
    }
    active::label(span, "outcome", &refined.outcome_label());
    active::label(span, "cost", &refined.exec_cost.to_string());
    active::label(span, "rounds", &refined.correction_rounds.to_string());
    active::end(span);
    refined
}

/// Build a correction prompt (Listing 3 shape): error few-shot for the
/// error type, schema, per-column candidate values, the broken SQL and the
/// error description.
#[allow(clippy::too_many_arguments)]
fn build_correction_prompt(
    pre: &Preprocessed,
    config: &PipelineConfig,
    db_id: &str,
    question: &str,
    evidence: &str,
    extraction: &ExtractionOutput,
    broken_sql: &str,
    error_text: &str,
    kind: sqlkit::SqlErrorKind,
    analysis_note: Option<&str>,
) -> String {
    let db = pre.db(db_id).expect("known db");
    let assets = pre.assets(db_id).expect("known db");
    let schema_text = db.database.schema.describe(extraction.subset.as_ref());

    // value context: retrieval hits plus stored values near each text
    // literal of the broken SQL
    let mut hits: Vec<ValueHit> = extraction.value_hits.clone();
    if let Ok(stmt) = parse_select(broken_sql) {
        let mut literals: Vec<String> = Vec::new();
        let mut stmt = stmt;
        stmt.walk_exprs_mut(&mut |e| {
            if let sqlkit::Expr::Literal(sqlkit::Value::Text(t)) = e {
                if t.chars().any(|c| c.is_alphabetic()) {
                    literals.push(t.clone());
                }
            }
        });
        for lit in literals {
            for hit in assets.values.retrieve(&lit, 3, 0.4) {
                if !hits
                    .iter()
                    .any(|h| h.table == hit.table && h.column == hit.column && h.stored == hit.stored)
                {
                    hits.push(hit);
                }
            }
        }
    }

    let fewshot = if config.refine_fewshot {
        format!("{}\n{}", proto::FEWSHOT_HEADER, crate::fewshot::correction_shot(kind))
    } else {
        String::new()
    };

    // The analyzer note rides along as comment lines: spans and
    // did-you-mean hints for the model, invisible to the prompt's
    // field parsers (every line starts with `-- `).
    let note_block = match analysis_note {
        Some(n) if !n.is_empty() => {
            let body = n.lines().map(|l| format!("-- {l}")).collect::<Vec<_>>().join("\n");
            format!("-- Static analysis of the SQL above:\n{body}\n")
        }
        _ => String::new(),
    };

    format!(
        "{} {}\n{} {}\n{}\n{}\n{}{}\n{} {}\n{} {}\n{}{}\n/* Answer the following: {} */\n",
        proto::TASK_PREFIX,
        proto::TASK_CORRECTION,
        proto::DB_PREFIX,
        db_id,
        proto::SCHEMA_HEADER,
        schema_text,
        values_block(&hits),
        fewshot,
        proto::ERROR_SQL_PREFIX,
        broken_sql,
        proto::ERROR_INFO_PREFIX,
        error_text,
        note_block,
        evidence_line(evidence),
        question
    )
}

/// Self-consistency & vote (paper Eq. 3). Returns the index of the chosen
/// candidate.
pub fn vote(candidates: &[RefinedCandidate], ledger: &mut CostLedger) -> usize {
    let t0 = Instant::now();
    let mut groups: HashMap<Vec<Vec<sqlkit::NormValue>>, Vec<usize>> = HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        if c.is_valid() {
            if let Ok(rs) = &c.result {
                groups.entry(rs.normalized_rows()).or_default().push(i);
            }
        }
    }
    let winner = groups
        .values()
        .max_by_key(|idxs| {
            // most frequent answer; deterministic tie-break on earliest index
            (idxs.len(), std::cmp::Reverse(idxs[0]))
        })
        .map(|idxs| {
            // within the winning answer, cheapest execution
            *idxs
                .iter()
                .min_by_key(|&&i| (candidates[i].exec_cost, i))
                .expect("winning group is non-empty")
        });
    ledger.charge(Module::Vote, t0.elapsed().as_secs_f64() * 1e3, 0);
    let (chosen, path) = match winner {
        Some(i) => (i, "majority"),
        None => {
            // no valid candidate: prefer any that executed, else 0
            match candidates.iter().position(|c| c.result.is_ok()) {
                Some(i) => (i, "fallback-executed"),
                None => (0, "fallback-first"),
            }
        }
    };
    active::event(
        "vote",
        &[
            ("candidates", &candidates.len().to_string()),
            ("winner", &chosen.to_string()),
            ("path", path),
            ("margin", &format!("{:.4}", vote_margin(candidates, chosen))),
        ],
    );
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::Value;

    fn cand(sql: &str, rows: Vec<Vec<Value>>, cost: u64) -> RefinedCandidate {
        RefinedCandidate {
            raw_sql: sql.to_owned(),
            sql: sql.to_owned(),
            result: Ok(ResultSet { columns: vec!["x".into()], rows }),
            exec_cost: cost,
            exec_ms: 0.1,
            correction_rounds: 0,
            analyze_skips: 0,
        }
    }

    fn bad(sql: &str) -> RefinedCandidate {
        RefinedCandidate {
            raw_sql: sql.to_owned(),
            sql: sql.to_owned(),
            result: Err(SqlError::NoSuchColumn("x".into())),
            exec_cost: 0,
            exec_ms: 0.1,
            correction_rounds: 1,
            analyze_skips: 0,
        }
    }

    #[test]
    fn vote_picks_majority_answer() {
        let mut ledger = CostLedger::new();
        let cands = vec![
            cand("a", vec![vec![Value::Int(1)]], 10),
            cand("b", vec![vec![Value::Int(2)]], 5),
            cand("c", vec![vec![Value::Int(1)]], 8),
            cand("d", vec![vec![Value::Int(1)]], 20),
        ];
        let w = vote(&cands, &mut ledger);
        // answer 1 wins (3 votes); cheapest among {a, c, d} is c (cost 8)
        assert_eq!(w, 2);
        assert_eq!(ledger.get(Module::Vote).calls, 1);
    }

    #[test]
    fn vote_excludes_empty_and_errors() {
        let mut ledger = CostLedger::new();
        let cands = vec![
            bad("e1"),
            cand("empty", vec![], 1),
            cand("ok", vec![vec![Value::Int(9)]], 99),
            bad("e2"),
        ];
        assert_eq!(vote(&cands, &mut ledger), 2);
    }

    #[test]
    fn vote_falls_back_when_nothing_valid() {
        let mut ledger = CostLedger::new();
        let cands = vec![bad("e1"), cand("empty", vec![], 1)];
        assert_eq!(vote(&cands, &mut ledger), 1, "prefers executable empty over error");
        let cands = vec![bad("e1"), bad("e2")];
        assert_eq!(vote(&cands, &mut ledger), 0);
    }

    #[test]
    fn answers_compare_normalized() {
        let mut ledger = CostLedger::new();
        // 1 and 1.0 are the same answer (Python-scorer equivalence)
        let cands = vec![
            cand("a", vec![vec![Value::Int(1)]], 10),
            cand("b", vec![vec![Value::Real(1.0)]], 3),
            cand("c", vec![vec![Value::Int(2)]], 1),
        ];
        let w = vote(&cands, &mut ledger);
        assert_eq!(w, 1, "1 == 1.0 group wins, cheaper member selected");
    }
}
