//! The Generation stage (paper §3.5): progressive (structured-CoT)
//! generation with dynamic few-shot, producing a beam of candidate SQLs.

use crate::config::{CotMode, PipelineConfig};
use crate::cost::{CostLedger, Module};
use crate::extraction::{evidence_line, values_block, ExtractionOutput};
use crate::preprocess::Preprocessed;
use llmsim::proto;
use llmsim::{ChatRequest, LanguageModel};

/// Output of Generation: raw candidate SQL strings (one per beam sample).
#[derive(Debug, Clone)]
pub struct GenerationOutput {
    /// Parsed SQL per candidate.
    pub candidates: Vec<String>,
    /// Full response texts (CoT fields kept for diagnostics).
    pub raw_texts: Vec<String>,
}

/// Build the generation prompt for a question.
pub fn build_generation_prompt(
    pre: &Preprocessed,
    config: &PipelineConfig,
    db_id: &str,
    question: &str,
    evidence: &str,
    extraction: &ExtractionOutput,
) -> String {
    let schema_text = pre
        .db(db_id)
        .map(|db| db.database.schema.describe(extraction.subset.as_ref()))
        .unwrap_or_default();
    let format_line = match config.cot {
        CotMode::Structured => proto::FORMAT_STRUCTURED_COT,
        CotMode::Unstructured => proto::FORMAT_UNSTRUCTURED_COT,
        CotMode::None => proto::FORMAT_SQL_ONLY,
    };
    let fewshots =
        pre.fewshot.render_block(question, config.fewshot_k, config.gen_fewshot);
    format!(
        "{} {}\n{} {}\n{}\n{}\n{}{}\n{}\n{}\n/* Answer the following: {} */\n",
        proto::TASK_PREFIX,
        proto::TASK_GENERATION,
        proto::DB_PREFIX,
        db_id,
        proto::SCHEMA_HEADER,
        schema_text,
        values_block(&extraction.value_hits),
        fewshots,
        format_line,
        evidence_line(evidence),
        question
    )
}

/// Run Generation: one prompt, `n_candidates` beam samples.
#[allow(clippy::too_many_arguments)]
pub fn run_generation(
    pre: &Preprocessed,
    llm: &dyn LanguageModel,
    config: &PipelineConfig,
    db_id: &str,
    question: &str,
    evidence: &str,
    extraction: &ExtractionOutput,
    ledger: &mut CostLedger,
) -> GenerationOutput {
    let prompt = build_generation_prompt(pre, config, db_id, question, evidence, extraction);
    const GEN_SEED_TAG: u64 = 0x6E47;
    let resp = llm.complete(&ChatRequest {
        prompt,
        temperature: config.temperature,
        n: config.n_candidates.max(1),
        seed_tag: GEN_SEED_TAG,
    });
    ledger.charge(
        Module::Generation,
        resp.latency_ms,
        (resp.prompt_tokens + resp.completion_tokens) as u64,
    );
    let candidates = resp
        .texts
        .iter()
        .map(|t| {
            proto::parse_sql_from_response(t)
                .unwrap_or(t.as_str())
                .trim()
                .to_owned()
        })
        .collect();
    GenerationOutput { candidates, raw_texts: resp.texts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::run_extraction;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};
    use std::sync::Arc;

    fn fixture() -> (Preprocessed, SimLlm) {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = SimLlm::new(oracle.clone(), ModelProfile::gpt_4o(), 4);
        let pre = Preprocessed::run(bench, &llm);
        (pre, llm)
    }

    #[test]
    fn prompt_carries_all_blocks() {
        let (pre, llm) = fixture();
        let config = PipelineConfig::fast();
        let ex = pre.benchmark.dev[0].clone();
        let mut ledger = CostLedger::new();
        let extraction = run_extraction(
            &pre, &llm, &config, &ex.db_id, &ex.question, &ex.evidence, &mut ledger,
        );
        let prompt =
            build_generation_prompt(&pre, &config, &ex.db_id, &ex.question, &ex.evidence, &extraction);
        assert!(prompt.contains(proto::SCHEMA_HEADER));
        assert!(prompt.contains(proto::FORMAT_STRUCTURED_COT));
        assert_eq!(proto::parse_question(&prompt), Some(ex.question.as_str()));
        assert_eq!(proto::count_fewshots(&prompt), config.fewshot_k);
        assert!(proto::fewshots_have_cot(&prompt));
    }

    #[test]
    fn generation_yields_n_candidates() {
        let (pre, llm) = fixture();
        let config = PipelineConfig::fast();
        let ex = pre.benchmark.dev[1].clone();
        let mut ledger = CostLedger::new();
        let extraction = run_extraction(
            &pre, &llm, &config, &ex.db_id, &ex.question, &ex.evidence, &mut ledger,
        );
        let gen = run_generation(
            &pre, &llm, &config, &ex.db_id, &ex.question, &ex.evidence, &extraction, &mut ledger,
        );
        assert_eq!(gen.candidates.len(), 3);
        for sql in &gen.candidates {
            assert!(sql.to_uppercase().starts_with("SELECT"), "{sql}");
        }
        assert!(ledger.get(Module::Generation).tokens > 0);
    }

    #[test]
    fn subset_schema_shrinks_prompt() {
        let (pre, llm) = fixture();
        let full_cfg = PipelineConfig::fast().without_extraction();
        let filt_cfg = PipelineConfig::fast();
        let ex = pre.benchmark.dev[2].clone();
        let mut ledger = CostLedger::new();
        let e_full = run_extraction(
            &pre, &llm, &full_cfg, &ex.db_id, &ex.question, &ex.evidence, &mut ledger,
        );
        let e_filt = run_extraction(
            &pre, &llm, &filt_cfg, &ex.db_id, &ex.question, &ex.evidence, &mut ledger,
        );
        let p_full =
            build_generation_prompt(&pre, &full_cfg, &ex.db_id, &ex.question, &ex.evidence, &e_full);
        let p_filt =
            build_generation_prompt(&pre, &filt_cfg, &ex.db_id, &ex.question, &ex.evidence, &e_filt);
        let full_cols = proto::parse_schema_columns(&p_full).len();
        let filt_cols = proto::parse_schema_columns(&p_filt).len();
        assert!(filt_cols > 0 && filt_cols <= full_cols, "{filt_cols} vs {full_cols}");
    }
}
