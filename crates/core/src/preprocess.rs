//! Preprocessing (paper §3.3): NLQ-independent assets built once per
//! benchmark — per-database vector indexes over stored string values and
//! column descriptors, the database schema texts, and the self-taught
//! Query-CoT-SQL few-shot library.

use crate::fewshot::FewshotLibrary;
use crate::retrieval::{ColumnIndex, ValueIndex};
use datagen::Benchmark;
use llmsim::LanguageModel;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-database preprocessed assets.
pub struct DbAssets {
    /// Value vector index (string values only).
    pub values: ValueIndex,
    /// Column descriptor index.
    pub columns: ColumnIndex,
}

/// All preprocessed assets for a benchmark.
pub struct Preprocessed {
    /// The benchmark (databases + splits).
    pub benchmark: Arc<Benchmark>,
    /// Per-database indexes, keyed by db id.
    pub db_assets: HashMap<String, DbAssets>,
    /// The self-taught few-shot library.
    pub fewshot: FewshotLibrary,
    /// LLM tokens spent building the few-shot library.
    pub build_tokens: u64,
}

impl Preprocessed {
    /// Run preprocessing: index every database and self-teach the few-shot
    /// library over the train split.
    pub fn run(benchmark: Arc<Benchmark>, llm: &dyn LanguageModel) -> Self {
        let mut db_assets = HashMap::with_capacity(benchmark.dbs.len());
        for db in &benchmark.dbs {
            db_assets.insert(
                db.id.clone(),
                DbAssets { values: ValueIndex::build(db), columns: ColumnIndex::build(db) },
            );
        }
        let (fewshot, build_tokens) = FewshotLibrary::build(llm, &benchmark.train);
        Preprocessed { benchmark, db_assets, fewshot, build_tokens }
    }

    /// Assets of one database.
    pub fn assets(&self, db_id: &str) -> Option<&DbAssets> {
        self.db_assets.get(db_id)
    }

    /// The built database itself.
    pub fn db(&self, db_id: &str) -> Option<&datagen::BuiltDb> {
        self.benchmark.db(db_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};

    #[test]
    fn preprocessing_builds_all_assets() {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = SimLlm::new(oracle, ModelProfile::gpt_4o(), 2);
        let pre = Preprocessed::run(bench.clone(), &llm);
        assert_eq!(pre.db_assets.len(), bench.dbs.len());
        assert_eq!(pre.fewshot.len(), bench.train.len());
        assert!(pre.build_tokens > 0);
        for db in &bench.dbs {
            let assets = pre.assets(&db.id).unwrap();
            assert!(!assets.values.is_empty());
        }
        assert!(pre.db(&bench.dbs[0].id).is_some());
        assert!(pre.assets("nope").is_none());
    }
}
