//! Preprocessing (paper §3.3): NLQ-independent assets built once per
//! benchmark — per-database vector indexes over stored string values and
//! column descriptors, the database schema texts, and the self-taught
//! Query-CoT-SQL few-shot library.

use crate::fewshot::FewshotLibrary;
use crate::retrieval::{ColumnIndex, ValueIndex};
use datagen::Benchmark;
use llmsim::LanguageModel;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-database preprocessed assets.
pub struct DbAssets {
    /// Value vector index (string values only).
    pub values: ValueIndex,
    /// Column descriptor index.
    pub columns: ColumnIndex,
}

impl DbAssets {
    /// Index one database (the per-database half of preprocessing).
    pub fn build(db: &datagen::BuiltDb) -> Self {
        DbAssets { values: ValueIndex::build(db), columns: ColumnIndex::build(db) }
    }
}

/// All preprocessed assets for a benchmark.
///
/// The few-shot library is behind an [`Arc`] so serving layers that
/// preprocess databases lazily (one [`Preprocessed`] per database via
/// [`Preprocessed::for_db`]) can share the one expensive self-taught
/// build across all of them.
pub struct Preprocessed {
    /// The benchmark (databases + splits).
    pub benchmark: Arc<Benchmark>,
    /// Per-database indexes, keyed by db id.
    pub db_assets: HashMap<String, DbAssets>,
    /// The self-taught few-shot library.
    pub fewshot: Arc<FewshotLibrary>,
    /// LLM tokens spent building the few-shot library.
    pub build_tokens: u64,
}

impl Preprocessed {
    /// Run preprocessing: index every database and self-teach the few-shot
    /// library over the train split.
    pub fn run(benchmark: Arc<Benchmark>, llm: &dyn LanguageModel) -> Self {
        let mut db_assets = HashMap::with_capacity(benchmark.dbs.len());
        for db in &benchmark.dbs {
            db_assets.insert(db.id.clone(), DbAssets::build(db));
        }
        let (fewshot, build_tokens) = FewshotLibrary::build(llm, &benchmark.train);
        Preprocessed { benchmark, db_assets, fewshot: Arc::new(fewshot), build_tokens }
    }

    /// Preprocess a *single* database, sharing an already-built few-shot
    /// library. Serving layers use this to build per-database assets on
    /// first demand instead of indexing the whole benchmark up front; the
    /// resulting assets are identical to the eager [`Preprocessed::run`]
    /// entry for that database. Returns `None` for unknown ids.
    pub fn for_db(
        benchmark: Arc<Benchmark>,
        db_id: &str,
        fewshot: Arc<FewshotLibrary>,
        build_tokens: u64,
    ) -> Option<Self> {
        let (id, assets) = {
            let db = benchmark.db(db_id)?;
            (db.id.clone(), DbAssets::build(db))
        };
        let mut db_assets = HashMap::with_capacity(1);
        db_assets.insert(id, assets);
        Some(Preprocessed { benchmark, db_assets, fewshot, build_tokens })
    }

    /// Assets of one database.
    pub fn assets(&self, db_id: &str) -> Option<&DbAssets> {
        self.db_assets.get(db_id)
    }

    /// The built database itself.
    pub fn db(&self, db_id: &str) -> Option<&datagen::BuiltDb> {
        self.benchmark.db(db_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};

    #[test]
    fn preprocessing_builds_all_assets() {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = SimLlm::new(oracle, ModelProfile::gpt_4o(), 2);
        let pre = Preprocessed::run(bench.clone(), &llm);
        assert_eq!(pre.db_assets.len(), bench.dbs.len());
        assert_eq!(pre.fewshot.len(), bench.train.len());
        assert!(pre.build_tokens > 0);
        for db in &bench.dbs {
            let assets = pre.assets(&db.id).unwrap();
            assert!(!assets.values.is_empty());
        }
        assert!(pre.db(&bench.dbs[0].id).is_some());
        assert!(pre.assets("nope").is_none());
    }

    #[test]
    fn per_db_preprocessing_matches_eager() {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = SimLlm::new(oracle, ModelProfile::gpt_4o(), 2);
        let eager = Preprocessed::run(bench.clone(), &llm);
        let db_id = bench.dbs[0].id.clone();
        let lazy = Preprocessed::for_db(
            bench.clone(),
            &db_id,
            eager.fewshot.clone(),
            eager.build_tokens,
        )
        .unwrap();
        assert_eq!(lazy.db_assets.len(), 1);
        let (a, b) = (eager.assets(&db_id).unwrap(), lazy.assets(&db_id).unwrap());
        assert_eq!(a.values.len(), b.values.len());
        assert!(lazy.assets(&bench.dbs[1].id).is_none(), "only the one db is indexed");
        assert!(Preprocessed::for_db(bench, "ghost", eager.fewshot.clone(), 0).is_none());
    }
}
