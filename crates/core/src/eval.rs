//! Evaluation: Execution Accuracy (EX) and the Reward-based Valid
//! Efficiency Score (R-VES), per BIRD's scorer, plus the staged metrics
//! (`EX_G`, `EX_R`, `EX`) the paper's ablations report.

use crate::cost::CostLedger;
use crate::pipeline::{Pipeline, PipelineRun};
use crate::refinement::execute;
use datagen::{Benchmark, Difficulty, Example};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Aggregated evaluation over a set of examples.
#[derive(Debug, Clone, Default, Serialize)]
pub struct EvalReport {
    /// Examples evaluated.
    pub n: usize,
    /// EX of the first raw generation candidate (%).
    pub ex_g: f64,
    /// EX of the first refined candidate, pre-vote (%).
    pub ex_r: f64,
    /// EX of the final voted SQL (%).
    pub ex: f64,
    /// R-VES of the final SQL (%).
    pub r_ves: f64,
    /// Final-EX correct/total per difficulty tier.
    pub by_difficulty: BTreeMap<String, (usize, usize)>,
    /// Merged per-module cost ledger across all runs.
    #[serde(skip)]
    pub ledger: CostLedger,
}

impl EvalReport {
    /// Final EX restricted to one difficulty tier (%).
    pub fn ex_of(&self, d: Difficulty) -> f64 {
        match self.by_difficulty.get(d.as_str()) {
            Some((c, t)) if *t > 0 => 100.0 * *c as f64 / *t as f64,
            _ => 0.0,
        }
    }
}

/// BIRD's R-VES reward buckets for a correct prediction, from the ratio of
/// gold execution cost to predicted execution cost.
pub fn ves_reward(time_ratio: f64) -> f64 {
    if time_ratio >= 2.0 {
        1.25
    } else if time_ratio >= 1.0 {
        1.0
    } else if time_ratio >= 0.5 {
        0.75
    } else if time_ratio >= 0.25 {
        0.5
    } else {
        0.25
    }
}

/// Anything that can answer a question against a database: the in-process
/// [`Pipeline`], or a serving layer (e.g. a worker-pool runtime) standing
/// in front of one. Evaluation is written against this trait so the same
/// scorer covers both paths.
pub trait Answerer: Sync {
    /// Answer one natural-language question.
    fn answer(&self, db_id: &str, question: &str, evidence: &str) -> PipelineRun;
}

impl Answerer for Pipeline {
    fn answer(&self, db_id: &str, question: &str, evidence: &str) -> PipelineRun {
        Pipeline::answer(self, db_id, question, evidence)
    }
}

/// Evaluate a pipeline over examples, spreading work across `threads`.
pub fn evaluate(pipeline: &Pipeline, examples: &[Example], threads: usize) -> EvalReport {
    evaluate_with(pipeline, &pipeline.preprocessed().benchmark, examples, threads)
}

/// Evaluate any [`Answerer`] over examples against a benchmark, spreading
/// work across `threads` caller-side submitter threads. All non-ledger
/// report fields are independent of `threads`: per-example scores don't
/// interact, integer tallies merge exactly, and the R-VES rewards are
/// multiples of 0.25 so their `f64` sum is order-insensitive.
pub fn evaluate_with<A: Answerer + ?Sized>(
    answerer: &A,
    benchmark: &Benchmark,
    examples: &[Example],
    threads: usize,
) -> EvalReport {
    let acc = Mutex::new(Accumulator::default());
    let threads = threads.max(1);
    let chunk = examples.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for part in examples.chunks(chunk) {
            let acc = &acc;
            scope.spawn(move || {
                let mut local = Accumulator::default();
                for ex in part {
                    score_example(answerer, benchmark, ex, &mut local);
                }
                osql_chk::lock_or_recover(acc).merge(local);
            });
        }
    });
    acc.into_inner().expect("accumulator lock").finish()
}

#[derive(Default)]
struct Accumulator {
    n: usize,
    g_correct: usize,
    r_correct: usize,
    f_correct: usize,
    ves_sum: f64,
    by_difficulty: BTreeMap<String, (usize, usize)>,
    ledger: CostLedger,
}

impl Accumulator {
    fn merge(&mut self, other: Accumulator) {
        self.n += other.n;
        self.g_correct += other.g_correct;
        self.r_correct += other.r_correct;
        self.f_correct += other.f_correct;
        self.ves_sum += other.ves_sum;
        for (k, (c, t)) in other.by_difficulty {
            let e = self.by_difficulty.entry(k).or_insert((0, 0));
            e.0 += c;
            e.1 += t;
        }
        self.ledger.merge(&other.ledger);
    }

    fn finish(self) -> EvalReport {
        let pct = |c: usize| if self.n == 0 { 0.0 } else { 100.0 * c as f64 / self.n as f64 };
        EvalReport {
            n: self.n,
            ex_g: pct(self.g_correct),
            ex_r: pct(self.r_correct),
            ex: pct(self.f_correct),
            r_ves: if self.n == 0 { 0.0 } else { 100.0 * self.ves_sum / self.n as f64 },
            by_difficulty: self.by_difficulty,
            ledger: self.ledger,
        }
    }
}

fn score_example<A: Answerer + ?Sized>(
    answerer: &A,
    benchmark: &Benchmark,
    ex: &Example,
    acc: &mut Accumulator,
) {
    let Some(db) = benchmark.db(&ex.db_id) else {
        return;
    };
    let (gold, gold_cost, _) = execute(&db.database, &ex.gold_sql);
    let Ok(gold) = gold else {
        return; // generated benchmarks guarantee this never happens
    };
    let run = answerer.answer(&ex.db_id, &ex.question, &ex.evidence);

    let is_correct = |sql: &str| -> (bool, u64) {
        match execute(&db.database, sql) {
            (Ok(rs), cost, _) => (rs.same_answer(&gold), cost),
            _ => (false, 0),
        }
    };

    acc.n += 1;
    if is_correct(&run.sql_g).0 {
        acc.g_correct += 1;
    }
    if is_correct(&run.sql_r).0 {
        acc.r_correct += 1;
    }
    let (final_ok, final_cost) = is_correct(&run.final_sql);
    if final_ok {
        acc.f_correct += 1;
        let ratio = gold_cost.max(1) as f64 / final_cost.max(1) as f64;
        // BIRD measures wall-clock, which jitters around the true ratio;
        // reproduce that with a deterministic per-example perturbation so
        // equal-cost queries spread across the 0.75/1.0/1.25 buckets the
        // way measured timings do
        let mut h = 0xcbf29ce484222325u64;
        for b in ex.question.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        let jitter = 0.9 + 0.35 * ((h >> 16) % 1000) as f64 / 1000.0;
        acc.ves_sum += ves_reward(ratio * jitter);
    }
    let tier = acc.by_difficulty.entry(ex.difficulty.as_str().to_owned()).or_insert((0, 0));
    tier.1 += 1;
    if final_ok {
        tier.0 += 1;
    }
    acc.ledger.merge(&run.ledger);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::preprocess::Preprocessed;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};
    use std::sync::Arc;

    fn pipeline(config: PipelineConfig) -> Pipeline {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), 6));
        let pre = Arc::new(Preprocessed::run(bench, llm.as_ref()));
        Pipeline::new(pre, llm, config)
    }

    #[test]
    fn ves_reward_buckets() {
        assert_eq!(ves_reward(3.0), 1.25);
        assert_eq!(ves_reward(1.5), 1.0);
        assert_eq!(ves_reward(0.7), 0.75);
        assert_eq!(ves_reward(0.3), 0.5);
        assert_eq!(ves_reward(0.1), 0.25);
    }

    #[test]
    fn evaluation_produces_ordered_stage_metrics() {
        let p = pipeline(PipelineConfig::fast());
        let dev = p.preprocessed().benchmark.dev.clone();
        let report = evaluate(&p, &dev, 4);
        assert_eq!(report.n, dev.len());
        // stages can only improve a candidate set
        assert!(report.ex >= report.ex_r - 1e-9, "{report:?}");
        assert!(report.ex > 30.0, "pipeline way off: {report:?}");
        assert!(report.r_ves > 0.0);
        let total: usize = report.by_difficulty.values().map(|(_, t)| t).sum();
        assert_eq!(total, dev.len());
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let p = pipeline(PipelineConfig::fast());
        let dev: Vec<datagen::Example> =
            p.preprocessed().benchmark.dev.iter().take(6).cloned().collect();
        let a = evaluate(&p, &dev, 1);
        let b = evaluate(&p, &dev, 3);
        assert_eq!(a.ex, b.ex);
        assert_eq!(a.ex_g, b.ex_g);
        assert_eq!(a.r_ves, b.r_ves);
    }

    #[test]
    fn empty_examples_yield_zero_report() {
        let p = pipeline(PipelineConfig::fast());
        let report = evaluate(&p, &[], 2);
        assert_eq!(report.n, 0);
        assert_eq!(report.ex, 0.0);
    }
}
