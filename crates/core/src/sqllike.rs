//! SQL-Like: the paper's intermediate language (§3.5).
//!
//! SQL-Like is "a type of SQL that ignores specific syntactical elements
//! (such as JOINs and the formatting of functions)": the model states the
//! query *logic* — what to show, which conditions, grouping, ranking —
//! with table-qualified columns, and the concrete SQL is derived by
//! inferring the join path over the schema's foreign-key graph.
//!
//! ```text
//! Show COUNT(Patient.PatientID) WHERE Laboratory.IGA > 80 AND
//!     Laboratory.IGA < 500 ORDER BY Patient.Age DESC LIMIT 1
//! ```
//!
//! Besides documenting the CoT, this module gives the pipeline a *repair
//! path*: when a candidate's final `#SQL:` line is malformed but its
//! `#SQL-like:` line parses, the concrete SQL is reconstructed from the
//! logic — fixing syntax-class hallucinations without an LLM round trip.

use sqlkit::ast::{
    BinOp, Expr, FromClause, Join, JoinKind, OrderItem, SelectCore, SelectItem, SelectStmt,
    TableRef,
};
use sqlkit::{parse_select, DbSchema, SqlError, SqlResult};

/// A parsed SQL-Like statement: query logic without join plumbing.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlLike {
    /// Projected expressions (table-qualified).
    pub select: Vec<Expr>,
    /// Conjunctive WHERE condition, if any.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT.
    pub limit: Option<u64>,
}

/// Parse a SQL-Like line (`Show ... [WHERE ...] [GROUP BY ...]
/// [ORDER BY ...] [LIMIT n]`).
///
/// The trick: SQL-Like *is* SQL minus the FROM clause, so after swapping
/// the leading `Show` for `SELECT`, the existing SQL parser does all the
/// expression work.
pub fn parse_sql_like(text: &str) -> SqlResult<SqlLike> {
    let trimmed = text.trim();
    let rest = trimmed
        .strip_prefix("Show ")
        .or_else(|| trimmed.strip_prefix("show "))
        .or_else(|| trimmed.strip_prefix("SHOW "))
        .ok_or_else(|| SqlError::Syntax { pos: 0, msg: "SQL-Like must start with Show".into() })?;
    let stmt = parse_select(&format!("SELECT {rest}"))?;
    if stmt.core.from.is_some() {
        return Err(SqlError::Syntax {
            pos: 0,
            msg: "SQL-Like must not contain a FROM clause".into(),
        });
    }
    let select = stmt
        .core
        .items
        .into_iter()
        .map(|item| match item {
            SelectItem::Expr { expr, .. } => Ok(expr),
            _ => Err(SqlError::Syntax { pos: 0, msg: "SQL-Like cannot project *".into() }),
        })
        .collect::<SqlResult<Vec<Expr>>>()?;
    let limit = match stmt.limit {
        Some(Expr::Literal(sqlkit::Value::Int(n))) if n >= 0 => Some(n as u64),
        Some(_) => {
            return Err(SqlError::Syntax { pos: 0, msg: "SQL-Like LIMIT must be a number".into() })
        }
        None => None,
    };
    Ok(SqlLike {
        select,
        where_clause: stmt.core.where_clause,
        group_by: stmt.core.group_by,
        order_by: stmt.order_by,
        limit,
    })
}

/// Every schema table referenced by qualified columns in the statement.
fn referenced_tables(like: &SqlLike, schema: &DbSchema) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut visit = |e: &Expr| {
        e.walk(&mut |node| {
            if let Expr::Column { table: Some(t), .. } = node {
                if let Some(info) = schema.table(t) {
                    if !out.iter().any(|x| x.eq_ignore_ascii_case(&info.name)) {
                        out.push(info.name.clone());
                    }
                }
            }
        });
    };
    for e in &like.select {
        visit(e);
    }
    if let Some(w) = &like.where_clause {
        visit(w);
    }
    for g in &like.group_by {
        visit(g);
    }
    for o in &like.order_by {
        visit(&o.expr);
    }
    out
}

/// Lower SQL-Like to concrete SQL: infer the join path connecting every
/// referenced table through the schema's FK graph and assemble the full
/// statement (columns stay table-qualified, so no aliases are needed).
pub fn to_sql(like: &SqlLike, schema: &DbSchema) -> SqlResult<SelectStmt> {
    let tables = referenced_tables(like, schema);
    if tables.is_empty() {
        return Err(SqlError::Other(
            "SQL-Like references no known table-qualified columns".into(),
        ));
    }

    // connect tables[1..] to the growing join set through FK paths
    let mut joined: Vec<String> = vec![tables[0].clone()];
    let mut joins: Vec<Join> = Vec::new();
    for t in &tables[1..] {
        if joined.iter().any(|j| j.eq_ignore_ascii_case(t)) {
            continue;
        }
        // shortest path from any already-joined table
        let path = joined
            .iter()
            .filter_map(|from| schema.join_path(from, t))
            .min_by_key(|p| p.len())
            .ok_or_else(|| {
                SqlError::Other(format!("no FK path connects {t} to the query's tables"))
            })?;
        for fk in path {
            // each edge introduces at most one new table
            let (new_table, on) = if joined.iter().any(|j| j.eq_ignore_ascii_case(&fk.table)) {
                (fk.ref_table.clone(), fk_condition(&fk))
            } else {
                (fk.table.clone(), fk_condition(&fk))
            };
            if !joined.iter().any(|j| j.eq_ignore_ascii_case(&new_table)) {
                joins.push(Join {
                    kind: JoinKind::Inner,
                    table: TableRef::Named { name: new_table.clone(), alias: None, span: sqlkit::Span::default() },
                    on: Some(on),
                });
                joined.push(new_table);
            }
        }
    }

    let from = FromClause {
        base: TableRef::Named { name: joined[0].clone(), alias: None, span: sqlkit::Span::default() },
        joins,
    };
    Ok(SelectStmt {
        core: SelectCore {
            distinct: false,
            items: like
                .select
                .iter()
                .map(|e| SelectItem::Expr { expr: e.clone(), alias: None })
                .collect(),
            from: Some(from),
            where_clause: like.where_clause.clone(),
            group_by: like.group_by.clone(),
            having: None,
        },
        compounds: Vec::new(),
        order_by: like.order_by.clone(),
        limit: like.limit.map(|n| Expr::lit(n as i64)),
        offset: None,
    })
}

fn fk_condition(fk: &sqlkit::ForeignKey) -> Expr {
    Expr::binary(
        Expr::qcol(fk.table.clone(), fk.column.clone()),
        BinOp::Eq,
        Expr::qcol(fk.ref_table.clone(), fk.ref_column.clone()),
    )
}

/// One-shot recovery: parse a SQL-Like line and lower it to SQL text.
pub fn recover_sql(sql_like_line: &str, schema: &DbSchema) -> SqlResult<String> {
    let like = parse_sql_like(sql_like_line)?;
    let stmt = to_sql(&like, schema)?;
    Ok(sqlkit::print_select(&stmt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{build::build_db, domain::themes, RowScale};

    fn db() -> datagen::BuiltDb {
        build_db(&themes()[0], "h", "healthcare", RowScale::tiny(), 0.0, 3)
    }

    #[test]
    fn parses_the_paper_listing_5_shape() {
        let like = parse_sql_like(
            "Show COUNT(DISTINCT Patient.PatientID) WHERE Laboratory.IGA > 80 AND \
             Laboratory.IGA < 500",
        )
        .unwrap();
        assert_eq!(like.select.len(), 1);
        assert!(like.where_clause.is_some());
        assert!(like.limit.is_none());
    }

    #[test]
    fn lowers_with_inferred_join() {
        let b = db();
        let sql = recover_sql(
            "Show COUNT(DISTINCT Patient.PatientID) WHERE Laboratory.IGA > 80",
            &b.database.schema,
        )
        .unwrap();
        assert!(
            sql.contains("INNER JOIN Laboratory ON Laboratory.PatientID = Patient.PatientID"),
            "{sql}"
        );
        b.database.query(&sql).unwrap();
    }

    #[test]
    fn lowers_three_table_chain() {
        let b = db();
        let sql = recover_sql(
            "Show Patient.Name WHERE Laboratory.IGA > 10 AND Treatment.Cost > 1",
            &b.database.schema,
        )
        .unwrap();
        assert!(sql.contains("INNER JOIN Laboratory"), "{sql}");
        assert!(sql.contains("INNER JOIN Treatment"), "{sql}");
        b.database.query(&sql).unwrap();
    }

    #[test]
    fn keeps_group_order_limit() {
        let b = db();
        let sql = recover_sql(
            "Show Patient.City, COUNT(*) GROUP BY Patient.City ORDER BY COUNT(*) DESC LIMIT 1",
            &b.database.schema,
        )
        .unwrap();
        assert!(sql.contains("GROUP BY Patient.City"), "{sql}");
        assert!(sql.ends_with("LIMIT 1"), "{sql}");
        let rs = b.database.query(&sql).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn single_table_needs_no_join() {
        let b = db();
        let sql = recover_sql("Show Patient.Name WHERE Patient.Age > 30", &b.database.schema)
            .unwrap();
        assert!(!sql.contains("JOIN"), "{sql}");
        b.database.query(&sql).unwrap();
    }

    #[test]
    fn rejects_malformed_input() {
        let b = db();
        assert!(parse_sql_like("SELECT x FROM t").is_err(), "must start with Show");
        assert!(parse_sql_like("Show ???").is_err());
        assert!(
            recover_sql("Show unqualified_column", &b.database.schema).is_err(),
            "no known table"
        );
        // disconnected tables (no FK path) fail loudly
        let mut schema = b.database.schema.clone();
        schema.foreign_keys.clear();
        assert!(recover_sql(
            "Show Patient.Name WHERE Laboratory.IGA > 1",
            &schema
        )
        .is_err());
    }

    #[test]
    fn sim_rendered_sql_like_round_trips() {
        // the simulated model's SQL-Like lines must be recoverable
        let b = db();
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        let mut checked = 0;
        for difficulty in datagen::Difficulty::all() {
            for _ in 0..10 {
                let Some(spec) = datagen::generator::sample_spec(&b, difficulty, &mut rng)
                else {
                    continue;
                };
                if spec.select.iter().any(|s| {
                    matches!(s, datagen::SelectSpec::Agg { column: None, .. })
                }) && spec.group_by.is_some()
                {
                    // COUNT(*) + GROUP BY renders fine; nothing to skip
                }
                let line = llmsim::render_sql_like(&spec);
                let recovered = recover_sql(&line, &b.database.schema);
                if let Ok(sql) = recovered {
                    b.database
                        .query(&sql)
                        .unwrap_or_else(|e| panic!("recovered SQL broken: {e}: {sql}"));
                    checked += 1;
                }
            }
        }
        assert!(checked >= 20, "recovered {checked} SQL-Like lines");
    }
}
