//! # opensearch-sql — Text-to-SQL with dynamic few-shot and consistency alignment
//!
//! A from-scratch Rust reproduction of **OpenSearch-SQL** (SIGMOD 2025):
//! a four-stage multi-agent Text-to-SQL pipeline —
//! **Preprocessing → Extraction → Generation → Refinement** — threaded
//! with a consistency-**Alignment** module, driven by self-taught
//! Query-CoT-SQL few-shots selected by masked-question similarity, a
//! SQL-Like intermediate representation inside a structured CoT, and a
//! self-consistency & vote rule over a beam of candidates (paper Eq. 3).
//!
//! The pipeline is generic over any [`llmsim::LanguageModel`]; this
//! workspace ships a deterministic simulated model. See the repository's
//! `examples/` for end-to-end usage:
//!
//! ```
//! use std::sync::Arc;
//! use opensearch_sql::{Pipeline, PipelineConfig, Preprocessed};
//! use llmsim::{ModelProfile, Oracle, SimLlm};
//!
//! let bench = Arc::new(datagen::generate(&datagen::Profile::tiny()));
//! let llm = Arc::new(SimLlm::new(
//!     Arc::new(Oracle::new(bench.clone())),
//!     ModelProfile::gpt_4o(),
//!     7,
//! ));
//! let pre = Arc::new(Preprocessed::run(bench.clone(), llm.as_ref()));
//! let pipeline = Pipeline::new(pre, llm, PipelineConfig::fast());
//!
//! let ex = &bench.dev[0];
//! let (run, result) = pipeline.query(&ex.db_id, &ex.question, &ex.evidence);
//! assert!(run.final_sql.to_uppercase().starts_with("SELECT"));
//! assert!(result.is_ok());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod alignment;
pub mod config;
pub mod cost;
pub mod eval;
pub mod extraction;
pub mod fewshot;
pub mod generation;
pub mod pipeline;
pub mod preprocess;
pub mod refinement;
pub mod retrieval;
pub mod sqllike;

pub use alignment::{align_candidate, Aligned};
pub use config::{CotMode, FewshotMode, PipelineConfig};
pub use cost::{CostLedger, Module, ModuleCost};
pub use eval::{evaluate, evaluate_with, ves_reward, Answerer, EvalReport};
pub use extraction::ExtractionOutput;
pub use fewshot::FewshotLibrary;
pub use pipeline::{Pipeline, PipelineRun};
pub use preprocess::Preprocessed;
pub use refinement::{vote_margin, RefinedCandidate};
pub use retrieval::{ColumnIndex, ValueHit, ValueIndex};
pub use sqllike::{parse_sql_like, recover_sql, SqlLike};
