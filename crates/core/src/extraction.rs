//! The Extraction stage (paper §3.4): entity extraction, value retrieval,
//! column filtering, and Info Alignment.

use crate::config::PipelineConfig;
use crate::cost::{CostLedger, Module};
use crate::preprocess::Preprocessed;
use crate::retrieval::ValueHit;
use llmsim::proto;
use llmsim::{ChatRequest, LanguageModel};
use sqlkit::SchemaSubset;
use std::time::Instant;

/// Everything Extraction hands to Generation.
#[derive(Debug, Default)]
pub struct ExtractionOutput {
    /// Selected schema subset (`None` = use the full schema).
    pub subset: Option<SchemaSubset>,
    /// Retrieved similar values.
    pub value_hits: Vec<ValueHit>,
    /// Entity mentions extracted from the question.
    pub entities: Vec<String>,
    /// Expected number of SELECT items (from SELECT-style alignment).
    pub expected_select: Option<usize>,
}

/// Run the Extraction stage.
pub fn run_extraction(
    pre: &Preprocessed,
    llm: &dyn LanguageModel,
    config: &PipelineConfig,
    db_id: &str,
    question: &str,
    evidence: &str,
    ledger: &mut CostLedger,
) -> ExtractionOutput {
    let mut out = ExtractionOutput::default();
    let Some(db) = pre.db(db_id) else {
        return out;
    };
    let Some(assets) = pre.assets(db_id) else {
        return out;
    };
    let stage_start = Instant::now();

    if config.extraction {
        // --- entity & column extraction (LLM)
        let prompt = format!(
            "{} {}\n{} {}\n{}\n{}\n{}\n/* Answer the following: {} */\n",
            proto::TASK_PREFIX,
            proto::TASK_EXTRACTION,
            proto::DB_PREFIX,
            db_id,
            proto::SCHEMA_HEADER,
            db.database.schema.describe(None),
            evidence_line(evidence),
            question
        );
        let resp = llm.complete(&ChatRequest::once(prompt));
        ledger.charge(
            Module::EntityColumn,
            resp.latency_ms,
            (resp.prompt_tokens + resp.completion_tokens) as u64,
        );
        let text = resp.texts.first().map(String::as_str).unwrap_or("");
        out.entities = parse_list(proto::parse_field(text, "entities").unwrap_or(""));
        let llm_columns = parse_list(proto::parse_field(text, "columns").unwrap_or(""));

        // --- value retrieval (vector + scan multi-path)
        if config.values_retrieval {
            let t0 = Instant::now();
            for entity in &out.entities {
                for hit in assets.values.retrieve(
                    entity,
                    config.retrieval_top_k,
                    config.retrieval_threshold,
                ) {
                    if !out
                        .value_hits
                        .iter()
                        .any(|h: &ValueHit| h.table == hit.table && h.column == hit.column && h.stored == hit.stored)
                    {
                        out.value_hits.push(hit);
                    }
                }
            }
            ledger.charge(Module::Retrieval, t0.elapsed().as_secs_f64() * 1e3, 0);
        }

        // --- column filtering: LLM picks ∪ value-hit columns ∪ vector recall
        if config.column_filtering {
            let t0 = Instant::now();
            let mut subset = SchemaSubset::new();
            for qualified in &llm_columns {
                if let Some((t, c)) = qualified.split_once('.') {
                    if db.col_meta(t.trim(), c.trim()).is_some() {
                        subset.insert(t.trim(), c.trim());
                    }
                }
            }
            for hit in &out.value_hits {
                subset.insert(&hit.table, &hit.column);
            }
            for entity in &out.entities {
                for (t, c) in assets.columns.retrieve(entity, 2, 0.5) {
                    subset.insert(&t, &c);
                }
            }
            ledger.charge(Module::Retrieval, t0.elapsed().as_secs_f64() * 1e3, 0);
            if config.table_level_linking {
                let tables: Vec<String> = db
                    .tables
                    .iter()
                    .filter(|t| subset.contains_table(&t.name))
                    .map(|t| t.name.clone())
                    .collect();
                for t in tables {
                    if let Some(meta) = db.table_meta(&t) {
                        for c in &meta.cols {
                            subset.insert(&t, &c.name);
                        }
                    }
                }
            }
            if !subset.is_empty() {
                out.subset = Some(subset);
            }
        }
    }

    // --- Info Alignment: schema expansion + SELECT-style alignment
    if config.info_alignment {
        if let Some(subset) = &mut out.subset {
            subset.expand_for_alignment(&db.database.schema);
        }
        let prompt = format!(
            "{} {}\n{} {}\n{}\n/* Answer the following: {} */\n",
            proto::TASK_PREFIX,
            proto::TASK_SELECT_ALIGN,
            proto::DB_PREFIX,
            db_id,
            evidence_line(evidence),
            question
        );
        let resp = llm.complete(&ChatRequest::once(prompt));
        ledger.charge(
            Module::SelectAlign,
            resp.latency_ms,
            (resp.prompt_tokens + resp.completion_tokens) as u64,
        );
        out.expected_select = resp
            .texts
            .first()
            .and_then(|t| proto::parse_field(t, "select_count"))
            .and_then(|s| s.parse::<usize>().ok());
    }

    ledger.charge(Module::Extraction, stage_start.elapsed().as_secs_f64() * 1e3, 0);
    out
}

/// Render the values block of a generation/correction prompt.
pub fn values_block(hits: &[ValueHit]) -> String {
    if hits.is_empty() {
        return String::new();
    }
    let mut out = String::from(proto::VALUES_HEADER);
    out.push('\n');
    for h in hits {
        out.push_str(&format!(
            "# {}.{} = '{}'\n",
            h.table,
            h.column,
            h.stored.replace('\'', "''")
        ));
    }
    out
}

/// Render the evidence line ("" stays empty).
pub fn evidence_line(evidence: &str) -> String {
    if evidence.is_empty() {
        String::new()
    } else {
        format!("{} {}", proto::EVIDENCE_PREFIX, evidence)
    }
}

fn parse_list(s: &str) -> Vec<String> {
    s.split('|')
        .map(str::trim)
        .filter(|x| !x.is_empty())
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};
    use std::sync::Arc;

    fn fixture() -> (Preprocessed, SimLlm) {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = SimLlm::new(oracle.clone(), ModelProfile::gpt_4o(), 3);
        let pre = Preprocessed::run(bench, &llm);
        (pre, llm)
    }

    #[test]
    fn full_extraction_produces_subset_and_values() {
        let (pre, llm) = fixture();
        let config = PipelineConfig::full();
        let mut got_values = 0;
        let mut got_subset = 0;
        let mut ledger = CostLedger::new();
        for ex in pre.benchmark.dev.clone().iter().take(8) {
            let out = run_extraction(
                &pre, &llm, &config, &ex.db_id, &ex.question, &ex.evidence, &mut ledger,
            );
            if !out.value_hits.is_empty() {
                got_values += 1;
            }
            if let Some(s) = &out.subset {
                got_subset += 1;
                assert!(!s.is_empty());
            }
            // expected select comes from info alignment
            assert!(out.expected_select.is_some());
        }
        assert!(got_subset >= 6, "subsets {got_subset}/8");
        assert!(got_values >= 1, "value hits {got_values}/8");
        assert!(ledger.get(Module::EntityColumn).calls >= 8);
        assert!(ledger.get(Module::Extraction).time_ms > 0.0);
    }

    #[test]
    fn disabled_extraction_returns_full_schema_mode() {
        let (pre, llm) = fixture();
        let config = PipelineConfig::full().without_extraction();
        let ex = &pre.benchmark.dev[0].clone();
        let mut ledger = CostLedger::new();
        let out = run_extraction(
            &pre, &llm, &config, &ex.db_id, &ex.question, &ex.evidence, &mut ledger,
        );
        assert!(out.subset.is_none());
        assert!(out.value_hits.is_empty());
        // info alignment still aligns SELECT style
        assert!(out.expected_select.is_some());
    }

    #[test]
    fn subset_contains_needed_columns_usually() {
        let (pre, llm) = fixture();
        let config = PipelineConfig::full();
        let mut ledger = CostLedger::new();
        let mut covered = 0usize;
        let mut total = 0usize;
        for ex in pre.benchmark.dev.clone().iter().take(10) {
            let out = run_extraction(
                &pre, &llm, &config, &ex.db_id, &ex.question, &ex.evidence, &mut ledger,
            );
            if let Some(subset) = &out.subset {
                for (t, c) in ex.spec.columns_used() {
                    total += 1;
                    if subset.contains(&t, &c) {
                        covered += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        let recall = covered as f64 / total as f64;
        assert!(recall > 0.8, "column recall {recall}");
    }

    #[test]
    fn values_block_renders_protocol_lines() {
        let hits = vec![ValueHit {
            table: "Patient".into(),
            column: "City".into(),
            stored: "OSL".into(),
            score: 0.9,
        }];
        let block = values_block(&hits);
        let parsed = proto::parse_values_block(&block);
        assert_eq!(parsed, vec![("patient".into(), "city".into(), "OSL".into())]);
        assert!(values_block(&[]).is_empty());
    }
}
