//! The OpenSearch-SQL pipeline: Preprocessing → Extraction → Generation →
//! Refinement, with consistency alignment threaded between stages
//! (paper Figure 1, Algorithm 1).

use crate::config::PipelineConfig;
use crate::cost::{CostLedger, Module};
use crate::extraction::run_extraction;
use crate::generation::run_generation;
use crate::preprocess::Preprocessed;
use crate::refinement::{execute, refine_candidate, vote, RefinedCandidate};
use llmsim::LanguageModel;
use std::sync::Arc;
use std::time::Instant;

/// The assembled pipeline.
pub struct Pipeline {
    pre: Arc<Preprocessed>,
    llm: Arc<dyn LanguageModel>,
    config: PipelineConfig,
}

/// Everything one question produced, including the intermediate SQLs the
/// paper's ablation metrics are defined over.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The question answered.
    pub question: String,
    /// Target database.
    pub db_id: String,
    /// First *raw* generation candidate — scored as `EX_G` in Table 4.
    pub sql_g: String,
    /// First candidate after alignment + correction — scored as `EX_R`.
    pub sql_r: String,
    /// Final SQL after self-consistency & vote — scored as `EX`.
    pub final_sql: String,
    /// All refined candidates.
    pub candidates: Vec<RefinedCandidate>,
    /// Index of the vote winner within `candidates`.
    pub winner: usize,
    /// Per-module cost of this run.
    pub ledger: CostLedger,
}

impl Pipeline {
    /// Assemble a pipeline over preprocessed assets, a language model, and
    /// a configuration.
    pub fn new(pre: Arc<Preprocessed>, llm: Arc<dyn LanguageModel>, config: PipelineConfig) -> Self {
        Pipeline { pre, llm, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The preprocessed assets.
    pub fn preprocessed(&self) -> &Preprocessed {
        &self.pre
    }

    /// Answer one natural-language question against a database.
    pub fn answer(&self, db_id: &str, question: &str, evidence: &str) -> PipelineRun {
        let mut ledger = CostLedger::new();

        // Extraction (+ Info Alignment)
        let extraction = run_extraction(
            &self.pre,
            self.llm.as_ref(),
            &self.config,
            db_id,
            question,
            evidence,
            &mut ledger,
        );

        // Generation
        let generation = run_generation(
            &self.pre,
            self.llm.as_ref(),
            &self.config,
            db_id,
            question,
            evidence,
            &extraction,
            &mut ledger,
        );
        let sql_g = generation.candidates.first().cloned().unwrap_or_default();

        // Refinement (alignments + correction per candidate)
        let refinement_start = Instant::now();
        let candidates: Vec<RefinedCandidate> = generation
            .candidates
            .iter()
            .enumerate()
            .map(|(i, raw)| {
                refine_candidate(
                    &self.pre,
                    self.llm.as_ref(),
                    &self.config,
                    db_id,
                    question,
                    evidence,
                    &extraction,
                    raw,
                    generation.raw_texts.get(i).map(String::as_str),
                    i,
                    &mut ledger,
                )
            })
            .collect();
        let sql_r = candidates.first().map(|c| c.sql.clone()).unwrap_or_default();

        // Self-consistency & vote
        let winner = if self.config.self_consistency && candidates.len() > 1 {
            vote(&candidates, &mut ledger)
        } else {
            0
        };
        ledger.charge(Module::Refinement, refinement_start.elapsed().as_secs_f64() * 1e3, 0);

        let final_sql = candidates
            .get(winner)
            .map(|c| c.sql.clone())
            .unwrap_or_else(|| sql_r.clone());

        PipelineRun {
            question: question.to_owned(),
            db_id: db_id.to_owned(),
            sql_g,
            sql_r,
            final_sql,
            candidates,
            winner,
            ledger,
        }
    }

    /// Convenience: answer and execute, returning the final result set.
    pub fn query(
        &self,
        db_id: &str,
        question: &str,
        evidence: &str,
    ) -> (PipelineRun, Result<sqlkit::ResultSet, sqlkit::SqlError>) {
        let run = self.answer(db_id, question, evidence);
        let result = match self.pre.db(db_id) {
            Some(db) => execute(&db.database, &run.final_sql).0,
            None => Err(sqlkit::SqlError::Other(format!("unknown database {db_id}"))),
        };
        (run, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};

    fn pipeline(config: PipelineConfig) -> Pipeline {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), 5));
        let pre = Arc::new(Preprocessed::run(bench, llm.as_ref()));
        Pipeline::new(pre, llm, config)
    }

    #[test]
    fn full_pipeline_answers_dev_questions() {
        let p = pipeline(PipelineConfig::fast());
        let dev: Vec<datagen::Example> = p.pre.benchmark.dev.clone();
        let mut correct = 0;
        for ex in dev.iter().take(8) {
            let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
            assert_eq!(run.candidates.len(), 3);
            assert!(!run.final_sql.is_empty());
            let db = p.pre.db(&ex.db_id).unwrap();
            let gold = db.database.query(&ex.gold_sql).unwrap();
            if let (Ok(pred), _, _) = execute(&db.database, &run.final_sql) {
                if pred.same_answer(&gold) {
                    correct += 1;
                }
            }
            // ledger has stage charges
            assert!(run.ledger.get(Module::Generation).tokens > 0);
        }
        assert!(correct >= 5, "full pipeline should answer most: {correct}/8");
    }

    #[test]
    fn query_convenience_executes_final_sql() {
        let p = pipeline(PipelineConfig::fast());
        let ex = p.pre.benchmark.dev[0].clone();
        let (run, result) = p.query(&ex.db_id, &ex.question, &ex.evidence);
        assert!(!run.final_sql.is_empty());
        assert!(result.is_ok());
    }

    #[test]
    fn single_candidate_mode_skips_vote() {
        let p = pipeline(PipelineConfig::fast().without_self_consistency());
        let ex = p.pre.benchmark.dev[1].clone();
        let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
        assert_eq!(run.candidates.len(), 1);
        assert_eq!(run.winner, 0);
        assert_eq!(run.ledger.get(Module::Vote).calls, 0);
        assert_eq!(run.final_sql, run.sql_r);
    }

    #[test]
    fn ad_hoc_question_via_fallback() {
        let p = pipeline(PipelineConfig::fast());
        let db = p.pre.benchmark.dbs[0].clone();
        let q = format!("How many {} are there?", db.tables[0].noun);
        let (run, result) = p.query(&db.id, &q, "");
        assert!(run.final_sql.to_uppercase().contains("COUNT"), "{}", run.final_sql);
        assert!(result.is_ok());
    }
}

impl PipelineRun {
    /// Render a human-readable trace of this run: the candidate beam, what
    /// alignment/correction changed, execution outcomes, and the vote.
    /// Useful for debugging pipelines and in the REPL's `\explain`.
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(512);
        let _ = writeln!(out, "question: {}", self.question);
        let _ = writeln!(out, "database: {}", self.db_id);
        let _ = writeln!(out, "candidates: {}", self.candidates.len());
        for (i, c) in self.candidates.iter().enumerate() {
            let marker = if i == self.winner { ">>" } else { "  " };
            let outcome = match &c.result {
                Ok(rs) if rs.is_effectively_empty() => "empty".to_owned(),
                Ok(rs) => format!("{} row(s)", rs.rows.len()),
                Err(e) => format!("error: {e}"),
            };
            let _ = writeln!(out, "{marker} [{i}] {}", c.sql);
            if c.sql != c.raw_sql {
                let _ = writeln!(out, "       raw: {}", c.raw_sql);
            }
            let _ = writeln!(
                out,
                "       -> {outcome} (cost {}, {} correction round(s))",
                c.exec_cost, c.correction_rounds
            );
        }
        let _ = writeln!(out, "final: {}", self.final_sql);
        let gen = self.ledger.get(crate::cost::Module::Generation);
        let _ = write!(
            out,
            "cost: {} tokens, {:.0} ms modelled generation latency",
            gen.tokens, gen.time_ms
        );
        out
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};

    #[test]
    fn explain_renders_the_beam_and_winner() {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), 5));
        let pre = Arc::new(Preprocessed::run(bench.clone(), llm.as_ref()));
        let p = Pipeline::new(pre, llm, PipelineConfig::fast());
        let ex = &bench.dev[0];
        let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
        let text = run.explain();
        assert!(text.contains(&ex.question));
        assert!(text.contains(">>"), "winner marked: {text}");
        assert!(text.contains("final: SELECT"), "{text}");
        assert!(text.contains("tokens"), "{text}");
    }
}
