//! The OpenSearch-SQL pipeline: Preprocessing → Extraction → Generation →
//! Refinement, with consistency alignment threaded between stages
//! (paper Figure 1, Algorithm 1).

use crate::config::PipelineConfig;
use crate::cost::{CostLedger, Module};
use crate::extraction::run_extraction;
use crate::generation::run_generation;
use crate::preprocess::Preprocessed;
use crate::refinement::{execute, refine_candidate, vote, RefinedCandidate};
use llmsim::LanguageModel;
use osql_trace::{active, QueryTrace};
use std::sync::Arc;
use std::time::Instant;

/// The assembled pipeline.
pub struct Pipeline {
    pre: Arc<Preprocessed>,
    llm: Arc<dyn LanguageModel>,
    config: PipelineConfig,
}

/// Everything one question produced, including the intermediate SQLs the
/// paper's ablation metrics are defined over.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The question answered.
    pub question: String,
    /// Target database.
    pub db_id: String,
    /// First *raw* generation candidate — scored as `EX_G` in Table 4.
    pub sql_g: String,
    /// First candidate after alignment + correction — scored as `EX_R`.
    pub sql_r: String,
    /// Final SQL after self-consistency & vote — scored as `EX`.
    pub final_sql: String,
    /// All refined candidates.
    pub candidates: Vec<RefinedCandidate>,
    /// Index of the vote winner within `candidates`.
    pub winner: usize,
    /// Per-module cost of this run.
    pub ledger: CostLedger,
    /// Structured trace of this run. Complete when the caller let
    /// [`Pipeline::answer`] own the trace (the default); empty when an
    /// outer owner (the serving runtime) is still recording, in which case
    /// that owner fills it in after popping the thread's trace.
    pub trace: Arc<QueryTrace>,
}

impl Pipeline {
    /// Assemble a pipeline over preprocessed assets, a language model, and
    /// a configuration.
    pub fn new(pre: Arc<Preprocessed>, llm: Arc<dyn LanguageModel>, config: PipelineConfig) -> Self {
        Pipeline { pre, llm, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The preprocessed assets.
    pub fn preprocessed(&self) -> &Preprocessed {
        &self.pre
    }

    /// Answer one natural-language question against a database.
    ///
    /// Always traced: if no trace is active on this thread, `answer`
    /// installs one and the returned [`PipelineRun::trace`] is complete;
    /// if an outer owner (the serving runtime) already pushed a trace,
    /// `answer` records into it and the owner finishes it.
    pub fn answer(&self, db_id: &str, question: &str, evidence: &str) -> PipelineRun {
        let owner = active::ensure();
        let root = active::start("pipeline");
        active::label(root, "db", db_id);
        let mut ledger = CostLedger::new();

        // Preprocessing is offline (schema profiles, value indexes, the
        // self-taught few-shot library); the per-query share is resolving
        // those assets for the target database.
        let stage = active::start("stage:preprocess");
        active::label(stage, "db_known", if self.pre.db(db_id).is_some() { "true" } else { "false" });
        active::label(
            stage,
            "assets_ready",
            if self.pre.assets(db_id).is_some() { "true" } else { "false" },
        );
        active::end(stage);

        // Extraction (+ Info Alignment)
        let stage = active::start("stage:extraction");
        let extraction = run_extraction(
            &self.pre,
            self.llm.as_ref(),
            &self.config,
            db_id,
            question,
            evidence,
            &mut ledger,
        );
        active::label(stage, "value_hits", &extraction.value_hits.len().to_string());
        if let Some(n) = extraction.expected_select {
            active::label(stage, "expected_select", &n.to_string());
        }
        active::end(stage);

        // Generation
        let stage = active::start("stage:generation");
        let generation = run_generation(
            &self.pre,
            self.llm.as_ref(),
            &self.config,
            db_id,
            question,
            evidence,
            &extraction,
            &mut ledger,
        );
        active::label(stage, "candidates", &generation.candidates.len().to_string());
        active::end(stage);
        let sql_g = generation.candidates.first().cloned().unwrap_or_default();

        // Refinement (alignments + correction per candidate). Candidates
        // are independent, so they can refine on worker threads; each one
        // charges a private ledger and records a private sub-trace, and
        // both are merged in candidate index order, making every report
        // field — and the logical trace — identical whether the work ran
        // on 1 thread or N.
        let stage = active::start("stage:refinement");
        let refinement_start = Instant::now();
        let n = generation.candidates.len();
        let threads = self.config.refine_threads.max(1).min(n.max(1));
        let refine_one = |i: usize, ledger: &mut CostLedger| -> (RefinedCandidate, QueryTrace) {
            active::push();
            let c = refine_candidate(
                &self.pre,
                self.llm.as_ref(),
                &self.config,
                db_id,
                question,
                evidence,
                &extraction,
                &generation.candidates[i],
                generation.raw_texts.get(i).map(String::as_str),
                i,
                ledger,
            );
            (c, active::pop().expect("refine_one pushed a trace"))
        };
        let mut slots: Vec<Option<(RefinedCandidate, CostLedger, QueryTrace)>> =
            (0..n).map(|_| None).collect();
        if threads <= 1 || n < 2 {
            for (i, slot) in slots.iter_mut().enumerate() {
                let mut local = CostLedger::new();
                let (c, t) = refine_one(i, &mut local);
                *slot = Some((c, local, t));
            }
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                    let refine_one = &refine_one;
                    scope.spawn(move || {
                        for (off, slot) in chunk_slots.iter_mut().enumerate() {
                            let mut local = CostLedger::new();
                            let (c, tr) = refine_one(t * chunk + off, &mut local);
                            *slot = Some((c, local, tr));
                        }
                    });
                }
            });
        }
        let mut candidates = Vec::with_capacity(n);
        for slot in slots {
            let (c, local, sub) = slot.expect("every candidate slot is filled");
            candidates.push(c);
            ledger.merge(&local);
            active::absorb(sub);
        }
        let sql_r = candidates.first().map(|c| c.sql.clone()).unwrap_or_default();

        // Self-consistency & vote
        let winner = if self.config.self_consistency && candidates.len() > 1 {
            vote(&candidates, &mut ledger)
        } else {
            0
        };
        ledger.charge(Module::Refinement, refinement_start.elapsed().as_secs_f64() * 1e3, 0);
        active::label(stage, "winner", &winner.to_string());
        active::end(stage);

        let final_sql = candidates
            .get(winner)
            .map(|c| c.sql.clone())
            .unwrap_or_else(|| sql_r.clone());

        active::end(root);
        let trace = if owner {
            Arc::new(active::pop().unwrap_or_else(QueryTrace::empty))
        } else {
            Arc::new(QueryTrace::empty())
        };

        PipelineRun {
            question: question.to_owned(),
            db_id: db_id.to_owned(),
            sql_g,
            sql_r,
            final_sql,
            candidates,
            winner,
            ledger,
            trace,
        }
    }

    /// Convenience: answer and execute, returning the final result set.
    pub fn query(
        &self,
        db_id: &str,
        question: &str,
        evidence: &str,
    ) -> (PipelineRun, Result<sqlkit::ResultSet, sqlkit::SqlError>) {
        let run = self.answer(db_id, question, evidence);
        let result = match self.pre.db(db_id) {
            Some(db) => execute(&db.database, &run.final_sql).0,
            None => Err(sqlkit::SqlError::Other(format!("unknown database {db_id}"))),
        };
        (run, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};

    fn pipeline(config: PipelineConfig) -> Pipeline {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), 5));
        let pre = Arc::new(Preprocessed::run(bench, llm.as_ref()));
        Pipeline::new(pre, llm, config)
    }

    #[test]
    fn full_pipeline_answers_dev_questions() {
        let p = pipeline(PipelineConfig::fast());
        let dev: Vec<datagen::Example> = p.pre.benchmark.dev.clone();
        let mut correct = 0;
        for ex in dev.iter().take(8) {
            let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
            assert_eq!(run.candidates.len(), 3);
            assert!(!run.final_sql.is_empty());
            let db = p.pre.db(&ex.db_id).unwrap();
            let gold = db.database.query(&ex.gold_sql).unwrap();
            if let (Ok(pred), _, _) = execute(&db.database, &run.final_sql) {
                if pred.same_answer(&gold) {
                    correct += 1;
                }
            }
            // ledger has stage charges
            assert!(run.ledger.get(Module::Generation).tokens > 0);
        }
        assert!(correct >= 5, "full pipeline should answer most: {correct}/8");
    }

    #[test]
    fn query_convenience_executes_final_sql() {
        let p = pipeline(PipelineConfig::fast());
        let ex = p.pre.benchmark.dev[0].clone();
        let (run, result) = p.query(&ex.db_id, &ex.question, &ex.evidence);
        assert!(!run.final_sql.is_empty());
        assert!(result.is_ok());
    }

    #[test]
    fn single_candidate_mode_skips_vote() {
        let p = pipeline(PipelineConfig::fast().without_self_consistency());
        let ex = p.pre.benchmark.dev[1].clone();
        let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
        assert_eq!(run.candidates.len(), 1);
        assert_eq!(run.winner, 0);
        assert_eq!(run.ledger.get(Module::Vote).calls, 0);
        assert_eq!(run.final_sql, run.sql_r);
    }

    #[test]
    fn parallel_refinement_matches_sequential() {
        let seq = pipeline(PipelineConfig::fast());
        let par = pipeline(PipelineConfig::fast().with_refine_threads(4));
        for ex in seq.pre.benchmark.dev.clone().iter().take(4) {
            let a = seq.answer(&ex.db_id, &ex.question, &ex.evidence);
            let b = par.answer(&ex.db_id, &ex.question, &ex.evidence);
            assert_eq!(a.sql_g, b.sql_g);
            assert_eq!(a.sql_r, b.sql_r);
            assert_eq!(a.final_sql, b.final_sql);
            assert_eq!(a.winner, b.winner);
            assert_eq!(a.candidates.len(), b.candidates.len());
            for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
                assert_eq!(ca.sql, cb.sql);
                assert_eq!(ca.exec_cost, cb.exec_cost);
                assert_eq!(ca.correction_rounds, cb.correction_rounds);
                assert_eq!(ca.result.is_ok(), cb.result.is_ok());
            }
            for m in crate::cost::Module::all() {
                assert_eq!(a.ledger.get(m).tokens, b.ledger.get(m).tokens, "{m:?}");
            }
        }
    }

    #[test]
    fn ad_hoc_question_via_fallback() {
        let p = pipeline(PipelineConfig::fast());
        let db = p.pre.benchmark.dbs[0].clone();
        let q = format!("How many {} are there?", db.tables[0].noun);
        let (run, result) = p.query(&db.id, &q, "");
        assert!(run.final_sql.to_uppercase().contains("COUNT"), "{}", run.final_sql);
        assert!(result.is_ok());
    }
}

impl PipelineRun {
    /// Render a human-readable account of this run: the candidate beam,
    /// what alignment/correction changed, execution outcomes, and the
    /// vote. Useful for debugging pipelines and in the REPL's `\explain`.
    ///
    /// The beam section reads from the structured [`PipelineRun::trace`]
    /// (the candidate spans are the source of truth); a run without a
    /// trace falls back to the [`RefinedCandidate`]s directly and renders
    /// the same bytes.
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        // (sql, raw-if-different, outcome, cost, rounds) per candidate —
        // from candidate spans when traced, else from the beam itself.
        let beam: Vec<(String, Option<String>, String, String, String)> = {
            let spans: Vec<_> = self.trace.spans_named("candidate").collect();
            if spans.is_empty() {
                self.candidates
                    .iter()
                    .map(|c| {
                        (
                            c.sql.clone(),
                            (c.sql != c.raw_sql).then(|| c.raw_sql.clone()),
                            c.outcome_label(),
                            c.exec_cost.to_string(),
                            c.correction_rounds.to_string(),
                        )
                    })
                    .collect()
            } else {
                spans
                    .iter()
                    .map(|s| {
                        let get = |k: &str| s.label(k).unwrap_or("?").to_owned();
                        (
                            get("sql"),
                            s.label("raw").map(str::to_owned),
                            get("outcome"),
                            get("cost"),
                            get("rounds"),
                        )
                    })
                    .collect()
            }
        };
        let mut out = String::with_capacity(512);
        let _ = writeln!(out, "question: {}", self.question);
        let _ = writeln!(out, "database: {}", self.db_id);
        let _ = writeln!(out, "candidates: {}", beam.len());
        for (i, (sql, raw, outcome, cost, rounds)) in beam.iter().enumerate() {
            let marker = if i == self.winner { ">>" } else { "  " };
            let _ = writeln!(out, "{marker} [{i}] {sql}");
            if let Some(raw) = raw {
                let _ = writeln!(out, "       raw: {raw}");
            }
            let _ = writeln!(out, "       -> {outcome} (cost {cost}, {rounds} correction round(s))");
        }
        let _ = writeln!(out, "final: {}", self.final_sql);
        let gen = self.ledger.get(crate::cost::Module::Generation);
        let _ = write!(
            out,
            "cost: {} tokens, {:.0} ms modelled generation latency",
            gen.tokens, gen.time_ms
        );
        out
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use datagen::{generate, Profile};
    use llmsim::{ModelProfile, Oracle, SimLlm};

    #[test]
    fn explain_renders_the_beam_and_winner() {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        let llm = Arc::new(SimLlm::new(oracle, ModelProfile::gpt_4o(), 5));
        let pre = Arc::new(Preprocessed::run(bench.clone(), llm.as_ref()));
        let p = Pipeline::new(pre, llm, PipelineConfig::fast());
        let ex = &bench.dev[0];
        let run = p.answer(&ex.db_id, &ex.question, &ex.evidence);
        let text = run.explain();
        assert!(text.contains(&ex.question));
        assert!(text.contains(">>"), "winner marked: {text}");
        assert!(text.contains("final: SELECT"), "{text}");
        assert!(text.contains("tokens"), "{text}");
    }
}
