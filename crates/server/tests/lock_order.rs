//! Lock-order analysis over the serving layer: drive the coalescer and
//! the quota registry concurrently and assert the always-on analyzer saw
//! an acyclic acquisition graph.
#![cfg(all(debug_assertions, not(osql_model)))]

use osql_runtime::ResultKey;
use osql_server::{Coalescer, Joined, QuotaConfig, QuotaRegistry, Rendered};
use std::sync::Arc;

#[test]
fn serving_structures_admit_a_global_lock_order() {
    let co = Arc::new(Coalescer::new());
    let quota = Arc::new(QuotaRegistry::new(QuotaConfig::default()));
    std::thread::scope(|s| {
        for t in 0..3usize {
            let (co, quota) = (co.clone(), quota.clone());
            s.spawn(move || {
                for i in 0..8usize {
                    let _ = quota.admit(&format!("key-{t}"));
                    match co.join(ResultKey::new("db", &format!("q{}", i % 2), "", 7)) {
                        Joined::Leader(tok) => {
                            tok.complete(|_| Rendered {
                                status: 200,
                                body: Arc::new(b"ok".to_vec()),
                                retry_after_secs: None,
                trace_id: None,
                            });
                        }
                        Joined::Waiter(w) => {
                            let _ = w.wait();
                        }
                    }
                }
            });
        }
    });
    assert_eq!(co.inflight_len(), 0);
    assert_eq!(
        osql_chk::lockorder::cycles_detected(),
        0,
        "lock-order cycle in serving structures"
    );
}
