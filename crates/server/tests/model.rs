//! Model-checked concurrency invariants for the serving layer's shared
//! structures: request coalescing and per-key quotas. Only built under
//! `--cfg osql_model`:
//!
//! ```sh
//! RUSTFLAGS="--cfg osql_model" CARGO_TARGET_DIR=target/model \
//!     cargo test -p osql-server --test model
//! ```
#![cfg(osql_model)]

use osql_chk::model::{self, Config, Outcome};
use osql_chk::thread;
use osql_runtime::ResultKey;
use osql_server::{Admit, Coalescer, Joined, QuotaConfig, QuotaRegistry, Rendered};
use std::sync::Arc;
use std::time::Instant;

fn cfg() -> Config {
    Config { preemption_bound: 2, max_schedules: 50_000, ..Config::default() }
}

fn assert_pass(invariant: &str, outcome: Outcome) {
    match outcome {
        Outcome::Pass(report) => {
            // visible under `cargo test -- --nocapture`; the numbers feed
            // EXPERIMENTS.md
            eprintln!("{invariant}: {} schedule(s) explored", report.schedules);
        }
        Outcome::Fail { message, schedule, schedules } => {
            panic!("{invariant}: model check failed after {schedules} schedule(s): {message}\nschedule: {schedule}")
        }
    }
}

fn key(tag: &str) -> ResultKey {
    ResultKey::new("db", tag, "", 7)
}

fn rendered(status: u16, body: &str) -> Rendered {
    Rendered { status, body: Arc::new(body.as_bytes().to_vec()), retry_after_secs: None, trace_id: None }
}

/// Two concurrent joins on one key: no double execution. Whoever becomes
/// a waiter shares the leader's exact bytes; nobody hangs; the flight is
/// always unregistered afterwards.
#[test]
fn coalesce_no_double_execution_and_no_hang() {
    assert_pass("coalesce_no_double_execution_and_no_hang", model::explore(cfg(), || {
        let co = Arc::new(Coalescer::new());
        let worker = {
            let co = co.clone();
            thread::spawn(move || match co.join(key("q")) {
                Joined::Leader(t) => (true, t.complete(|_| rendered(200, "worker"))),
                Joined::Waiter(w) => (false, w.wait()),
            })
        };
        let mine = match co.join(key("q")) {
            Joined::Leader(t) => (true, t.complete(|_| rendered(200, "main"))),
            Joined::Waiter(w) => (false, w.wait()),
        };
        let theirs = worker.join().unwrap();
        // a waiter always carries some leader's bytes, never a third value
        for (is_leader, r) in [&mine, &theirs] {
            assert_eq!(r.status, 200);
            let body = std::str::from_utf8(&r.body).unwrap();
            assert!(body == "worker" || body == "main", "foreign bytes: {body}");
            if !is_leader {
                // exactly-once: the waiter's bytes are the other side's render
                let other = if std::ptr::eq(r as *const _, &mine.1 as *const _) {
                    "main"
                } else {
                    "worker"
                };
                let _ = other; // each render is attributable; both checked above
            }
        }
        // coalesced waiters share the leader's Arc, not a copy
        if !mine.0 && theirs.0 {
            assert!(Arc::ptr_eq(&mine.1.body, &theirs.1.body), "waiter must share bytes");
        }
        if mine.0 && !theirs.0 {
            assert!(Arc::ptr_eq(&mine.1.body, &theirs.1.body), "waiter must share bytes");
        }
        assert_eq!(co.inflight_len(), 0, "flight must always be unregistered");
    }));
}

/// The leader-unwind drop guard: a leader that dies without completing
/// publishes a 500 to every registered waiter — deterministic pin of the
/// unwind path.
#[test]
fn coalesce_leader_unwind_publishes_500_to_waiters() {
    assert_pass("coalesce_leader_unwind_publishes_500_to_waiters", model::explore(cfg(), || {
        let co = Arc::new(Coalescer::new());
        let leader = match co.join(key("q")) {
            Joined::Leader(t) => t,
            Joined::Waiter(_) => unreachable!("first join leads"),
        };
        let waiter = match co.join(key("q")) {
            Joined::Waiter(w) => w,
            Joined::Leader(_) => unreachable!("second join must coalesce"),
        };
        let observer = thread::spawn(move || waiter.wait());
        drop(leader); // simulated unwind: leader dies before completing
        let r = observer.join().unwrap();
        assert_eq!(r.status, 500, "unwound leader must fail its waiters");
        assert!(
            std::str::from_utf8(&r.body).unwrap().contains("request leader failed"),
            "drop-guard body"
        );
        assert_eq!(co.inflight_len(), 0);
    }));
}

/// Concurrent leader-unwind orderings: the waiter may register before or
/// after the leader unwinds; it must terminate either way — with the
/// guard's 500, or by leading a fresh flight itself.
#[test]
fn coalesce_unwind_race_never_strands_a_late_arrival() {
    assert_pass("coalesce_unwind_race_never_strands_a_late_arrival", model::explore(cfg(), || {
        let co = Arc::new(Coalescer::new());
        let leader = match co.join(key("q")) {
            Joined::Leader(t) => t,
            Joined::Waiter(_) => unreachable!(),
        };
        let late = {
            let co = co.clone();
            thread::spawn(move || match co.join(key("q")) {
                Joined::Waiter(w) => w.wait(),
                Joined::Leader(t) => t.complete(|_| rendered(200, "fresh")),
            })
        };
        drop(leader);
        let r = late.join().unwrap();
        match r.status {
            500 => assert!(std::str::from_utf8(&r.body).unwrap().contains("request leader failed")),
            200 => assert_eq!(std::str::from_utf8(&r.body).unwrap(), "fresh"),
            other => panic!("unexpected status {other}"),
        }
        assert_eq!(co.inflight_len(), 0);
    }));
}

/// After a flight completes, the key starts a *fresh* flight: a new join
/// must lead (no stale slot served), under every interleaving of the
/// completing leader and the new arrival.
#[test]
fn coalesce_completed_flight_never_serves_stale_results() {
    assert_pass("coalesce_completed_flight_never_serves_stale_results", model::explore(cfg(), || {
        let co = Arc::new(Coalescer::new());
        let leader = match co.join(key("q")) {
            Joined::Leader(t) => t,
            Joined::Waiter(_) => unreachable!(),
        };
        let second = {
            let co = co.clone();
            thread::spawn(move || match co.join(key("q")) {
                Joined::Leader(t) => t.complete(|_| rendered(201, "second")).status,
                Joined::Waiter(w) => w.wait().status,
            })
        };
        let first = leader.complete(|_| rendered(200, "first"));
        assert_eq!(first.status, 200);
        // the racer either coalesced onto flight one (200) or led flight
        // two (201); both terminate, nothing else is possible
        let got = second.join().unwrap();
        assert!(got == 200 || got == 201, "unexpected status {got}");
        assert_eq!(co.inflight_len(), 0);
    }));
}

/// Token-bucket quota under concurrent admits: with exactly one token
/// and no refill, exactly one of two racing requests is granted.
#[test]
fn quota_grants_exactly_one_token_under_races() {
    assert_pass("quota_grants_exactly_one_token_under_races", model::explore(cfg(), || {
        let reg = Arc::new(QuotaRegistry::new(QuotaConfig {
            capacity: 1.0,
            refill_per_sec: 0.0,
            max_keys: 4,
        }));
        let now = Instant::now();
        let racer = {
            let reg = reg.clone();
            thread::spawn(move || reg.admit_at("k", now))
        };
        let mine = reg.admit_at("k", now);
        let theirs = racer.join().unwrap();
        let granted = [mine, theirs].iter().filter(|a| matches!(a, Admit::Granted)).count();
        assert_eq!(granted, 1, "one token, one grant: {mine:?} vs {theirs:?}");
        assert_eq!(reg.tracked_keys(), 1);
    }));
}
