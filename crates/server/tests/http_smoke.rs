//! HTTP conformance smoke tests over loopback: every route answers,
//! malformed and oversized input gets a clean 4xx without killing the
//! accept loop, keep-alive connections are reused, quotas produce 429s,
//! and graceful shutdown drains.

mod common;

use common::{one_shot, query_body, tiny_world, Conn};
use osql_server::{QuotaConfig, Server, ServerConfig};
use std::time::Duration;

fn server_config() -> ServerConfig {
    ServerConfig { read_timeout: Duration::from_secs(2), ..ServerConfig::default() }
}

#[test]
fn endpoints_answer_over_loopback() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let server = Server::start(rt.clone(), "127.0.0.1:0", server_config()).unwrap();
    let addr = server.local_addr();

    let health = one_shot(addr, "GET", "/healthz", &[], "");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);
    assert!(health.body.contains("queue_capacity"), "{}", health.body);
    assert!(health.body.contains("flight_recorder_depth"), "{}", health.body);
    assert!(health.body.contains("flight_recorder_capacity"), "{}", health.body);
    // no slow query yet: the age field is present but null
    assert!(health.body.contains("\"last_slow_age_secs\":null"), "{}", health.body);

    let ex = &bench.dev[0];
    let answer =
        one_shot(addr, "POST", "/v1/query", &[], &query_body(&ex.db_id, &ex.question, &ex.evidence));
    assert_eq!(answer.status, 200, "{}", answer.body);
    assert!(answer.body.contains("\"sql\":\"SELECT"), "{}", answer.body);
    assert!(answer.body.contains("\"from_cache\":false"), "{}", answer.body);
    assert!(answer.body.contains("\"coalesced_group\":1"), "{}", answer.body);

    let metrics = one_shot(addr, "GET", "/metrics", &[], "");
    assert_eq!(metrics.status, 200);
    assert!(metrics.header("content-type").unwrap().starts_with("text/plain"));
    assert!(metrics.body.contains("requests_total 1"), "{}", metrics.body);
    assert!(metrics.body.contains("http_requests_total"), "{}", metrics.body);
    // the windowed/SLO exposition rides along after the registry render
    assert!(metrics.body.contains("osql_window_requests_total"), "{}", metrics.body);
    assert!(metrics.body.contains("osql_slo_burn_rate"), "{}", metrics.body);

    let catalog = one_shot(addr, "GET", "/v1/catalog", &[], "");
    assert_eq!(catalog.status, 200);
    assert!(catalog.body.contains("\"mode\":\"eager\""), "{}", catalog.body);

    assert_eq!(one_shot(addr, "GET", "/nope", &[], "").status, 404);
    assert_eq!(one_shot(addr, "GET", "/v1/query", &[], "").status, 405);
    assert_eq!(one_shot(addr, "POST", "/metrics", &[], "").status, 405);

    let unknown = one_shot(addr, "POST", "/v1/query", &[], &query_body("ghost", "q", ""));
    assert_eq!(unknown.status, 404);
    assert!(unknown.body.contains("unknown database"), "{}", unknown.body);

    assert!(server.shutdown());
}

#[test]
fn malformed_and_oversized_input_is_rejected_without_killing_the_server() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let config = ServerConfig {
        limits: osql_server::Limits { max_header_bytes: 512, max_body_bytes: 256 },
        ..server_config()
    };
    let server = Server::start(rt, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // malformed request line
    let mut conn = Conn::open(addr);
    conn.send_raw(b"this is not http\r\n\r\n");
    let resp = conn.read_response();
    assert_eq!(resp.status, 400);
    assert_eq!(resp.header("connection"), Some("close"));

    // bad JSON body is a 400, not a connection killer
    let bad = one_shot(addr, "POST", "/v1/query", &[], "{\"db_id\":42}");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("must be a string"), "{}", bad.body);
    let missing = one_shot(addr, "POST", "/v1/query", &[], "{}");
    assert_eq!(missing.status, 400);
    assert!(missing.body.contains("db_id"), "{}", missing.body);

    // oversized headers
    let mut conn = Conn::open(addr);
    let huge = format!("GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(2048));
    conn.send_raw(huge.as_bytes());
    assert_eq!(conn.read_response().status, 431);

    // declared body beyond the limit
    let mut conn = Conn::open(addr);
    conn.send_raw(b"POST /v1/query HTTP/1.1\r\ncontent-length: 99999\r\n\r\n");
    assert_eq!(conn.read_response().status, 413);

    // after all that abuse the accept loop still serves
    assert_eq!(one_shot(addr, "GET", "/healthz", &[], "").status, 200);
    assert!(server.shutdown());
}

#[test]
fn keep_alive_connections_are_reused() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let server = Server::start(rt.clone(), "127.0.0.1:0", server_config()).unwrap();
    let ex = &bench.dev[0];

    let mut conn = Conn::open(server.local_addr());
    let body = query_body(&ex.db_id, &ex.question, &ex.evidence);
    let first = conn.request("POST", "/v1/query", &[], &body);
    assert_eq!(first.status, 200);
    assert_eq!(first.header("connection"), Some("keep-alive"));
    assert!(first.body.contains("\"from_cache\":false"), "{}", first.body);

    // same socket, second request: served from the result cache
    let second = conn.request("POST", "/v1/query", &[], &body);
    assert_eq!(second.status, 200);
    assert!(second.body.contains("\"from_cache\":true"), "{}", second.body);

    let health = conn.request("GET", "/healthz", &[], "");
    assert_eq!(health.status, 200);

    // the runtime saw one connection's worth of requests, one pipeline run
    assert_eq!(rt.metrics().counter("requests_total").get(), 2);
    assert_eq!(rt.metrics().counter("result_cache_misses").get(), 1);
    assert!(server.shutdown());
}

#[test]
fn trace_ids_round_trip_and_debug_endpoints_answer() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let server = Server::start(rt.clone(), "127.0.0.1:0", server_config()).unwrap();
    let addr = server.local_addr();
    let ex = &bench.dev[0];
    let body = query_body(&ex.db_id, &ex.question, &ex.evidence);

    // a caller-supplied trace ID comes back in the body and the header
    let tagged =
        one_shot(addr, "POST", "/v1/query", &[("x-osql-trace-id", "smoke.trace-1")], &body);
    assert_eq!(tagged.status, 200, "{}", tagged.body);
    assert!(tagged.body.contains("\"trace_id\":\"smoke.trace-1\""), "{}", tagged.body);
    assert_eq!(tagged.header("x-osql-trace-id"), Some("smoke.trace-1"));

    // without the header, the server mints one and still echoes it
    let ex2 = &bench.dev[1.min(bench.dev.len() - 1)];
    let minted =
        one_shot(addr, "POST", "/v1/query", &[], &query_body(&ex2.db_id, &ex2.question, "x"));
    assert_eq!(minted.status, 200, "{}", minted.body);
    let minted_id = minted.header("x-osql-trace-id").expect("minted id header").to_owned();
    assert!(minted.body.contains(&format!("\"trace_id\":\"{minted_id}\"")), "{}", minted.body);

    // a malformed ID is rejected before any work happens
    let bad = one_shot(addr, "POST", "/v1/query", &[("x-osql-trace-id", "no spaces!")], &body);
    assert_eq!(bad.status, 400, "{}", bad.body);

    // /debug/trace/<id>: the supplied ID resolves to its flight record
    let rec = one_shot(addr, "GET", "/debug/trace/smoke.trace-1", &[], "");
    assert_eq!(rec.status, 200, "{}", rec.body);
    assert!(rec.body.contains("\"id\":\"smoke.trace-1\""), "{}", rec.body);
    assert!(rec.body.contains("\"outcome\":\"ok\""), "{}", rec.body);
    assert_eq!(one_shot(addr, "GET", "/debug/trace/never-seen", &[], "").status, 404);
    assert_eq!(one_shot(addr, "GET", "/debug/trace/bad%20id", &[], "").status, 400);

    // /debug/requests lists both finished requests, newest first
    let recent = one_shot(addr, "GET", "/debug/requests", &[], "");
    assert_eq!(recent.status, 200, "{}", recent.body);
    assert!(recent.body.contains("smoke.trace-1"), "{}", recent.body);
    assert!(recent.body.contains(&minted_id), "{}", recent.body);
    let capped = one_shot(addr, "GET", "/debug/requests?n=1", &[], "");
    assert!(capped.body.contains("\"count\":1"), "{}", capped.body);

    // /debug/slow and /debug/slo answer (nothing slow in this run)
    let slow = one_shot(addr, "GET", "/debug/slow", &[], "");
    assert_eq!(slow.status, 200, "{}", slow.body);
    assert!(slow.body.contains("\"slow\":["), "{}", slow.body);
    let slo = one_shot(addr, "GET", "/debug/slo", &[], "");
    assert_eq!(slo.status, 200, "{}", slo.body);
    assert!(slo.body.contains("availability"), "{}", slo.body);
    assert!(slo.body.contains("burn_rate"), "{}", slo.body);

    assert!(server.shutdown());
}

/// Pin the shared `Retry-After` rounding: admission-control sheds
/// (`QueueStats::estimated_drain_secs`) and quota rejections
/// (`QuotaRegistry::admit`) both route through
/// `osql_runtime::retry_after_secs`, so its edge cases are the contract
/// for every 429 the server emits.
#[test]
fn retry_after_rounding_is_shared_and_pinned() {
    use osql_runtime::retry_after_secs;
    assert_eq!(retry_after_secs(0.5, 3600), 1, "sub-second estimates round up");
    assert_eq!(retry_after_secs(0.0, 60), 1, "zero still advises a pause");
    assert_eq!(retry_after_secs(2.0, 3600), 2);
    assert_eq!(retry_after_secs(2.0001, 3600), 3, "ceil, never floor");
    assert_eq!(retry_after_secs(9999.0, 60), 60, "capped");
    assert_eq!(retry_after_secs(f64::NAN, 60), 60, "non-finite estimates hit the cap");
    assert_eq!(retry_after_secs(f64::INFINITY, 60), 60);
    assert_eq!(retry_after_secs(5.0, 0), 1, "a zero cap still answers at least 1s");
}

#[test]
fn per_key_quotas_shed_with_retry_after() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let config = ServerConfig {
        quota: Some(QuotaConfig { capacity: 2.0, refill_per_sec: 0.5, max_keys: 16 }),
        ..server_config()
    };
    let server = Server::start(rt.clone(), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let ex = &bench.dev[0];
    let body = query_body(&ex.db_id, &ex.question, &ex.evidence);

    let key = [("x-api-key", "tenant-a")];
    assert_eq!(one_shot(addr, "POST", "/v1/query", &key, &body).status, 200);
    assert_eq!(one_shot(addr, "POST", "/v1/query", &key, &body).status, 200);
    let shed = one_shot(addr, "POST", "/v1/query", &key, &body);
    assert_eq!(shed.status, 429);
    assert!(shed.body.contains("quota exceeded"), "{}", shed.body);
    let retry: u64 = shed.header("retry-after").expect("retry-after").parse().unwrap();
    assert!(retry >= 1, "retry-after {retry}");

    // a different key has its own bucket
    let other = [("x-api-key", "tenant-b")];
    assert_eq!(one_shot(addr, "POST", "/v1/query", &other, &body).status, 200);
    assert_eq!(rt.metrics().counter("quota_rejections_total").get(), 1);
    assert!(server.shutdown());
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let server = Server::start(rt, "127.0.0.1:0", server_config()).unwrap();
    let addr = server.local_addr();
    assert_eq!(one_shot(addr, "GET", "/healthz", &[], "").status, 200);
    assert!(server.shutdown(), "drain should complete");

    // the listener is gone: connects fail or are immediately closed
    match std::net::TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut buf = [0u8; 1];
            use std::io::Read as _;
            // a refused/reset/empty read all mean nobody is serving
            assert!(matches!((&stream).read(&mut buf), Ok(0) | Err(_)));
        }
    }
}
