//! In-flight coalescing and admission-control behaviour, made
//! deterministic by parking the pipeline on a gated LLM: concurrent
//! identical requests collapse onto exactly one pipeline execution and
//! receive byte-identical responses; a saturated queue sheds with a
//! drain-rate-derived `Retry-After` while the server keeps serving.

mod common;

use common::{gated_runtime, one_shot, query_body, tiny_world, Conn};
use osql_server::{Server, ServerConfig};
use std::time::{Duration, Instant};

fn server_config() -> ServerConfig {
    ServerConfig { read_timeout: Duration::from_secs(10), ..ServerConfig::default() }
}

fn wait_for(deadline_secs: u64, mut ok: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while Instant::now() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn concurrent_identical_requests_run_one_pipeline_and_share_bytes() {
    const CLIENTS: usize = 6;
    let bench = tiny_world();
    // result-cache capacity 1: a second in-flight query can evict the
    // leader's entry before waiters are answered — waiters must not care
    let (gate, rt) = gated_runtime(&bench, 2, 16, 1);
    gate.set_open(false);
    let server = Server::start(rt.clone(), "127.0.0.1:0", server_config()).unwrap();
    let addr = server.local_addr();
    let ex = &bench.dev[0];
    let other = &bench.dev[1];
    let body = query_body(&ex.db_id, &ex.question, &ex.evidence);

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let mut conn = Conn::open(addr);
                conn.request("POST", "/v1/query", &[("connection", "close")], &body)
            })
        })
        .collect();

    // wait until the leader's job reached a worker and the other N-1
    // clients joined its flight
    assert!(
        wait_for(30, || {
            rt.metrics().counter("coalesced_requests_total").get() == (CLIENTS as u64) - 1
                && rt.metrics().counter("requests_total").get() == 1
        }),
        "coalesced {} of {}, requests {}",
        rt.metrics().counter("coalesced_requests_total").get(),
        CLIENTS - 1,
        rt.metrics().counter("requests_total").get()
    );

    // a distinct query churns the capacity-1 result cache while the
    // group is still parked
    let churn = {
        let body = query_body(&other.db_id, &other.question, &other.evidence);
        std::thread::spawn(move || one_shot(addr, "POST", "/v1/query", &[], &body))
    };
    std::thread::sleep(Duration::from_millis(20));

    gate.set_open(true);
    let responses: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert_eq!(churn.join().unwrap().status, 200);

    let first = &responses[0];
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(first.body.contains(&format!("\"coalesced_group\":{CLIENTS}")), "{}", first.body);
    for resp in &responses {
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, first.body, "coalesced responses must be byte-identical");
    }

    // exactly two pipeline executions total: the group's and the churn's
    assert_eq!(rt.metrics().counter("requests_total").get(), 2);
    assert_eq!(rt.metrics().counter("result_cache_misses").get(), 2);
    assert_eq!(rt.metrics().counter("coalesced_requests_total").get(), (CLIENTS as u64) - 1);

    // the coalesce decisions are visible in the trace ring
    let coalesce_events: usize = rt
        .traces()
        .recent()
        .iter()
        .map(|t| t.events_named("http_coalesce_join").count())
        .sum();
    assert!(coalesce_events > 0, "expected http_coalesce_join volatile events");

    assert!(server.shutdown());
}

#[test]
fn late_arrival_after_completion_hits_the_result_cache() {
    let bench = tiny_world();
    let (gate, rt) = gated_runtime(&bench, 1, 8, 64);
    let server = Server::start(rt.clone(), "127.0.0.1:0", server_config()).unwrap();
    let addr = server.local_addr();
    let ex = &bench.dev[0];
    let body = query_body(&ex.db_id, &ex.question, &ex.evidence);
    gate.set_open(true);

    let first = one_shot(addr, "POST", "/v1/query", &[], &body);
    assert!(first.body.contains("\"from_cache\":false"), "{}", first.body);
    let second = one_shot(addr, "POST", "/v1/query", &[], &body);
    assert!(second.body.contains("\"from_cache\":true"), "{}", second.body);
    assert!(second.body.contains("\"coalesced_group\":1"), "{}", second.body);
    assert_eq!(rt.metrics().counter("coalesced_requests_total").get(), 0);
    assert!(server.shutdown());
}

#[test]
fn saturated_queue_sheds_with_retry_after_and_server_survives() {
    let bench = tiny_world();
    // one worker, queue of one: the gated first request parks the
    // worker, the second fills the queue, the third must shed
    let (gate, rt) = gated_runtime(&bench, 1, 1, 64);
    gate.set_open(false);
    let server = Server::start(rt.clone(), "127.0.0.1:0", server_config()).unwrap();
    let addr = server.local_addr();
    let q = |i: usize| query_body(&bench.dev[i].db_id, &bench.dev[i].question, "");

    // park the worker on job 0 first, then fill the queue with job 1 —
    // submitting both at once could shed job 1 before the worker pops
    let mut inflight = Vec::new();
    let body0 = q(0);
    inflight.push(std::thread::spawn(move || one_shot(addr, "POST", "/v1/query", &[], &body0)));
    assert!(wait_for(30, || rt.metrics().counter("requests_total").get() == 1));
    let body1 = q(1);
    inflight.push(std::thread::spawn(move || one_shot(addr, "POST", "/v1/query", &[], &body1)));
    assert!(wait_for(30, || rt.queued() == 1));

    let shed = one_shot(addr, "POST", "/v1/query", &[], &q(2));
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(shed.body.contains("queue full"), "{}", shed.body);
    let retry: u64 = shed.header("retry-after").expect("retry-after header").parse().unwrap();
    assert!((1..=60).contains(&retry), "retry-after {retry}");
    assert_eq!(rt.metrics().counter("queue_shed_total").get(), 1);

    // shedding didn't hurt the healthy paths
    assert_eq!(one_shot(addr, "GET", "/healthz", &[], "").status, 200);

    gate.set_open(true);
    for handle in inflight {
        assert_eq!(handle.join().unwrap().status, 200);
    }
    // the shed decision left a volatile trace event behind
    let shed_events: usize =
        rt.traces().recent().iter().map(|t| t.events_named("http_shed").count()).sum();
    assert!(shed_events > 0, "expected http_shed volatile events");
    assert!(server.shutdown());
}
