//! Follower serving mode over loopback: bounded-staleness admission via
//! `X-Osql-Min-Seq`, the `X-Osql-Applied-Seq` response header, and the
//! replication fields `/healthz` and `/metrics` grow when the server is
//! a replica. The apply loop itself is exercised in `osql-repl`; here a
//! test stands in for it by publishing into the shared [`ReplState`].

mod common;

use common::{one_shot, query_body, tiny_world};
use osql_repl::{ApplyReport, ReplState};
use osql_server::{Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn follower_config(state: Arc<ReplState>) -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_secs(2),
        repl: Some(state),
        ..ServerConfig::default()
    }
}

fn report(applied: u64, target: u64) -> ApplyReport {
    ApplyReport {
        target_seq: target,
        applied_seq: applied,
        applied_txns: applied,
        stmts_applied: applied,
        segments_read: 1,
        finding: None,
    }
}

#[test]
fn bounded_staleness_floor_gates_admission() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let state = Arc::new(ReplState::new(2));
    let server = Server::start(rt, "127.0.0.1:0", follower_config(state.clone())).unwrap();
    let addr = server.local_addr();
    let ex = &bench.dev[0];
    let body = query_body(&ex.db_id, &ex.question, &ex.evidence);

    // no apply loop has reported this database: every floor is unmet
    let early = one_shot(addr, "POST", "/v1/query", &[("x-osql-min-seq", "1")], &body);
    assert_eq!(early.status, 503, "{}", early.body);
    assert!(early.body.contains("replica not caught up"), "{}", early.body);
    assert!(early.body.contains("\"applied_seq\":0"), "{}", early.body);
    assert_eq!(early.header("retry-after"), Some("2"), "hint flows into Retry-After");

    state.note_poll(&ex.db_id, &report(5, 7));

    // floor at or below the applied position: served, and the response
    // advertises the position the admission decision was made against
    let met = one_shot(addr, "POST", "/v1/query", &[("x-osql-min-seq", "5")], &body);
    assert_eq!(met.status, 200, "{}", met.body);
    assert_eq!(met.header("x-osql-applied-seq"), Some("5"));
    assert!(met.body.contains("\"sql\":\"SELECT"), "{}", met.body);

    // no floor at all: always served on a replica too
    let unbounded = one_shot(addr, "POST", "/v1/query", &[], &body);
    assert_eq!(unbounded.status, 200, "{}", unbounded.body);
    assert_eq!(unbounded.header("x-osql-applied-seq"), Some("5"));

    // floor above the applied position: honest 503, not stale data
    let ahead = one_shot(addr, "POST", "/v1/query", &[("x-osql-min-seq", "6")], &body);
    assert_eq!(ahead.status, 503, "{}", ahead.body);
    assert!(ahead.body.contains("\"applied_seq\":5"), "{}", ahead.body);
    assert!(ahead.body.contains("\"min_seq\":6"), "{}", ahead.body);
    assert!(ahead.body.contains("\"retry_after_secs\":2"), "{}", ahead.body);

    // malformed floor is a client error, not a guess
    let bad = one_shot(addr, "POST", "/v1/query", &[("x-osql-min-seq", "soon")], &body);
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.body.contains("X-Osql-Min-Seq"), "{}", bad.body);

    assert_eq!(state.stale_rejections(), 2);
    assert!(server.shutdown());
}

#[test]
fn healthz_and_metrics_expose_replication_state() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let state = Arc::new(ReplState::new(1));
    state.note_poll("db_a", &report(3, 9));
    let server = Server::start(rt, "127.0.0.1:0", follower_config(state.clone())).unwrap();
    let addr = server.local_addr();

    let health = one_shot(addr, "GET", "/healthz", &[], "");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"role\":\"follower\""), "{}", health.body);
    assert!(health.body.contains("\"repl_max_lag\":6"), "{}", health.body);
    assert!(health.body.contains("\"db_id\":\"db_a\""), "{}", health.body);
    assert!(health.body.contains("\"applied_seq\":3"), "{}", health.body);
    assert!(health.body.contains("\"target_seq\":9"), "{}", health.body);
    assert!(health.body.contains("\"lag\":6"), "{}", health.body);
    assert!(health.body.contains("\"last_error\":null"), "{}", health.body);

    state.note_error("db_a", "segment vanished");
    let degraded = one_shot(addr, "GET", "/healthz", &[], "");
    assert!(degraded.body.contains("\"last_error\":\"segment vanished\""), "{}", degraded.body);

    let metrics = one_shot(addr, "GET", "/metrics", &[], "");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("repl_applied_seq{db=\"db_a\"} 3"), "{}", metrics.body);
    assert!(metrics.body.contains("repl_target_seq{db=\"db_a\"} 9"), "{}", metrics.body);
    assert!(metrics.body.contains("repl_lag{db=\"db_a\"} 6"), "{}", metrics.body);
    assert!(metrics.body.contains("repl_stale_rejections_total 0"), "{}", metrics.body);

    assert!(server.shutdown());
}

#[test]
fn stale_rejections_are_observable_end_to_end() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let state = Arc::new(ReplState::new(1));
    let server = Server::start(rt, "127.0.0.1:0", follower_config(state)).unwrap();
    let addr = server.local_addr();
    let ex = &bench.dev[0];
    let body = query_body(&ex.db_id, &ex.question, &ex.evidence);

    let stale = one_shot(
        addr,
        "POST",
        "/v1/query",
        &[("x-osql-min-seq", "4"), ("x-osql-trace-id", "stale-probe-1")],
        &body,
    );
    assert_eq!(stale.status, 503, "{}", stale.body);

    // the rejection left a flight record under the caller's trace ID ...
    let trace = one_shot(addr, "GET", "/debug/trace/stale-probe-1", &[], "");
    assert_eq!(trace.status, 200, "{}", trace.body);
    assert!(trace.body.contains("\"outcome\":\"stale\""), "{}", trace.body);
    assert!(trace.body.contains("below requested floor 4"), "{}", trace.body);

    // ... and both the counter and the per-state tally moved
    let metrics = one_shot(addr, "GET", "/metrics", &[], "");
    assert!(metrics.body.contains("repl_stale_reads_total 1"), "{}", metrics.body);
    assert!(metrics.body.contains("repl_stale_rejections_total 1"), "{}", metrics.body);

    assert!(server.shutdown());
}

#[test]
fn a_primary_ignores_the_floor_and_reports_its_role() {
    let bench = tiny_world();
    let rt = common::plain_runtime(&bench, 2);
    let server = Server::start(
        rt,
        "127.0.0.1:0",
        ServerConfig { read_timeout: Duration::from_secs(2), ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    let ex = &bench.dev[0];

    // a primary is the head of the stream: any floor is trivially met
    let answer = one_shot(
        addr,
        "POST",
        "/v1/query",
        &[("x-osql-min-seq", "999")],
        &query_body(&ex.db_id, &ex.question, &ex.evidence),
    );
    assert_eq!(answer.status, 200, "{}", answer.body);
    assert_eq!(answer.header("x-osql-applied-seq"), None);

    let health = one_shot(addr, "GET", "/healthz", &[], "");
    assert!(health.body.contains("\"role\":\"primary\""), "{}", health.body);

    assert!(server.shutdown());
}
