//! Shared helpers for the server integration tests: a tiny world served
//! by a runtime (optionally behind a gateable LLM so tests can park the
//! pipeline deterministically), and a minimal HTTP client that parses
//! one response at a time off a persistent connection.
#![allow(dead_code)]

use llmsim::{ChatRequest, ChatResponse, LanguageModel, ModelProfile, Oracle, SimLlm};
use opensearch_sql::PipelineConfig;
use osql_runtime::{AssetCache, Runtime, RuntimeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use osql_chk::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// An LLM wrapper whose completions block while the gate is closed —
/// lets a test hold a pipeline run in flight at a known point.
pub struct GateLlm {
    inner: Arc<dyn LanguageModel>,
    open: Mutex<bool>,
    cv: Condvar,
}

impl GateLlm {
    pub fn new(inner: Arc<dyn LanguageModel>) -> Self {
        GateLlm { inner, open: Mutex::new(true), cv: Condvar::new() }
    }

    pub fn set_open(&self, open: bool) {
        *self.open.lock() = open;
        self.cv.notify_all();
    }
}

impl LanguageModel for GateLlm {
    fn complete(&self, req: &ChatRequest) -> ChatResponse {
        let mut open = self.open.lock();
        while !*open {
            open = self.cv.wait(open);
        }
        drop(open);
        self.inner.complete(req)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

pub fn tiny_world() -> Arc<datagen::Benchmark> {
    Arc::new(datagen::generate(&datagen::Profile::tiny()))
}

fn sim_llm(bench: &Arc<datagen::Benchmark>) -> Arc<SimLlm> {
    Arc::new(SimLlm::new(Arc::new(Oracle::new(bench.clone())), ModelProfile::gpt_4o(), 0x5EED))
}

/// Runtime over the tiny world with the default (always-open) LLM.
pub fn plain_runtime(bench: &Arc<datagen::Benchmark>, workers: usize) -> Arc<Runtime> {
    let assets = Arc::new(AssetCache::new(bench.clone(), sim_llm(bench), PipelineConfig::fast()));
    Arc::new(Runtime::start(assets, RuntimeConfig::with_workers(workers)))
}

/// Runtime whose pipeline LLM calls block while the returned gate is
/// closed. The gate starts open (asset construction calls the LLM).
pub fn gated_runtime(
    bench: &Arc<datagen::Benchmark>,
    workers: usize,
    queue_capacity: usize,
    result_cache_capacity: usize,
) -> (Arc<GateLlm>, Arc<Runtime>) {
    let gate = Arc::new(GateLlm::new(sim_llm(bench)));
    let assets =
        Arc::new(AssetCache::new(bench.clone(), gate.clone(), PipelineConfig::fast()));
    let rt = Arc::new(Runtime::start(
        assets,
        RuntimeConfig {
            workers,
            queue_capacity,
            result_cache_capacity,
            ..RuntimeConfig::default()
        },
    ));
    (gate, rt)
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct ParsedResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl ParsedResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// A persistent client connection.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    pub fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let writer = stream.try_clone().unwrap();
        Conn { reader: BufReader::new(stream), writer }
    }

    /// Send raw bytes without framing (for malformed-input tests).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write");
        self.writer.flush().unwrap();
    }

    /// Read everything until the peer closes (for close-delimited reads).
    pub fn read_to_end(&mut self) -> String {
        let mut out = Vec::new();
        let _ = self.reader.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Send one request and parse its response off the same connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> ParsedResponse {
        let mut msg = format!("{method} {path} HTTP/1.1\r\nhost: test\r\n");
        for (k, v) in headers {
            msg.push_str(&format!("{k}: {v}\r\n"));
        }
        if !body.is_empty() {
            msg.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        msg.push_str("\r\n");
        msg.push_str(body);
        self.send_raw(msg.as_bytes());
        self.read_response()
    }

    /// Parse one `Content-Length`-framed response.
    pub fn read_response(&mut self) -> ParsedResponse {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {line:?}"));
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
            }
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .expect("content-length header");
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).expect("body");
        ParsedResponse { status, headers, body: String::from_utf8(body).expect("utf-8 body") }
    }
}

/// One-shot request on a fresh connection.
pub fn one_shot(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> ParsedResponse {
    let mut conn = Conn::open(addr);
    let mut hs: Vec<(&str, &str)> = headers.to_vec();
    hs.push(("connection", "close"));
    conn.request(method, path, &hs, body)
}

/// JSON body for `POST /v1/query`.
pub fn query_body(db_id: &str, question: &str, evidence: &str) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        "{{\"db_id\":\"{}\",\"question\":\"{}\",\"evidence\":\"{}\"}}",
        escape(db_id),
        escape(question),
        escape(evidence)
    )
}
