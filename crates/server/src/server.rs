//! The sharded HTTP server over an [`osql_runtime::Runtime`].
//!
//! N acceptor shards block on `accept` against one shared listener
//! (`try_clone` per shard); each accepted connection gets its own handler
//! thread running a keep-alive request loop, so slow clients occupy a
//! connection thread, never an acceptor. Handler threads submit into the
//! runtime's bounded queue with `try_submit` — a full queue sheds the
//! request as a 429 whose `Retry-After` comes from the queue's measured
//! drain rate, so backpressure is advertised honestly instead of by
//! stalling the socket.
//!
//! Graceful shutdown flips the stop flag, wakes every acceptor with a
//! loopback self-connect, then waits for in-flight connections to drain
//! (bounded by the read timeout: an idle keep-alive connection notices
//! the flag at its next timeout tick and closes).

use crate::coalesce::{Coalescer, Joined, Rendered};
use crate::http::{self, HttpError, Limits, Request};
use crate::json::{self, ObjectWriter};
use crate::quota::{Admit, QuotaConfig, QuotaRegistry};
use osql_repl::ReplState;
use osql_runtime::{
    normalize_question, retry_after_secs, CancelReason, QueryRequest, ResultKey, Runtime,
    ServeError, SubmitError,
};
use osql_trace::active;
use osql_trace::{RequestOutcome, RequestRecord};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use osql_chk::atomic::{AtomicBool, Ordering};
use osql_chk::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Acceptor shard threads sharing the listener.
    pub shards: usize,
    /// HTTP parser caps.
    pub limits: Limits,
    /// Socket read timeout; also bounds how long an idle keep-alive
    /// connection can delay shutdown.
    pub read_timeout: Duration,
    /// Per-API-key token-bucket quota (`None` disables quotas).
    pub quota: Option<QuotaConfig>,
    /// Follower serving mode: the replication state the local apply loop
    /// publishes into. When set, `POST /v1/query` honours the
    /// `X-Osql-Min-Seq` bounded-staleness header (503 + `Retry-After`
    /// when the replica has not yet applied the requested floor),
    /// successful answers carry `X-Osql-Applied-Seq`, and `/healthz` and
    /// `/metrics` expose per-database replication lag. `None` serves as
    /// a primary, which trivially satisfies any staleness floor.
    pub repl: Option<Arc<ReplState>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            quota: None,
            repl: None,
        }
    }
}

/// Counts live connection-handler threads so shutdown can drain them.
#[derive(Default)]
struct ConnTracker {
    live: Mutex<usize>,
    idle: Condvar,
}

impl ConnTracker {
    fn begin(&self) {
        *self.live.lock() += 1;
    }

    fn end(&self) {
        let mut live = self.live.lock();
        *live -= 1;
        if *live == 0 {
            self.idle.notify_all();
        }
    }

    fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut live = self.live.lock();
        while *live > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            live = self.idle.wait_timeout(live, left).0;
        }
        true
    }
}

/// Shared state every shard and connection thread sees.
struct Shared {
    rt: Arc<Runtime>,
    coalescer: Arc<Coalescer>,
    quota: Option<QuotaRegistry>,
    config: ServerConfig,
    stop: AtomicBool,
    conns: ConnTracker,
}

/// A running server; dropping it without [`Server::shutdown`] leaves the
/// shards serving until process exit.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shards: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving `rt`.
    pub fn start(rt: Arc<Runtime>, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            rt,
            coalescer: Arc::new(Coalescer::new()),
            quota: config.quota.map(QuotaRegistry::new),
            config,
            stop: AtomicBool::new(false),
            conns: ConnTracker::default(),
        });
        let mut shards = Vec::new();
        for shard in 0..shared.config.shards.max(1) {
            let listener = listener.try_clone()?;
            let shared = shared.clone();
            shards.push(
                std::thread::Builder::new()
                    .name(format!("osql-http-{shard}"))
                    .spawn(move || accept_loop(listener, shared))
                    .expect("spawn acceptor shard"),
            );
        }
        Ok(Server { addr, shared, shards })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the acceptors, and drain in-flight
    /// connections. Returns whether the drain completed before its
    /// deadline (read timeout + 1s grace).
    pub fn shutdown(self) -> bool {
        self.shared.stop.store(true, Ordering::SeqCst);
        for _ in 0..self.shards.len() {
            // unblock one accept() per shard; errors only mean the shard
            // already noticed the flag
            let _ = TcpStream::connect(self.addr);
        }
        for shard in self.shards {
            let _ = shard.join();
        }
        let grace = self.shared.config.read_timeout + Duration::from_secs(1);
        self.shared.conns.wait_idle(grace)
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return; // wake-up connection (or a straggler): refuse
                }
                shared.conns.begin();
                let conn_shared = shared.clone();
                let spawned = std::thread::Builder::new()
                    .name("osql-http-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        conn_shared.conns.end();
                    });
                if spawned.is_err() {
                    shared.conns.end();
                }
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // transient accept error (e.g. EMFILE): keep accepting
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader, &shared.config.limits) {
            Ok(None) => return,
            Err(HttpError::Io(_)) => return, // timeout or reset: close silently
            Err(err) => {
                // parse error: answer once, then close — the byte stream
                // is unsynchronized so the connection cannot be reused
                let body = json::error_body(&match &err {
                    HttpError::BadRequest(msg) => msg.clone(),
                    HttpError::HeadersTooLarge => "headers too large".to_owned(),
                    HttpError::BodyTooLarge => "body too large".to_owned(),
                    HttpError::Io(_) => unreachable!("handled above"),
                });
                let _ = http::write_response(
                    &mut writer,
                    err.status(),
                    "application/json",
                    &[],
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Ok(Some(req)) => {
                shared
                    .rt
                    .metrics()
                    .counter_with("http_requests_total", &[("method", &req.method)])
                    .inc();
                let keep_alive = req.keep_alive && !shared.stop.load(Ordering::SeqCst);
                let out = route(shared, &req);
                shared
                    .rt
                    .metrics()
                    .counter_with(
                        "http_responses_total",
                        &[("status", &out.rendered.status.to_string())],
                    )
                    .inc();
                let mut extra = out.extra_headers;
                if let Some(secs) = out.rendered.retry_after_secs {
                    extra.push(("retry-after".to_owned(), secs.to_string()));
                }
                if http::write_response(
                    &mut writer,
                    out.rendered.status,
                    out.content_type,
                    &extra,
                    &out.rendered.body,
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
        }
    }
}

/// A routed response: shared rendered payload plus per-connection extras.
struct Routed {
    rendered: Arc<Rendered>,
    content_type: &'static str,
    extra_headers: Vec<(String, String)>,
}

impl Routed {
    fn json(status: u16, body: String) -> Routed {
        Routed {
            rendered: Arc::new(Rendered {
                status,
                body: Arc::new(body.into_bytes()),
                retry_after_secs: None,
                trace_id: None,
            }),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    fn error(status: u16, message: &str) -> Routed {
        Routed::json(status, json::error_body(message))
    }
}

fn route(shared: &Shared, req: &Request) -> Routed {
    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => {
            let mut text = shared.rt.metrics().render_prometheus();
            text.push_str(&shared.rt.windowed().render_prometheus());
            if let Some(state) = &shared.config.repl {
                text.push_str(&repl_exposition(state));
            }
            Routed {
                rendered: Arc::new(Rendered {
                    status: 200,
                    body: Arc::new(text.into_bytes()),
                    retry_after_secs: None,
                    trace_id: None,
                }),
                content_type: "text/plain; version=0.0.4",
                extra_headers: Vec::new(),
            }
        }
        ("GET", "/v1/catalog") => catalog(shared),
        ("POST", "/v1/query") => query(shared, req),
        ("GET", "/debug/requests") => debug_records(shared, req, false),
        ("GET", "/debug/slow") => debug_records(shared, req, true),
        ("GET", "/debug/slo") => Routed::json(200, shared.rt.slo_report().to_json()),
        ("GET", path) if path.starts_with("/debug/trace/") => {
            debug_trace(shared, &path["/debug/trace/".len()..])
        }
        ("GET", "/v1/query") | ("POST", "/metrics" | "/healthz" | "/v1/catalog") => {
            Routed::error(405, "method not allowed")
        }
        _ => Routed::error(404, "no such endpoint"),
    }
}

fn healthz(shared: &Shared) -> Routed {
    let stats = shared.rt.queue_stats();
    let flight = shared.rt.flight();
    let mut obj = ObjectWriter::new();
    obj.str_field("status", "ok")
        .u64_field("queue_depth", stats.depth as u64)
        .u64_field("queue_capacity", stats.capacity as u64)
        .u64_field("inflight_coalesced_keys", shared.coalescer.inflight_len() as u64)
        .u64_field("flight_recorder_depth", flight.depth() as u64)
        .u64_field("flight_recorder_capacity", flight.capacity() as u64)
        .u64_field("flight_inflight", flight.inflight_len() as u64);
    match flight.last_slow_age_secs() {
        Some(age) => obj.u64_field("last_slow_age_secs", age),
        None => obj.raw_field("last_slow_age_secs", "null"),
    };
    match &shared.config.repl {
        Some(state) => {
            obj.str_field("role", "follower")
                .u64_field("repl_max_lag", state.max_lag())
                .u64_field("repl_stale_rejections", state.stale_rejections());
            let mut dbs = String::from("[");
            for (i, (db, status)) in state.snapshot().iter().enumerate() {
                if i > 0 {
                    dbs.push(',');
                }
                let mut entry = ObjectWriter::new();
                entry
                    .str_field("db_id", db)
                    .u64_field("applied_seq", status.applied_seq)
                    .u64_field("target_seq", status.target_seq)
                    .u64_field("lag", status.lag())
                    .u64_field("polls", status.polls);
                match &status.last_error {
                    Some(err) => entry.str_field("last_error", err),
                    None => entry.raw_field("last_error", "null"),
                };
                dbs.push_str(&entry.finish());
            }
            dbs.push(']');
            obj.raw_field("replication", &dbs);
        }
        None => {
            obj.str_field("role", "primary");
        }
    }
    Routed::json(200, obj.finish())
}

/// `/debug/requests` and `/debug/slow`: recent flight records, newest
/// first, without tail-sampled payloads (`?n=` caps the count).
fn debug_records(shared: &Shared, req: &Request, slow_only: bool) -> Routed {
    let n = req.query_param("n").and_then(|v| v.parse().ok()).unwrap_or(32usize);
    let flight = shared.rt.flight();
    let records = if slow_only { flight.slow(n) } else { flight.recent(n) };
    let items: Vec<String> = records.iter().map(|r| r.to_json(false)).collect();
    let mut obj = ObjectWriter::new();
    obj.u64_field("count", items.len() as u64)
        .raw_field(if slow_only { "slow" } else { "requests" }, &format!("[{}]", items.join(",")));
    Routed::json(200, obj.finish())
}

/// `/debug/trace/<id>`: one flight record by trace ID, payloads included
/// (rendered span tree and `EXPLAIN` when tail sampling retained them).
fn debug_trace(shared: &Shared, id: &str) -> Routed {
    if !osql_trace::valid_trace_id(id) {
        return Routed::error(400, "invalid trace id");
    }
    match shared.rt.flight().lookup(id) {
        Some(rec) => Routed::json(200, rec.to_json(true)),
        None => Routed::error(404, "no such trace id (evicted or never recorded)"),
    }
}

/// Prometheus-style exposition of the follower's replication state,
/// appended to the runtime registry's `/metrics` output: per-database
/// applied/target sequences and lag plus the fetch/apply/rejection
/// totals, so a dashboard sees staleness the same way admission does.
fn repl_exposition(state: &ReplState) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (db, status) in state.snapshot() {
        let _ = writeln!(out, "repl_applied_seq{{db=\"{db}\"}} {}", status.applied_seq);
        let _ = writeln!(out, "repl_target_seq{{db=\"{db}\"}} {}", status.target_seq);
        let _ = writeln!(out, "repl_lag{{db=\"{db}\"}} {}", status.lag());
        let _ = writeln!(out, "repl_polls_total{{db=\"{db}\"}} {}", status.polls);
        let _ = writeln!(
            out,
            "repl_segments_fetched_total{{db=\"{db}\"}} {}",
            status.segments_fetched
        );
        let _ = writeln!(out, "repl_txns_applied_total{{db=\"{db}\"}} {}", status.txns_applied);
    }
    let _ = writeln!(out, "repl_stale_rejections_total {}", state.stale_rejections());
    out
}

fn catalog(shared: &Shared) -> Routed {
    let assets = shared.rt.assets();
    let mut obj = ObjectWriter::new();
    match assets.catalog() {
        Some(cat) => {
            obj.str_field("mode", "paged");
            if cat.budget() == u64::MAX {
                obj.raw_field("budget_bytes", "null");
            } else {
                obj.u64_field("budget_bytes", cat.budget());
            }
            obj.u64_field("resident_bytes", cat.resident_bytes());
            let resident = cat.resident();
            let mut entries = String::from("[");
            for (i, (id, bytes)) in resident.iter().enumerate() {
                if i > 0 {
                    entries.push(',');
                }
                let mut entry = ObjectWriter::new();
                entry.str_field("db_id", id).u64_field("bytes", *bytes);
                entries.push_str(&entry.finish());
            }
            entries.push(']');
            obj.raw_field("resident", &entries);
            match cat.available() {
                Ok(ids) => {
                    obj.raw_field("on_disk", &json::string_array(&ids));
                }
                Err(e) => {
                    obj.str_field("scan_error", &e.to_string());
                }
            }
            obj.u64_field("loads", cat.loads()).u64_field("evictions", cat.evictions());
        }
        None => {
            obj.str_field("mode", "eager").u64_field("resident_dbs", assets.len() as u64);
        }
    }
    Routed::json(200, obj.finish())
}

/// Publish a one-event volatile trace so coalesce/shed decisions are
/// visible in the trace ring without a pipeline run to attach to.
fn trace_event(shared: &Shared, name: &'static str, labels: &[(&'static str, &str)]) {
    active::push();
    active::event_volatile(name, labels, &[]);
    if let Some(trace) = active::pop() {
        shared.rt.traces().publish(Arc::new(trace));
    }
}

fn shed_response(shared: &Shared, group: usize, trace_id: &str) -> Rendered {
    let retry = shared.rt.queue_stats().estimated_drain_secs();
    let mut obj = ObjectWriter::new();
    obj.str_field("error", "queue full")
        .str_field("trace_id", trace_id)
        .u64_field("retry_after_secs", retry)
        .u64_field("coalesced_group", group as u64);
    Rendered {
        status: 429,
        body: Arc::new(obj.finish().into_bytes()),
        retry_after_secs: Some(retry),
        trace_id: Some(trace_id.to_owned()),
    }
}

/// A one-shot flight record for a request the runtime never served
/// (quota rejection, shed, coalesced waiter).
fn flight_note(
    trace_id: &str,
    db_id: &str,
    question: &str,
    outcome: RequestOutcome,
    error: Option<String>,
) -> RequestRecord {
    let mut rec = RequestRecord::new(trace_id, db_id);
    rec.question_hash = osql_trace::flight::fnv1a(normalize_question(question).as_bytes());
    rec.outcome = outcome;
    rec.error = error;
    rec
}

fn query(shared: &Shared, req: &Request) -> Routed {
    // Accept a caller-supplied trace ID or mint one; either way the ID is
    // fixed before admission so rejected requests are traceable too.
    let trace_id = match req.header("x-osql-trace-id") {
        Some(id) if osql_trace::valid_trace_id(id) => id.to_owned(),
        Some(_) => {
            return Routed::error(
                400,
                "invalid X-Osql-Trace-Id (1-64 chars from [A-Za-z0-9._-])",
            )
        }
        None => shared.rt.next_trace_id(),
    };
    let id_header = vec![("x-osql-trace-id".to_owned(), trace_id.clone())];

    let fields = match json::parse_string_object(&req.body) {
        Ok(fields) => fields,
        Err(msg) => return Routed::error(400, &msg),
    };
    let Some(db_id) = json::field(&fields, "db_id") else {
        return Routed::error(400, "missing field \"db_id\"");
    };
    let Some(question) = json::field(&fields, "question") else {
        return Routed::error(400, "missing field \"question\"");
    };
    let evidence = json::field(&fields, "evidence").unwrap_or("");

    // Bounded-staleness floor: the caller's minimum acceptable applied
    // sequence. Parsed before admission so a malformed header is a 400
    // even on a primary (where any floor is trivially met).
    let min_seq = match req.header("x-osql-min-seq") {
        Some(v) => match v.trim().parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                return Routed::error(
                    400,
                    "invalid X-Osql-Min-Seq (expected a decimal commit sequence)",
                )
            }
        },
        None => None,
    };

    if let Some(quota) = &shared.quota {
        let api_key = req.header("x-api-key").unwrap_or("anonymous");
        if let Admit::Rejected { retry_after_secs } = quota.admit(api_key) {
            shared.rt.metrics().counter("quota_rejections_total").inc();
            shared.rt.flight().record(flight_note(
                &trace_id,
                db_id,
                question,
                RequestOutcome::Quota,
                Some("quota exceeded".to_owned()),
            ));
            let mut obj = ObjectWriter::new();
            obj.str_field("error", "quota exceeded")
                .str_field("trace_id", &trace_id)
                .u64_field("retry_after_secs", retry_after_secs);
            return Routed {
                rendered: Arc::new(Rendered {
                    status: 429,
                    body: Arc::new(obj.finish().into_bytes()),
                    retry_after_secs: Some(retry_after_secs),
                    trace_id: Some(trace_id),
                }),
                content_type: "application/json",
                extra_headers: id_header,
            };
        }
    }

    // Follower mode: resolve the replica's applied position once, before
    // the coalescer — the bound checked here stays valid for the whole
    // request because `applied_seq` is monotonic (the model suite pins
    // this), so an admitted read can never observe data older than the
    // requested floor.
    let applied_seq = shared.config.repl.as_ref().and_then(|s| s.applied_seq(db_id));
    let mut extra_headers = id_header;
    if let Some(applied) = applied_seq {
        extra_headers.push(("x-osql-applied-seq".to_owned(), applied.to_string()));
    }
    if let (Some(state), Some(min)) = (&shared.config.repl, min_seq) {
        // no apply loop has reported this database yet: every floor is
        // unmet (applied position unknown, assume 0)
        let applied = applied_seq.unwrap_or(0);
        if applied < min {
            state.record_stale_rejection();
            shared.rt.metrics().counter("repl_stale_reads_total").inc();
            trace_event(shared, "http_stale_read", &[("db_id", db_id)]);
            shared.rt.flight().record(flight_note(
                &trace_id,
                db_id,
                question,
                RequestOutcome::Stale,
                Some(format!("applied_seq {applied} below requested floor {min}")),
            ));
            let retry = retry_after_secs(state.retry_hint_secs() as f64, 60);
            let mut obj = ObjectWriter::new();
            obj.str_field("error", "replica not caught up")
                .str_field("trace_id", &trace_id)
                .u64_field("applied_seq", applied)
                .u64_field("min_seq", min)
                .u64_field("retry_after_secs", retry);
            return Routed {
                rendered: Arc::new(Rendered {
                    status: 503,
                    body: Arc::new(obj.finish().into_bytes()),
                    retry_after_secs: Some(retry),
                    trace_id: Some(trace_id),
                }),
                content_type: "application/json",
                extra_headers,
            };
        }
    }

    let key = ResultKey::new(db_id, question, evidence, shared.rt.fingerprint());
    let rendered = match shared.coalescer.join(key) {
        Joined::Waiter(waiter) => {
            shared.rt.metrics().counter("coalesced_requests_total").inc();
            trace_event(shared, "http_coalesce_join", &[("db_id", db_id)]);
            let rendered = waiter.wait();
            // the waiter's own record points at the flight it rode on —
            // `/debug/trace/<leader>` has the real timings
            let mut rec = flight_note(
                &trace_id,
                db_id,
                question,
                if rendered.status == 200 { RequestOutcome::Ok } else { RequestOutcome::Error },
                (rendered.status != 200)
                    .then(|| format!("coalesced leader answered {}", rendered.status)),
            );
            rec.coalesced_into = rendered.trace_id.clone();
            shared.rt.flight().record(rec);
            rendered
        }
        Joined::Leader(token) => {
            let started = Instant::now();
            let request =
                QueryRequest::new(db_id, question, evidence).with_trace_id(trace_id.clone());
            match shared.rt.try_submit(request) {
                Err(SubmitError::QueueFull) => {
                    trace_event(shared, "http_shed", &[("db_id", db_id)]);
                    shared.rt.flight().record(flight_note(
                        &trace_id,
                        db_id,
                        question,
                        RequestOutcome::Shed,
                        Some("queue full".to_owned()),
                    ));
                    token.complete(|group| shed_response(shared, group, &trace_id))
                }
                Err(SubmitError::ShuttingDown) => {
                    shared.rt.flight().record(flight_note(
                        &trace_id,
                        db_id,
                        question,
                        RequestOutcome::Canceled,
                        Some("server is shutting down".to_owned()),
                    ));
                    token.complete(|_| Rendered {
                        status: 503,
                        body: Arc::new(br#"{"error":"server is shutting down"}"#.to_vec()),
                        retry_after_secs: None,
                        trace_id: Some(trace_id.clone()),
                    })
                }
                Ok(ticket) => {
                    let outcome = ticket.wait();
                    let total_ms = started.elapsed().as_secs_f64() * 1e3;
                    token.complete(|group| match outcome {
                        Ok(resp) => {
                            let mut obj = ObjectWriter::new();
                            obj.str_field("db_id", db_id)
                                .str_field("question", question)
                                .str_field("sql", &resp.run.final_sql)
                                .str_field("trace_id", &resp.trace_id)
                                .bool_field("from_cache", resp.from_cache)
                                .u64_field("coalesced_group", group as u64)
                                .f64_field("queue_wait_ms", resp.queue_wait_ms)
                                .f64_field("total_ms", total_ms);
                            Rendered {
                                status: 200,
                                body: Arc::new(obj.finish().into_bytes()),
                                retry_after_secs: None,
                                trace_id: Some(resp.trace_id),
                            }
                        }
                        Err(err) => {
                            let (status, message) = match &err {
                                ServeError::UnknownDb(id) => {
                                    (404, format!("unknown database {id}"))
                                }
                                ServeError::DbLoadFailed { db_id, reason } => {
                                    (503, format!("database {db_id} failed to load: {reason}"))
                                }
                                ServeError::Canceled { reason: CancelReason::Shutdown } => {
                                    (503, "server is shutting down".to_owned())
                                }
                                ServeError::Canceled { reason: CancelReason::WorkerLost } => {
                                    (500, "worker lost while serving request".to_owned())
                                }
                            };
                            Rendered {
                                status,
                                body: Arc::new(json::error_body(&message).into_bytes()),
                                retry_after_secs: None,
                                trace_id: Some(trace_id.clone()),
                            }
                        }
                    })
                }
            }
        }
    };
    Routed { rendered, content_type: "application/json", extra_headers }
}
