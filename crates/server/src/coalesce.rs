//! In-flight request coalescing (single-flight).
//!
//! Concurrent identical requests — same [`ResultKey`], i.e. same
//! database, normalized question + evidence, and pipeline-config
//! fingerprint — collapse onto one pipeline execution. The first arrival
//! becomes the *leader* and runs the request; later arrivals become
//! *waiters* parked on the leader's slot. When the leader finishes it
//! renders the response **once** (the render closure sees the final group
//! size) and every member receives the same `Arc` of bytes — responses
//! are byte-identical by construction, and waiters never re-read the
//! result cache, so a leader whose entry is evicted mid-flight cannot
//! strand them.
//!
//! The leader unregisters the key *before* publishing, so a request
//! arriving after completion starts a fresh flight (and typically hits
//! the runtime's result cache). A leader that unwinds without completing
//! publishes a 500 through its drop guard — waiters are never left
//! parked forever.

use osql_runtime::ResultKey;
use std::collections::HashMap;
use osql_chk::atomic::{AtomicUsize, Ordering};
use osql_chk::{Condvar, Mutex};
use std::sync::Arc;

/// One response, rendered once and shared by every coalesced member.
#[derive(Debug)]
pub struct Rendered {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON).
    pub body: Arc<Vec<u8>>,
    /// `Retry-After` seconds to advertise (shed responses only).
    pub retry_after_secs: Option<u64>,
    /// The trace ID of the request that produced these bytes (query
    /// responses only). Coalesced waiters read the *leader's* ID from
    /// here and record it as the flight their request rode on.
    pub trace_id: Option<String>,
}

struct Slot {
    result: Mutex<Option<Arc<Rendered>>>,
    ready: Condvar,
    members: AtomicUsize,
}

impl Slot {
    fn publish(&self, rendered: Arc<Rendered>) {
        *self.result.lock() = Some(rendered);
        self.ready.notify_all();
    }
}

/// A waiter's handle onto an in-flight request.
pub struct WaiterHandle {
    slot: Arc<Slot>,
}

impl WaiterHandle {
    /// Block until the leader publishes, then share its response.
    pub fn wait(self) -> Arc<Rendered> {
        let mut guard = self.slot.result.lock();
        loop {
            if let Some(rendered) = guard.as_ref() {
                return rendered.clone();
            }
            guard = self.slot.ready.wait(guard);
        }
    }
}

/// The leader's obligation to publish exactly one response.
pub struct LeaderToken {
    key: ResultKey,
    slot: Arc<Slot>,
    coalescer: Arc<Coalescer>,
    completed: bool,
}

impl LeaderToken {
    /// Render the response once (the closure receives the final group
    /// size, leader included) and publish it to every member.
    pub fn complete(mut self, render: impl FnOnce(usize) -> Rendered) -> Arc<Rendered> {
        // unregister first: arrivals from here on start a fresh flight
        // and the group size below is final
        self.coalescer.unregister(&self.key);
        let group = self.slot.members.load(Ordering::Acquire);
        let rendered = Arc::new(render(group));
        self.slot.publish(rendered.clone());
        self.completed = true;
        rendered
    }
}

impl Drop for LeaderToken {
    fn drop(&mut self) {
        if !self.completed {
            // leader unwound (panic between join and complete): release
            // the key and fail the waiters rather than stranding them
            self.coalescer.unregister(&self.key);
            self.slot.publish(Arc::new(Rendered {
                status: 500,
                body: Arc::new(br#"{"error":"request leader failed"}"#.to_vec()),
                retry_after_secs: None,
            trace_id: None,
            }));
        }
    }
}

/// Outcome of joining a flight.
pub enum Joined {
    /// First arrival: run the request and [`LeaderToken::complete`] it.
    Leader(LeaderToken),
    /// Duplicate of an in-flight request: wait for the leader's bytes.
    Waiter(WaiterHandle),
}

/// Registry of in-flight request keys.
#[derive(Default)]
pub struct Coalescer {
    inflight: Mutex<HashMap<ResultKey, Arc<Slot>>>,
}

impl Coalescer {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Join the flight for `key`, becoming leader or waiter.
    pub fn join(self: &Arc<Self>, key: ResultKey) -> Joined {
        let mut inflight = self.inflight.lock();
        if let Some(slot) = inflight.get(&key) {
            slot.members.fetch_add(1, Ordering::AcqRel);
            return Joined::Waiter(WaiterHandle { slot: slot.clone() });
        }
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            members: AtomicUsize::new(1),
        });
        inflight.insert(key.clone(), slot.clone());
        Joined::Leader(LeaderToken { key, slot, coalescer: self.clone(), completed: false })
    }

    /// In-flight key count (observability only).
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().len()
    }

    fn unregister(&self, key: &ResultKey) {
        self.inflight.lock().remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn key(tag: &str) -> ResultKey {
        ResultKey::new("db", tag, "", 7)
    }

    #[test]
    fn duplicates_share_the_leaders_bytes() {
        let c = Arc::new(Coalescer::new());
        let Joined::Leader(token) = c.join(key("q")) else { panic!("expected leader") };
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let Joined::Waiter(w) = c.join(key("q")) else { panic!("expected waiter") };
                w
            })
            .collect();
        let published = token.complete(|group| Rendered {
            status: 200,
            body: Arc::new(format!("{{\"group\":{group}}}").into_bytes()),
            retry_after_secs: None,
            trace_id: None,
        });
        assert_eq!(&**published.body, b"{\"group\":4}");
        for w in waiters {
            let got = w.wait();
            assert!(Arc::ptr_eq(&got.body, &published.body));
        }
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c = Arc::new(Coalescer::new());
        let Joined::Leader(a) = c.join(key("a")) else { panic!() };
        let Joined::Leader(b) = c.join(key("b")) else { panic!() };
        assert_eq!(c.inflight_len(), 2);
        a.complete(|_| Rendered { status: 200, body: Arc::new(vec![]), retry_after_secs: None, trace_id: None });
        b.complete(|_| Rendered { status: 200, body: Arc::new(vec![]), retry_after_secs: None, trace_id: None });
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn late_arrival_becomes_a_new_leader() {
        let c = Arc::new(Coalescer::new());
        let Joined::Leader(first) = c.join(key("q")) else { panic!() };
        first.complete(|_| Rendered { status: 200, body: Arc::new(vec![]), retry_after_secs: None, trace_id: None });
        assert!(matches!(c.join(key("q")), Joined::Leader(_)));
    }

    #[test]
    fn leader_unwind_fails_waiters_instead_of_stranding_them() {
        let c = Arc::new(Coalescer::new());
        let Joined::Leader(token) = c.join(key("q")) else { panic!() };
        let Joined::Waiter(w) = c.join(key("q")) else { panic!() };
        let waiter = thread::spawn(move || w.wait());
        drop(token); // leader dies without completing
        let got = waiter.join().unwrap();
        assert_eq!(got.status, 500);
        assert_eq!(c.inflight_len(), 0);
        assert!(matches!(c.join(key("q")), Joined::Leader(_)));
    }

    #[test]
    fn concurrent_joins_produce_exactly_one_leader() {
        let c = Arc::new(Coalescer::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || match c.join(key("q")) {
                    Joined::Leader(t) => {
                        t.complete(|g| Rendered {
                            status: 200,
                            body: Arc::new(format!("g={g}").into_bytes()),
                            retry_after_secs: None,
            trace_id: None,
                        });
                        true
                    }
                    Joined::Waiter(w) => {
                        w.wait();
                        false
                    }
                })
            })
            .collect();
        let leaders =
            handles.into_iter().map(|h| h.join().unwrap()).filter(|&led| led).count();
        // every thread finished; at least one led, and flights never nest
        assert!(leaders >= 1);
        assert_eq!(c.inflight_len(), 0);
    }
}
