//! # osql-server — a zero-dependency HTTP/1.1 serving layer
//!
//! Puts [`osql_runtime`]'s worker pool on the network with nothing but
//! blocking sockets from `std::net`:
//!
//! - **[`http`]** — hand-rolled HTTP/1.1 framing: request-line + header
//!   parsing under hard size caps, `Content-Length` bodies, keep-alive.
//! - **[`server`]** — N acceptor shards over one listener, a handler
//!   thread per connection, routing, and graceful drain on shutdown.
//! - **[`coalesce`]** — single-flight for concurrent identical requests:
//!   one pipeline execution, one rendered response, N byte-identical
//!   answers.
//! - **[`quota`]** — per-`X-API-Key` token buckets with honest
//!   `Retry-After`.
//! - **[`json`]** — the minimal JSON writer/reader the API speaks.
//!
//! ## Endpoints
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /v1/query` | `{"db_id","question","evidence"?}` → SQL + timings |
//! | `GET /metrics` | Prometheus-style exposition of the runtime registry |
//! | `GET /healthz` | liveness + queue snapshot + replication role/lag |
//! | `GET /v1/catalog` | demand-paged store state (or eager-mode summary) |
//!
//! ## Follower reads
//!
//! With [`ServerConfig::repl`] set (an [`osql_repl::ReplState`] the
//! local apply loop publishes into), the server serves as a read-only
//! replica with bounded staleness: a `X-Osql-Min-Seq: n` request header
//! is an admission floor — the request is only served if the replica has
//! applied commit `n`, and is otherwise rejected with `503` and an
//! honest `Retry-After`. Served responses carry `X-Osql-Applied-Seq` so
//! clients can chain floors (read-your-writes across a promote), and
//! `/healthz` + `/metrics` expose per-database applied/target sequences
//! and lag.
//!
//! ## Backpressure
//!
//! Admission control is the runtime's bounded queue: the server uses
//! `try_submit`, and a full queue becomes `429 Too Many Requests` whose
//! `Retry-After` is computed from the queue's measured drain rate
//! ([`osql_runtime::QueueStats::estimated_drain_secs`]) — the same
//! number `queue_depth`/`queue_shed_total` metrics are derived from, so
//! clients and dashboards see one consistent story.
//!
//! ```no_run
//! use std::sync::Arc;
//! use llmsim::{ModelProfile, Oracle, SimLlm};
//! use opensearch_sql::PipelineConfig;
//! use osql_runtime::{AssetCache, Runtime, RuntimeConfig};
//! use osql_server::{Server, ServerConfig};
//!
//! let bench = Arc::new(datagen::generate(&datagen::Profile::tiny()));
//! let llm = Arc::new(SimLlm::new(Arc::new(Oracle::new(bench.clone())), ModelProfile::gpt_4o(), 7));
//! let assets = Arc::new(AssetCache::new(bench, llm, PipelineConfig::fast()));
//! let rt = Arc::new(Runtime::start(assets, RuntimeConfig::with_workers(4)));
//! let server = Server::start(rt, "127.0.0.1:8080", ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod coalesce;
pub mod http;
pub mod json;
pub mod quota;
pub mod server;

pub use coalesce::{Coalescer, Joined, Rendered};
pub use http::{HttpError, Limits, Request};
pub use quota::{Admit, QuotaConfig, QuotaRegistry};
pub use server::{Server, ServerConfig};
