//! Minimal JSON writing and reading for the serving layer.
//!
//! The server keeps its dependency set to workspace crates only, so the
//! little JSON it speaks — flat response objects and flat request objects
//! whose values are strings — is hand-rolled here. The writer escapes per
//! RFC 8259; the reader accepts exactly the request shape the API
//! documents (one object, string or null values) and rejects everything
//! else with a message suitable for a 400 body.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one flat JSON object.
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    /// Start an object (`{` written).
    pub fn new() -> Self {
        ObjectWriter { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field (2 decimal places; non-finite becomes null).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.2}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-rendered JSON.
    pub fn raw_field(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return its text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Render a JSON array of string literals.
pub fn string_array(items: impl IntoIterator<Item = impl AsRef<str>>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, item.as_ref());
    }
    out.push(']');
    out
}

/// Render the standard `{"error": ...}` body.
pub fn error_body(message: &str) -> String {
    let mut obj = ObjectWriter::new();
    obj.str_field("error", message);
    obj.finish()
}

// ---- reader ------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // multi-byte UTF-8: re-decode from the byte before pos
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty utf-8");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }
}

/// Parse one flat JSON object whose values are strings (or `null`,
/// which is skipped). Returns `(key, value)` pairs in document order.
pub fn parse_string_object(body: &[u8]) -> Result<Vec<(String, String)>, String> {
    let mut r = Reader { bytes: body, pos: 0 };
    r.skip_ws();
    r.expect(b'{').map_err(|_| "request body must be a JSON object".to_string())?;
    let mut fields = Vec::new();
    r.skip_ws();
    if r.peek() == Some(b'}') {
        r.pos += 1;
    } else {
        loop {
            r.skip_ws();
            let key = r.string()?;
            r.skip_ws();
            r.expect(b':')?;
            r.skip_ws();
            if r.literal("null") {
                // absent value
            } else if r.peek() == Some(b'"') {
                let value = r.string()?;
                fields.push((key, value));
            } else {
                return Err(format!("field \"{key}\" must be a string"));
            }
            r.skip_ws();
            match r.peek() {
                Some(b',') => r.pos += 1,
                Some(b'}') => {
                    r.pos += 1;
                    break;
                }
                _ => return Err("expected ',' or '}' in object".into()),
            }
        }
    }
    r.skip_ws();
    if r.pos != body.len() {
        return Err("trailing bytes after JSON object".into());
    }
    Ok(fields)
}

/// Look up a field parsed by [`parse_string_object`].
pub fn field<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_nests() {
        let mut obj = ObjectWriter::new();
        obj.str_field("q", "say \"hi\"\n")
            .u64_field("n", 3)
            .bool_field("ok", true)
            .f64_field("ms", 1.5)
            .raw_field("ids", &string_array(["a", "b"]));
        assert_eq!(
            obj.finish(),
            r#"{"q":"say \"hi\"\n","n":3,"ok":true,"ms":1.50,"ids":["a","b"]}"#
        );
    }

    #[test]
    fn reader_round_trips_strings() {
        let body = r#" {"db_id":"x","question":"total \"sales\" é?","evidence":null} "#;
        let fields = parse_string_object(body.as_bytes()).unwrap();
        assert_eq!(field(&fields, "db_id"), Some("x"));
        assert_eq!(field(&fields, "question"), Some("total \"sales\" é?"));
        assert_eq!(field(&fields, "evidence"), None);
    }

    #[test]
    fn reader_rejects_malformed_bodies() {
        assert!(parse_string_object(b"[1,2]").is_err());
        assert!(parse_string_object(b"{\"a\":1}").is_err());
        assert!(parse_string_object(b"{\"a\":\"b\"} extra").is_err());
        assert!(parse_string_object(b"{\"a\":\"b\"").is_err());
        assert!(parse_string_object(b"{}").unwrap().is_empty());
    }

    #[test]
    fn reader_handles_multibyte_utf8() {
        let fields = parse_string_object("{\"q\":\"café ≠ 咖啡\"}".as_bytes()).unwrap();
        assert_eq!(field(&fields, "q"), Some("café ≠ 咖啡"));
    }
}
