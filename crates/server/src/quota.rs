//! Per-API-key token-bucket quotas.
//!
//! Each distinct `X-API-Key` value gets its own bucket of `capacity`
//! tokens refilling continuously at `refill_per_sec`. A request costs one
//! token; an empty bucket yields a rejection carrying the exact
//! `Retry-After` the client needs for its next token. Buckets are created
//! lazily and bounded in number so unknown keys cannot grow the map
//! without limit — beyond the cap, the least-recently-used idle bucket is
//! recycled (an idle bucket is full, so recycling never forgives debt).

use std::collections::HashMap;
use std::time::Instant;

/// Token-bucket parameters shared by every key.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Burst size: tokens a fresh or long-idle key holds.
    pub capacity: f64,
    /// Sustained rate: tokens added per second.
    pub refill_per_sec: f64,
    /// Max distinct keys tracked at once.
    pub max_keys: usize,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig { capacity: 16.0, refill_per_sec: 8.0, max_keys: 1024 }
    }
}

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Token taken; serve the request.
    Granted,
    /// Bucket empty; retry after this many whole seconds.
    Rejected {
        /// Seconds until the bucket refills one token.
        retry_after_secs: u64,
    },
}

struct Bucket {
    tokens: f64,
    refreshed: Instant,
    touched: Instant,
}

/// All buckets, keyed by API key.
pub struct QuotaRegistry {
    config: QuotaConfig,
    buckets: osql_chk::Mutex<HashMap<String, Bucket>>,
}

impl QuotaRegistry {
    /// Empty registry under one shared configuration.
    pub fn new(config: QuotaConfig) -> Self {
        QuotaRegistry { config, buckets: osql_chk::Mutex::new(HashMap::new()) }
    }

    /// Spend one token from `key`'s bucket (clock injected for tests).
    pub fn admit_at(&self, key: &str, now: Instant) -> Admit {
        let mut buckets = self.buckets.lock();
        if !buckets.contains_key(key) && buckets.len() >= self.config.max_keys.max(1) {
            // recycle the least-recently-touched bucket; a long-idle
            // bucket has refilled to capacity, so dropping it loses no debt
            if let Some(oldest) =
                buckets.iter().min_by_key(|(_, b)| b.touched).map(|(k, _)| k.clone())
            {
                buckets.remove(&oldest);
            }
        }
        let bucket = buckets.entry(key.to_owned()).or_insert(Bucket {
            tokens: self.config.capacity,
            refreshed: now,
            touched: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refreshed).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * self.config.refill_per_sec).min(self.config.capacity);
        bucket.refreshed = now;
        bucket.touched = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Admit::Granted
        } else {
            let deficit = 1.0 - bucket.tokens;
            // same rounding helper as admission-control shed responses, so
            // every Retry-After in the server rounds identically
            let estimate = deficit / self.config.refill_per_sec.max(f64::EPSILON);
            Admit::Rejected { retry_after_secs: osql_runtime::retry_after_secs(estimate, 3600) }
        }
    }

    /// Spend one token from `key`'s bucket.
    pub fn admit(&self, key: &str) -> Admit {
        self.admit_at(key, Instant::now())
    }

    /// Distinct keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn registry(capacity: f64, rate: f64) -> QuotaRegistry {
        QuotaRegistry::new(QuotaConfig { capacity, refill_per_sec: rate, max_keys: 4 })
    }

    #[test]
    fn burst_then_reject_with_retry_after() {
        let q = registry(3.0, 2.0);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(q.admit_at("k", t0), Admit::Granted);
        }
        let Admit::Rejected { retry_after_secs } = q.admit_at("k", t0) else {
            panic!("expected rejection");
        };
        assert_eq!(retry_after_secs, 1); // 1 token / 2 per sec → ceil(0.5)
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let q = registry(2.0, 1.0);
        let t0 = Instant::now();
        assert_eq!(q.admit_at("k", t0), Admit::Granted);
        assert_eq!(q.admit_at("k", t0), Admit::Granted);
        assert!(matches!(q.admit_at("k", t0), Admit::Rejected { .. }));
        let later = t0 + Duration::from_secs(1);
        assert_eq!(q.admit_at("k", later), Admit::Granted);
        // capacity caps the refill: a long sleep doesn't bank extra burst
        let much_later = t0 + Duration::from_secs(3600);
        assert_eq!(q.admit_at("k", much_later), Admit::Granted);
        assert_eq!(q.admit_at("k", much_later), Admit::Granted);
        assert!(matches!(q.admit_at("k", much_later), Admit::Rejected { .. }));
    }

    #[test]
    fn keys_are_isolated() {
        let q = registry(1.0, 0.5);
        let t0 = Instant::now();
        assert_eq!(q.admit_at("a", t0), Admit::Granted);
        assert!(matches!(q.admit_at("a", t0), Admit::Rejected { .. }));
        assert_eq!(q.admit_at("b", t0), Admit::Granted);
    }

    #[test]
    fn key_count_is_bounded() {
        let q = registry(1.0, 1.0);
        let t0 = Instant::now();
        for i in 0u64..16 {
            q.admit_at(&format!("key-{i}"), t0 + Duration::from_millis(i));
        }
        assert!(q.tracked_keys() <= 4, "tracked {}", q.tracked_keys());
    }
}
