//! Hand-rolled HTTP/1.1 message framing over blocking sockets.
//!
//! Supports exactly what the serving layer needs: request-line + header
//! parsing with hard size caps, `Content-Length` bodies, and keep-alive
//! semantics (1.1 persistent by default, `Connection: close` honored,
//! 1.0 close-by-default). Anything outside that subset — chunked
//! transfer, upgrades, multi-line headers — is rejected with a typed
//! error the connection loop turns into a 4xx and a clean close, so a
//! hostile or confused client can never wedge an acceptor shard.

use std::io::{self, BufRead, Write};

/// Parser caps. Oversize input fails fast with a typed error instead of
/// buffering without bound.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Request line + all header lines, in bytes.
    pub max_header_bytes: usize,
    /// Declared `Content-Length` ceiling, in bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_header_bytes: 16 * 1024, max_body_bytes: 256 * 1024 }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request → 400.
    BadRequest(String),
    /// Request line + headers exceeded [`Limits::max_header_bytes`] → 431.
    HeadersTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`] → 413.
    BodyTooLarge,
    /// Socket error or timeout; no response is owed.
    Io(io::Error),
}

impl HttpError {
    /// The status code this error maps to (0 when none is owed).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Io(_) => 0,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub target: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should persist after the response.
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup (name must be lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The target's path, with any query string stripped.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Value of `name` in the target's query string, if present (no
    /// percent-decoding — debug-endpoint parameters are plain tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let (_, query) = self.target.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// Read one line (up to CRLF or LF), enforcing the shared header budget.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 1];
    loop {
        // byte-at-a-time via BufRead is buffered underneath; the budget
        // bounds total work per header block
        match reader.read(&mut chunk) {
            Ok(0) => {
                if raw.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                return Err(HttpError::BadRequest("truncated header line".into()));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(HttpError::HeadersTooLarge);
                }
                *budget -= 1;
                if chunk[0] == b'\n' {
                    break;
                }
                raw.push(chunk[0]);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("header line is not utf-8".into()))
}

/// Read and parse one request. `Ok(None)` means the peer closed the
/// connection cleanly before sending another request.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    let mut budget = limits.max_header_bytes;
    let Some(line) = read_line(reader, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest(format!("malformed request line: {line:?}"))),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!("malformed method: {method:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest(format!("unsupported version: {version:?}"))),
    };

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, &mut budget)? else {
            return Err(HttpError::BadRequest("connection closed mid-headers".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header line: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length: {v:?}")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
    }

    Ok(Some(Request {
        method: method.to_owned(),
        target: target.to_owned(),
        headers,
        body,
        keep_alive,
    }))
}

/// Reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one response: status line, standard headers, any extras, body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(input: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(input.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_request_with_body_and_headers() {
        let req = parse(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nX-API-Key: k1\r\n\
             Content-Length: 4\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/query");
        assert_eq!(req.header("x-api-key"), Some("k1"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        assert!(parse("GET / HTTP/1.1\r\n\r\n").unwrap().unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap().keep_alive);
        assert!(
            parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().unwrap().keep_alive
        );
    }

    #[test]
    fn malformed_inputs_are_typed() {
        assert!(matches!(parse("garbage\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse("GET /\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse("GET / HTTP/2.0\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse("GET / HTTP/1.1\r\nnocolon\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn size_caps_are_enforced() {
        let limits = Limits { max_header_bytes: 64, max_body_bytes: 8 };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert!(matches!(
            read_request(&mut BufReader::new(long.as_bytes()), &limits),
            Err(HttpError::HeadersTooLarge)
        ));
        let fat = "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert!(matches!(
            read_request(&mut BufReader::new(fat.as_bytes()), &limits),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn responses_frame_correctly() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            &[("retry-after".to_owned(), "7".to_owned())],
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("retry-after: 7\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"), "{text}");
        assert!(text.ends_with("connection: close\r\n\r\n{}"), "{text}");
    }
}
