//! `SimLlm` — the deterministic noisy-oracle language model.
//!
//! It implements [`LanguageModel`] by parsing the structured prompt
//! protocol ([`crate::proto`]), recovering the question's intent from the
//! [`Oracle`], degrading it with [`crate::corrupt`] according to measured
//! prompt quality, and rendering the response in whichever output format
//! the prompt requested. All randomness is derived from
//! `(model seed, question, seed_tag, sample index)`, so whole experiments
//! are bit-for-bit reproducible.

use crate::chat::{count_tokens, model_latency_ms, ChatRequest, ChatResponse, LanguageModel};
use crate::corrupt::{sample_candidate, Candidate, PromptQuality, SampleCtx, Suppression};
use crate::oracle::Oracle;
use crate::profile::{ErrorClass, ModelProfile};
use crate::proto::{self, OutputFormat};
use datagen::{BuiltDb, Difficulty, QuerySpec, SelectSpec};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Cumulative usage counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Usage {
    /// Completed requests.
    pub calls: u64,
    /// Total prompt tokens.
    pub prompt_tokens: u64,
    /// Total completion tokens.
    pub completion_tokens: u64,
}

/// A question's (potential) sticky misreading.
struct Misread {
    /// The wrong-but-executable interpretation, when one exists.
    target: Option<QuerySpec>,
    /// Whether the model is committed to it for this question.
    sticky: bool,
    /// The misread probability that produced the sticky draw.
    q: f64,
    /// Base spillover rate of *sampled* (non-greedy) candidates onto the
    /// wrong reading. CoT pins sampled reasoning down; without it, the
    /// beam drifts onto the systematic misreading — which is exactly why
    /// the paper finds voting gains little without CoT (Table 7).
    spill_base: f64,
}

/// The simulated language model.
pub struct SimLlm {
    oracle: Arc<Oracle>,
    profile: ModelProfile,
    seed: u64,
    usage: Mutex<Usage>,
}

impl SimLlm {
    /// Create a simulator over an oracle with a model profile.
    pub fn new(oracle: Arc<Oracle>, profile: ModelProfile, seed: u64) -> Self {
        SimLlm { oracle, profile, seed, usage: Mutex::new(Usage::default()) }
    }

    /// The model profile in use.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Usage counters so far.
    pub fn usage(&self) -> Usage {
        *self.usage.lock()
    }

    /// The oracle backing this simulator.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    fn rng_for(&self, question: &str, seed_tag: u64, sample: u64) -> StdRng {
        let mut h = 0xcbf29ce484222325u64 ^ self.seed;
        for b in question.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= seed_tag.wrapping_mul(0x9e3779b97f4a7c15);
        h ^= sample.wrapping_mul(0xd1b54a32d192ed03);
        StdRng::seed_from_u64(h)
    }

    /// Resolve the question to (db, spec, difficulty); falls back to the
    /// keyword parser for unregistered questions.
    fn resolve(&self, prompt: &str) -> Option<(&BuiltDb, QuerySpec, Difficulty)> {
        let question = proto::parse_question(prompt)?;
        if let Some(entry) = self.oracle.lookup(question) {
            let db = self.oracle.db(&entry.db_id)?;
            return Some((db, entry.spec.clone(), entry.difficulty));
        }
        // fallback: the prompt names its target database
        let db_id = proto::parse_db(prompt)?;
        let db = self.oracle.db(db_id)?;
        let spec = self.oracle.fallback_spec(question, db);
        Some((db, spec, Difficulty::Simple))
    }

    /// Compute the question's sticky misread (if any): the draw depends on
    /// the question and prompt quality but *not* on the seed tag, so the
    /// same misunderstanding persists across generation beams and
    /// correction rounds.
    fn misread_for(
        &self,
        question: &str,
        db: &datagen::BuiltDb,
        spec: &QuerySpec,
        difficulty: Difficulty,
        quality: &PromptQuality,
    ) -> Misread {
        let q = crate::corrupt::semantic_q(
            &self.profile,
            difficulty,
            quality,
            spec.columns_used().len(),
            db.complexity,
        );
        let mut rng = self.rng_for(question, 0x5E11A, 0);
        let u: f64 = rng.gen();
        // the tempting wrong reading always exists; whether the model is
        // *committed* to it is the sticky draw
        let target = crate::corrupt::semantic_misread(db, spec, &mut rng);
        let fs_cot = quality.fewshots > 0 && quality.fewshot_cot;
        let spill_base = match (quality.format, fs_cot) {
            (crate::proto::OutputFormat::StructuredCot, true) => 0.0,
            (crate::proto::OutputFormat::StructuredCot, false) => {
                if quality.fewshots > 0 { 0.03 } else { 0.08 }
            }
            (crate::proto::OutputFormat::UnstructuredCot, true) => 0.05,
            (crate::proto::OutputFormat::UnstructuredCot, false) => {
                if quality.fewshots > 0 { 0.2 } else { 0.6 }
            }
            (crate::proto::OutputFormat::SqlOnly, true) => 0.12,
            (crate::proto::OutputFormat::SqlOnly, false) => 0.8,
        };
        Misread { target, sticky: u < q, q, spill_base }
    }

    /// Per-sample probability of producing the misread target.
    fn misread_sample_prob(&self, misread: &Misread, sample_idx: usize) -> f64 {
        if misread.target.is_none() {
            return 0.0;
        }
        if misread.sticky {
            self.profile.semantic_sample_rate
        } else if sample_idx == 0 {
            // the first candidate is the beam's greedy decode: no spillover
            0.0
        } else {
            // spillover: sampled candidates occasionally drift onto the
            // wrong reading — a constant term CoT suppresses, plus a
            // beam-depth term that caps (and for weak models reverses) the
            // benefit of ever-larger candidate sets (Figure 4)
            (misread.q
                * (misread.spill_base + 0.5 * self.profile.beam_decay * sample_idx as f64))
                .min(0.9)
        }
    }

    fn generation(&self, req: &ChatRequest) -> Vec<String> {
        let Some((db, spec, difficulty)) = self.resolve(&req.prompt) else {
            return vec!["#SQL: SELECT NULL".to_owned(); req.n.max(1)];
        };
        let question = proto::parse_question(&req.prompt).unwrap_or_default().to_owned();
        let quality = PromptQuality::from_prompt(&req.prompt);
        let misread = self.misread_for(&question, db, &spec, difficulty, &quality);
        let suppression = Suppression::new();
        (0..req.n.max(1))
            .map(|i| {
                let ctx = SampleCtx {
                    profile: &self.profile,
                    db,
                    quality: &quality,
                    difficulty,
                    temperature: req.temperature,
                    sample_idx: i,
                    suppression: &suppression,
                };
                let mut rng = self.rng_for(&question, req.seed_tag, i as u64);
                let adopt = rng.gen_bool(self.misread_sample_prob(&misread, i));
                let base = match &misread.target {
                    Some(m) if adopt => m,
                    _ => &spec,
                };
                let cand = sample_candidate(&ctx, base, &mut rng);
                render_response(&cand, db, quality.format)
            })
            .collect()
    }

    fn extraction(&self, req: &ChatRequest) -> Vec<String> {
        let Some((db, spec, difficulty)) = self.resolve(&req.prompt) else {
            return vec!["#entities:\n#columns:".to_owned()];
        };
        let question = proto::parse_question(&req.prompt).unwrap_or_default().to_owned();
        let mut rng = self.rng_for(&question, req.seed_tag ^ 0xE77, 0);

        // per-column recall of the extraction agent
        let miss = (self.profile.rate(ErrorClass::WrongColumn) * 4.5
            * match difficulty {
                Difficulty::Simple => 0.6,
                Difficulty::Moderate => 1.0,
                Difficulty::Challenging => 1.6,
            })
        .clamp(0.0, 0.5);
        let mut columns: Vec<String> = Vec::new();
        for (t, c) in spec.columns_used() {
            if !rng.gen_bool(miss) {
                columns.push(format!("{t}.{c}"));
            }
        }
        // table-level recall is near-perfect even when column recall is
        // not: keep at least the PK of every needed table
        for t in &spec.tables {
            let any = columns.iter().any(|c| {
                c.split('.').next().map(|ct| ct.eq_ignore_ascii_case(t)).unwrap_or(false)
            });
            if !any && rng.gen_bool(0.9) {
                if let Some(meta) = db.table_meta(t) {
                    if let Some(pk) = meta.cols.iter().find(|c| c.kind == datagen::ColKind::Id) {
                        columns.push(format!("{t}.{}", pk.name));
                    }
                }
            }
        }
        // join keys: real extraction agents list them unreliably — this is
        // exactly the gap the Info Alignment schema expansion closes
        for fk in &db.database.schema.foreign_keys {
            let relevant = spec.tables.iter().any(|t| t.eq_ignore_ascii_case(&fk.table))
                && spec.tables.iter().any(|t| t.eq_ignore_ascii_case(&fk.ref_table));
            if relevant && rng.gen_bool(0.5) {
                for (t, c) in [(&fk.table, &fk.column), (&fk.ref_table, &fk.ref_column)] {
                    let s = format!("{t}.{c}");
                    if !columns.contains(&s) {
                        columns.push(s);
                    }
                }
            }
        }
        // distractor columns (imprecise multi-path recall is fine, the
        // paper accepts lower precision for lighter process)
        let all: Vec<(String, String)> = db
            .tables
            .iter()
            .flat_map(|t| t.cols.iter().map(move |c| (t.name.clone(), c.name.clone())))
            .collect();
        for _ in 0..rng.gen_range(0..3) {
            let (t, c) = all[rng.gen_range(0..all.len())].clone();
            let s = format!("{t}.{c}");
            if !columns.contains(&s) {
                columns.push(s);
            }
        }

        // entity mentions for value retrieval
        let mut entities: Vec<String> = Vec::new();
        for f in &spec.filters {
            if !rng.gen_bool(miss * 0.8) {
                entities.push(f.display.clone());
            }
        }
        for s in &spec.select {
            if let SelectSpec::Column { column, .. } = s {
                entities.push(column.to_lowercase());
            }
        }
        vec![format!(
            "#entities: {}\n#columns: {}",
            entities.join(" | "),
            columns.join(" | ")
        )]
    }

    fn select_align(&self, req: &ChatRequest) -> Vec<String> {
        let Some((db, spec, _)) = self.resolve(&req.prompt) else {
            return vec!["#select_count: 1\n#select_units: answer".to_owned()];
        };
        let units: Vec<String> = spec
            .select
            .iter()
            .map(|s| match s {
                SelectSpec::Column { column, .. } => column.to_lowercase(),
                SelectSpec::Agg { func, column, .. } => format!(
                    "{} of {}",
                    func.english(),
                    column.as_deref().map(str::to_lowercase).unwrap_or_else(|| "rows".into())
                ),
            })
            .collect();
        let _ = db;
        vec![format!(
            "#select_count: {}\n#select_units: {}",
            units.len(),
            units.join(" | ")
        )]
    }

    fn correction(&self, req: &ChatRequest) -> Vec<String> {
        let Some((db, spec, difficulty)) = self.resolve(&req.prompt) else {
            return vec!["#SQL: SELECT NULL".to_owned()];
        };
        let question = proto::parse_question(&req.prompt).unwrap_or_default().to_owned();
        let quality = PromptQuality::from_prompt(&req.prompt);
        let error_info = proto::parse_error_info(&req.prompt).unwrap_or_default();
        let has_fewshot = quality.fewshots > 0;
        let mut skill = self.profile.correction_skill;
        if has_fewshot {
            skill += self.profile.correction_fewshot_bonus;
        }
        let mult = (1.0 - skill).clamp(0.02, 1.0);
        // a correction is a local edit: the model copies the candidate's
        // unrelated clauses, so non-flagged classes are much less likely to
        // be (re-)introduced than in free generation
        const COPY_FIDELITY: f64 = 0.22;
        let mut suppression = Suppression::new();
        for class in ErrorClass::all() {
            suppression.insert(class, COPY_FIDELITY);
        }
        for class in classes_for_error(&error_info) {
            suppression.insert(class, mult);
        }
        // a misread survives correction: execution feedback cannot reveal a
        // semantically wrong but executable interpretation
        let misread = self.misread_for(&question, db, &spec, difficulty, &quality);
        (0..req.n.max(1))
            .map(|i| {
                let ctx = SampleCtx {
                    profile: &self.profile,
                    db,
                    quality: &quality,
                    difficulty,
                    temperature: req.temperature,
                    sample_idx: i,
                    suppression: &suppression,
                };
                let mut rng = self.rng_for(&question, req.seed_tag ^ 0xC0FE, i as u64);
                let adopt = rng.gen_bool(self.misread_sample_prob(&misread, i));
                let base = match &misread.target {
                    Some(m) if adopt => m,
                    _ => &spec,
                };
                let cand = sample_candidate(&ctx, base, &mut rng);
                format!("#SQL: {}", cand.sql)
            })
            .collect()
    }

    fn cot_augment(&self, req: &ChatRequest) -> Vec<String> {
        let Some((db, spec, _)) = self.resolve(&req.prompt) else {
            return vec![String::new()];
        };
        let sql = sqlkit::print_select(&spec.to_sql(&db.database.schema));
        let cand = Candidate { sql, spec, applied: Vec::new() };
        vec![render_cot_fields(&cand, db)]
    }
}

/// Map an execution-error description onto the hallucination classes a
/// correction round should suppress.
fn classes_for_error(error_info: &str) -> Vec<ErrorClass> {
    let e = error_info.to_lowercase();
    if e.contains("no such column") || e.contains("ambiguous") {
        vec![ErrorClass::WrongColumn, ErrorClass::MissingJoin]
    } else if e.contains("no such table") {
        vec![ErrorClass::MissingJoin, ErrorClass::WrongColumn]
    } else if e.contains("syntax") || e.contains("lex error") {
        vec![ErrorClass::Syntax]
    } else if e.contains("result: none") || e.contains("empty") {
        vec![ErrorClass::ValueMismatch, ErrorClass::WrongTableQualifier, ErrorClass::OpSwap]
    } else {
        // unknown error: mild global care
        ErrorClass::all().to_vec()
    }
}

/// Render the structured-CoT fields of Listing 5 for a candidate.
pub fn render_cot_fields(cand: &Candidate, db: &BuiltDb) -> String {
    let spec = &cand.spec;
    let noun = spec
        .tables
        .first()
        .and_then(|t| db.table_meta(t))
        .map(|t| t.noun.clone())
        .unwrap_or_else(|| "rows".into());
    let columns: Vec<String> = spec
        .columns_used()
        .iter()
        .map(|(t, c)| format!("{t}.{}", sqlkit::printer::ident(c)))
        .collect();
    let values: Vec<String> = spec
        .filters
        .iter()
        .map(|f| {
            format!(
                "{}.{} {} {}",
                f.table,
                sqlkit::printer::ident(&f.column),
                cmp_str(f.op),
                sqlkit::printer::literal(&f.value)
            )
        })
        .collect();
    let select_desc: Vec<String> = spec
        .select
        .iter()
        .map(|s| match s {
            SelectSpec::Column { table, column } => {
                format!("{table}.{}", sqlkit::printer::ident(column))
            }
            SelectSpec::Agg { func, table, column } => match column {
                Some(c) => format!(
                    "{}({}{}.{})",
                    func.sql_name().to_uppercase(),
                    if *func == datagen::AggFunc::CountDistinct { "DISTINCT " } else { "" },
                    table,
                    sqlkit::printer::ident(c)
                ),
                None => "COUNT(*)".to_owned(),
            },
        })
        .collect();
    let sql_like = render_sql_like(spec);
    format!(
        "#reason: The question asks about {noun}; apply {} condition(s) and return {} item(s).\n\
         #columns: {}\n\
         #values: {}\n\
         #SELECT: {}\n\
         #SQL-like: {}\n\
         #SQL: {}",
        spec.filters.len(),
        spec.select.len(),
        columns.join(", "),
        values.join("; "),
        select_desc.join(", "),
        sql_like,
        cand.sql
    )
}

fn cmp_str(op: datagen::CmpOp) -> &'static str {
    use datagen::CmpOp::*;
    match op {
        Eq => "=",
        Ne => "!=",
        Gt => ">",
        Ge => ">=",
        Lt => "<",
        Le => "<=",
        Between => "BETWEEN",
    }
}

/// Render the SQL-Like intermediate form: SQL logic with joins and
/// formatting stripped (§3.5 of the paper).
pub fn render_sql_like(spec: &QuerySpec) -> String {
    let qc = |t: &str, c: &str| format!("{}.{}", t, sqlkit::printer::ident(c));
    let mut out = String::from("Show ");
    let sels: Vec<String> = spec
        .select
        .iter()
        .map(|s| match s {
            SelectSpec::Column { table, column } => qc(table, column),
            SelectSpec::Agg { func, table, column } => match column {
                Some(c) => format!(
                    "{}({}{})",
                    func.sql_name().to_uppercase(),
                    if *func == datagen::AggFunc::CountDistinct { "DISTINCT " } else { "" },
                    qc(table, c)
                ),
                None => "COUNT(*)".to_owned(),
            },
        })
        .collect();
    out.push_str(&sels.join(", "));
    if !spec.filters.is_empty() {
        out.push_str(" WHERE ");
        let conds: Vec<String> = spec
            .filters
            .iter()
            .map(|f| {
                let lhs = if f.year_of_date {
                    format!("STRFTIME('%Y', {})", qc(&f.table, &f.column))
                } else {
                    qc(&f.table, &f.column)
                };
                match f.op {
                    datagen::CmpOp::Between => format!(
                        "{lhs} BETWEEN {} AND {}",
                        sqlkit::printer::literal(&f.value),
                        sqlkit::printer::literal(f.value2.as_ref().unwrap_or(&f.value))
                    ),
                    op => format!(
                        "{lhs} {} {}",
                        cmp_str(op),
                        sqlkit::printer::literal(&f.value)
                    ),
                }
            })
            .collect();
        out.push_str(&conds.join(" AND "));
    }
    if let Some((t, c)) = &spec.group_by {
        out.push_str(&format!(" GROUP BY {}", qc(t, c)));
    }
    if let Some(o) = &spec.order {
        out.push_str(&format!(
            " ORDER BY {}{}",
            match &o.agg {
                Some(f) => format!("{}({})", f.sql_name().to_uppercase(), qc(&o.table, &o.column)),
                None => qc(&o.table, &o.column),
            },
            if o.desc { " DESC" } else { "" }
        ));
    }
    if let Some(n) = spec.limit {
        out.push_str(&format!(" LIMIT {n}"));
    }
    out
}

fn render_response(cand: &Candidate, db: &BuiltDb, format: OutputFormat) -> String {
    match format {
        OutputFormat::StructuredCot => render_cot_fields(cand, db),
        OutputFormat::UnstructuredCot => format!(
            "Let's think step by step. The question concerns {} table(s) and {} condition(s). \
             After identifying the relevant columns and values, the final query is:\n#SQL: {}",
            cand.spec.tables.len(),
            cand.spec.filters.len(),
            cand.sql
        ),
        OutputFormat::SqlOnly => format!("#SQL: {}", cand.sql),
    }
}

impl LanguageModel for SimLlm {
    fn complete(&self, req: &ChatRequest) -> ChatResponse {
        let texts = match proto::parse_task(&req.prompt) {
            proto::TASK_EXTRACTION => self.extraction(req),
            proto::TASK_CORRECTION => self.correction(req),
            proto::TASK_COT_AUGMENT => self.cot_augment(req),
            proto::TASK_SELECT_ALIGN => self.select_align(req),
            _ => self.generation(req),
        };
        let prompt_tokens = count_tokens(&req.prompt);
        let completion_tokens: usize = texts.iter().map(|t| count_tokens(t)).sum();
        let latency_ms =
            model_latency_ms(prompt_tokens, completion_tokens, self.profile.speed);
        let mut usage = self.usage.lock();
        usage.calls += 1;
        usage.prompt_tokens += prompt_tokens as u64;
        usage.completion_tokens += completion_tokens as u64;
        ChatResponse { texts, prompt_tokens, completion_tokens, latency_ms }
    }

    fn name(&self) -> &str {
        &self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};

    fn sim() -> (SimLlm, Arc<datagen::Benchmark>) {
        let bench = Arc::new(generate(&Profile::tiny()));
        let oracle = Arc::new(Oracle::new(bench.clone()));
        (SimLlm::new(oracle, ModelProfile::gpt_4o(), 0xAB), bench)
    }

    fn gen_prompt(bench: &datagen::Benchmark, ex: &datagen::Example) -> String {
        let db = bench.db(&ex.db_id).unwrap();
        format!(
            "#task: generation\n#db: {}\n/* Database schema */\n{}\n{}\n/* Answer the following: {} */\n",
            ex.db_id,
            db.database.schema.describe(None),
            proto::FORMAT_STRUCTURED_COT,
            ex.question
        )
    }

    #[test]
    fn generation_returns_parseable_sql() {
        let (sim, bench) = sim();
        let ex = &bench.dev[0];
        let resp = sim.complete(&ChatRequest {
            prompt: gen_prompt(&bench, ex),
            temperature: 0.0,
            n: 3,
            seed_tag: 1,
        });
        assert_eq!(resp.texts.len(), 3);
        for t in &resp.texts {
            let sql = proto::parse_sql_from_response(t).unwrap();
            assert!(sql.to_uppercase().starts_with("SELECT"), "{sql}");
        }
        assert!(resp.prompt_tokens > 20);
        assert!(resp.completion_tokens > 5);
    }

    #[test]
    fn deterministic_across_calls() {
        let (sim, bench) = sim();
        let ex = &bench.dev[1];
        let req = ChatRequest {
            prompt: gen_prompt(&bench, ex),
            temperature: 0.7,
            n: 5,
            seed_tag: 9,
        };
        let a = sim.complete(&req);
        let b = sim.complete(&req);
        assert_eq!(a.texts, b.texts);
    }

    #[test]
    fn different_seed_tags_differ_eventually() {
        let (sim, bench) = sim();
        // some example where corruption is likely (weak prompt: no schema)
        let ex = &bench.dev[2];
        let prompt = format!(
            "#task: generation\n#db: {}\n/* Answer the following: {} */\n",
            ex.db_id, ex.question
        );
        let mut distinct = std::collections::HashSet::new();
        for tag in 0..8 {
            let r = sim.complete(&ChatRequest {
                prompt: prompt.clone(),
                temperature: 1.0,
                n: 4,
                seed_tag: tag,
            });
            for t in r.texts {
                distinct.insert(t);
            }
        }
        assert!(distinct.len() > 1);
    }

    #[test]
    fn extraction_lists_columns_and_entities() {
        let (sim, bench) = sim();
        let ex = bench
            .dev
            .iter()
            .find(|e| !e.spec.filters.is_empty())
            .unwrap();
        let prompt = format!(
            "#task: extraction\n#db: {}\n/* Database schema */\n{}\n/* Answer the following: {} */\n",
            ex.db_id,
            bench.db(&ex.db_id).unwrap().database.schema.describe(None),
            ex.question
        );
        let resp = sim.complete(&ChatRequest::once(prompt));
        let cols = proto::parse_field(&resp.texts[0], "columns").unwrap();
        assert!(cols.contains('.'), "{cols}");
    }

    #[test]
    fn cot_augment_is_deterministic_and_gold() {
        let (sim, bench) = sim();
        let ex = &bench.train[0];
        let prompt = format!(
            "#task: cot_augment\n#db: {}\n/* Answer the following: {} */\n#SQL: {}\n",
            ex.db_id, ex.question, ex.gold_sql
        );
        let a = sim.complete(&ChatRequest::once(prompt.clone()));
        let b = sim.complete(&ChatRequest::once(prompt));
        assert_eq!(a.texts, b.texts);
        let sql = proto::parse_sql_from_response(&a.texts[0]).unwrap();
        assert_eq!(sql, ex.gold_sql);
        assert!(a.texts[0].contains("#SQL-like:"));
    }

    #[test]
    fn correction_suppresses_flagged_class() {
        let (sim, bench) = sim();
        let ex = bench
            .dev
            .iter()
            .chain(&bench.train)
            .find(|e| {
                e.spec
                    .filters
                    .iter()
                    .any(|f| f.display_mismatch() && matches!(f.value, sqlkit::Value::Text(_)) && !f.year_of_date)
            })
            .unwrap();
        let db = bench.db(&ex.db_id).unwrap();
        // correction prompt WITH values block and error info
        let values_block: String = ex
            .spec
            .filters
            .iter()
            .filter_map(|f| match &f.value {
                sqlkit::Value::Text(s) => {
                    Some(format!("# {}.{} = '{}'\n", f.table, f.column, s))
                }
                _ => None,
            })
            .collect();
        // deliberately omit the values block: the stored form is unknown,
        // so free regeneration keeps writing the question's surface form,
        // while a correction flagged with "Result: None" suppresses it
        let _ = values_block;
        let body = format!(
            "#db: {}\n/* Database schema */\n{}\n/* Answer the following: {} */\n",
            ex.db_id,
            db.database.schema.describe(None),
            ex.question
        );
        let n = 40;
        let gold_hits = |task: &str, err: &str| {
            let resp = sim.complete(&ChatRequest {
                prompt: format!("#task: {task}\n{err}{body}"),
                temperature: 0.7,
                n,
                seed_tag: 4,
            });
            resp.texts
                .iter()
                .filter(|t| proto::parse_sql_from_response(t) == Some(ex.gold_sql.as_str()))
                .count()
        };
        let corrected = gold_hits(
            proto::TASK_CORRECTION,
            &format!("{} Result: None\n", proto::ERROR_INFO_PREFIX),
        );
        let regenerated = gold_hits(proto::TASK_GENERATION, "");
        // corrections must land on gold markedly more often than free
        // regeneration at identical prompt quality
        assert!(
            corrected > regenerated,
            "correction {corrected}/{n} vs regeneration {regenerated}/{n}"
        );
    }

    #[test]
    fn fallback_answers_unknown_questions() {
        let (sim, bench) = sim();
        let db = &bench.dbs[0];
        let noun = &db.tables[0].noun;
        let prompt = format!(
            "#task: generation\n#db: {}\n/* Answer the following: How many {} are there? */\n",
            db.id, noun
        );
        let resp = sim.complete(&ChatRequest::once(prompt));
        let sql = proto::parse_sql_from_response(&resp.texts[0]).unwrap();
        let rs = db.database.query(sql).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn usage_accumulates() {
        let (sim, bench) = sim();
        let ex = &bench.dev[0];
        sim.complete(&ChatRequest::once(gen_prompt(&bench, ex)));
        sim.complete(&ChatRequest::once(gen_prompt(&bench, ex)));
        let u = sim.usage();
        assert_eq!(u.calls, 2);
        assert!(u.prompt_tokens > 0);
    }
}
