//! Calibrated model profiles.
//!
//! Each profile sets *base* per-class hallucination rates; the simulator
//! multiplies them by prompt-quality and difficulty factors at sampling
//! time. Levels are calibrated once so the full pipeline reproduces the
//! paper's Mini-Dev numbers (see EXPERIMENTS.md); all ablation *deltas*
//! emerge from which error classes each pipeline module can repair.

use serde::{Deserialize, Serialize};

/// The hallucination classes the simulator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    /// WHERE literal uses the question's surface form instead of the
    /// stored form (→ empty result). Suppressed by values retrieval;
    /// repaired by Agent Alignment / Correction.
    ValueMismatch,
    /// A referenced column name is mangled (→ `no such column`).
    /// Aggravated by schema width; repaired by Agent Alignment /
    /// Correction.
    WrongColumn,
    /// A same-named column is qualified with the wrong table (wrong rows).
    /// Repaired by Agent Alignment's value-location check.
    WrongTableQualifier,
    /// A required join is dropped while its columns stay (→ error).
    /// Repaired by Correction.
    MissingJoin,
    /// `ORDER BY MAX(col)` style aggregate misuse. Repaired by Function
    /// Alignment.
    AggInOrderBy,
    /// Wrong aggregate (SUM↔AVG, COUNT↔COUNT DISTINCT). Only voting
    /// suppresses it.
    AggSwap,
    /// Ranked query rendered as `= (SELECT MAX(...))` (ties change the
    /// answer). Repaired by Style Alignment.
    RankedAsSubquery,
    /// Missing `LIMIT` on a ranked query. Repaired by Style Alignment.
    MissingLimit,
    /// Extra column appended to SELECT. Repaired by Info/SELECT alignment.
    ExtraSelect,
    /// ORDER BY direction flipped. Only voting suppresses it.
    OrderFlip,
    /// Malformed SQL text. Repaired by Correction.
    Syntax,
    /// Wrong comparison operator (>= vs >). Only voting suppresses it.
    OpSwap,
}

impl ErrorClass {
    /// All classes, in injection order.
    pub fn all() -> [ErrorClass; 12] {
        use ErrorClass::*;
        [
            ValueMismatch,
            WrongColumn,
            WrongTableQualifier,
            MissingJoin,
            AggInOrderBy,
            AggSwap,
            RankedAsSubquery,
            MissingLimit,
            ExtraSelect,
            OrderFlip,
            Syntax,
            OpSwap,
        ]
    }
}

/// A simulated model's capability profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name.
    pub name: String,
    /// Base probability of each error class on a *moderate* question with a
    /// fully-informative prompt, at temperature 0.7, in the order of
    /// [`ErrorClass::all`].
    pub base_rates: [f64; 12],
    /// Multiplier applied when the prompt requests no CoT.
    pub no_cot_penalty: f64,
    /// Multiplier applied for unstructured ("step by step") CoT.
    pub unstructured_cot_penalty: f64,
    /// Per-few-shot-example multiplicative discount (compounding).
    pub fewshot_discount: f64,
    /// Extra discount multiplier when few-shots carry CoT fields.
    pub cot_fewshot_bonus: f64,
    /// Error multiplier per doubling of prompt schema width beyond the
    /// needed columns (the distraction factor).
    pub schema_distraction: f64,
    /// Multiplier on [`ErrorClass::ValueMismatch`] when the needed stored
    /// value *is* present in the prompt's values block.
    pub value_in_prompt_discount: f64,
    /// Multiplier when the needed column is absent from the prompt schema
    /// (forces hallucination).
    pub missing_column_penalty: f64,
    /// Difficulty multipliers (simple, moderate, challenging).
    pub difficulty_mult: [f64; 3],
    /// Fraction of temperature-driven extra noise per unit temperature.
    pub temperature_noise: f64,
    /// Per-sample error growth across a beam (forced diversity drift);
    /// large values make big beams counterproductive (Figure 4's mini
    /// curve).
    pub beam_decay: f64,
    /// Per-question probability (at moderate difficulty, best prompt) that
    /// the model *misreads* the question — a sticky semantic error that
    /// persists across every sample and correction round. This is the
    /// dominant, unrepairable error mass in real text-to-SQL systems.
    pub semantic_rate: f64,
    /// Probability each beam sample reproduces the misread once it exists
    /// (the remainder accidentally recover the true intent).
    pub semantic_sample_rate: f64,
    /// Difficulty multipliers on the semantic rate.
    pub semantic_difficulty: [f64; 3],
    /// Probability a correction round actually fixes the flagged class.
    pub correction_skill: f64,
    /// Extra correction skill when correction few-shots are present.
    pub correction_fewshot_bonus: f64,
    /// Decode speed in tokens/ms (for the latency model).
    pub speed: f64,
}

impl ModelProfile {
    /// GPT-4o-class profile (the paper's main model).
    pub fn gpt_4o() -> Self {
        ModelProfile {
            name: "gpt-4o".into(),
            base_rates: [
                0.16,  // ValueMismatch (scales the knowledge-gap model)
                0.005, // WrongColumn
                0.005, // WrongTableQualifier
                0.004, // MissingJoin
                0.004, // AggInOrderBy
                0.045, // AggSwap
                0.005, // RankedAsSubquery
                0.004, // MissingLimit
                0.005, // ExtraSelect
                0.035, // OrderFlip
                0.003, // Syntax
                0.045, // OpSwap
            ],
            no_cot_penalty: 1.22,
            unstructured_cot_penalty: 1.10,
            fewshot_discount: 0.96,
            cot_fewshot_bonus: 0.90,
            schema_distraction: 1.35,
            value_in_prompt_discount: 0.06,
            missing_column_penalty: 14.0,
            difficulty_mult: [0.45, 1.0, 2.8],
            temperature_noise: 0.35,
            beam_decay: 0.012,
            semantic_rate: 0.315,
            semantic_sample_rate: 0.99,
            semantic_difficulty: [0.55, 1.0, 1.7],
            correction_skill: 0.30,
            correction_fewshot_bonus: 0.12,
            speed: 11.0,
        }
    }

    /// GPT-4-class profile: slightly weaker than 4o across the board.
    pub fn gpt_4() -> Self {
        let mut p = Self::gpt_4o();
        p.name = "gpt-4".into();
        for r in &mut p.base_rates {
            *r *= 1.12;
        }
        p.semantic_rate *= 1.25;
        p.correction_skill = 0.50;
        p.speed = 6.0;
        p
    }

    /// GPT-4o-mini-class profile: markedly noisier, and noisier still at
    /// high temperature — which is what makes its vote curve peak and then
    /// fall (paper Figure 4).
    pub fn gpt_4o_mini() -> Self {
        let mut p = Self::gpt_4o();
        p.name = "gpt-4o-mini".into();
        for r in &mut p.base_rates {
            *r *= 1.85;
        }
        p.semantic_rate *= 1.8;
        p.temperature_noise = 1.3;
        p.beam_decay = 0.15;
        p.no_cot_penalty = 1.6;
        p.correction_skill = 0.38;
        p.speed = 25.0;
        p
    }

    /// A profile named after a fine-tuned model: stronger generation (the
    /// Distillery baseline's SFT GPT-4o), used without schema linking.
    pub fn gpt_4o_finetuned() -> Self {
        let mut p = Self::gpt_4o();
        p.name = "gpt-4o-ft".into();
        for r in &mut p.base_rates {
            *r *= 0.6;
        }
        p.semantic_rate *= 0.74;
        // fine-tuning bakes in value formats partially
        p.value_in_prompt_discount = 0.06;
        p.base_rates[0] *= 0.55;
        p
    }

    /// Base rate of one class.
    pub fn rate(&self, class: ErrorClass) -> f64 {
        let idx = ErrorClass::all().iter().position(|c| *c == class).unwrap();
        self.base_rates[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_strength() {
        let strong = ModelProfile::gpt_4o();
        let mid = ModelProfile::gpt_4();
        let weak = ModelProfile::gpt_4o_mini();
        let ft = ModelProfile::gpt_4o_finetuned();
        let total = |p: &ModelProfile| -> f64 { p.base_rates.iter().sum() };
        assert!(total(&ft) < total(&strong));
        assert!(total(&strong) < total(&mid));
        assert!(total(&mid) < total(&weak));
    }

    #[test]
    fn rate_lookup_matches_array() {
        let p = ModelProfile::gpt_4o();
        assert_eq!(p.rate(ErrorClass::ValueMismatch), p.base_rates[0]);
        assert_eq!(p.rate(ErrorClass::OpSwap), p.base_rates[11]);
    }

    #[test]
    fn mini_is_noisier_at_temperature() {
        assert!(
            ModelProfile::gpt_4o_mini().temperature_noise
                > ModelProfile::gpt_4o().temperature_noise * 2.0
        );
    }
}
