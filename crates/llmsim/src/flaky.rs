//! Seeded fault injection for language-model calls.
//!
//! Real chat APIs fail: connections reset, rate limits trip, and the odd
//! request crawls. The serving runtime's retry/timeout middleware has to
//! be exercised against those behaviours *deterministically*, so
//! [`FlakyLlm`] wraps any [`LanguageModel`] and injects failures whose
//! occurrence is a pure function of `(decorator seed, prompt, seed_tag)`.
//! Because the retry layer varies `seed_tag` per attempt, a request that
//! fails on attempt 0 can deterministically succeed on attempt 1 — the
//! whole recover-under-retry story replays bit-for-bit from one seed.

use crate::chat::{ChatRequest, ChatResponse, LanguageModel};

/// The kind of injected (or simulated-upstream) failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Connection dropped mid-flight; no usable body came back.
    Transport,
    /// The endpoint shed load; identical to transport for callers except
    /// in reporting.
    RateLimit,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Transport => f.write_str("transport"),
            FaultKind::RateLimit => f.write_str("rate-limit"),
        }
    }
}

/// A failed completion attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmFailure {
    /// What went wrong.
    pub kind: FaultKind,
    /// Modelled milliseconds burned before the failure surfaced (the
    /// caller's latency accounting should still charge for them).
    pub latency_ms: f64,
}

impl std::fmt::Display for LlmFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "llm {} failure after {:.0}ms", self.kind, self.latency_ms)
    }
}

impl std::error::Error for LlmFailure {}

/// A language model whose completions can fail.
///
/// Every infallible [`LanguageModel`] is trivially fallible (it never
/// errors), so middleware is written against this trait and accepts
/// plain models and [`FlakyLlm`]-wrapped ones alike.
pub trait FallibleLanguageModel: Send + Sync {
    /// Attempt one completion.
    fn try_complete(&self, req: &ChatRequest) -> Result<ChatResponse, LlmFailure>;
    /// Model name (for reports).
    fn fallible_name(&self) -> &str;
}

impl<M: LanguageModel + ?Sized> FallibleLanguageModel for M {
    fn try_complete(&self, req: &ChatRequest) -> Result<ChatResponse, LlmFailure> {
        Ok(self.complete(req))
    }

    fn fallible_name(&self) -> &str {
        self.name()
    }
}

/// Decorator injecting seeded faults and latency spikes into an inner
/// model. Failure decisions depend only on the decorator seed, the
/// request prompt, and the request `seed_tag` — never on wall-clock or
/// call order — so runs replay exactly.
pub struct FlakyLlm<M> {
    inner: M,
    seed: u64,
    /// Probability of a hard failure, in 1/1000 units.
    fail_per_mille: u32,
    /// Probability of a latency spike (successful but slow), in 1/1000.
    spike_per_mille: u32,
    /// Multiplier applied to `latency_ms` on spiked responses.
    spike_factor: f64,
    name: String,
}

/// Modelled milliseconds burned by a failed attempt (connection setup +
/// server-side time before the error came back).
const FAULT_LATENCY_MS: f64 = 260.0;

impl<M: LanguageModel> FlakyLlm<M> {
    /// Wrap `inner`, drawing all fault decisions from `seed`.
    /// `fail_per_mille` of attempts error out; `spike_per_mille` succeed
    /// with 10x latency (enough to trip any sane timeout).
    pub fn new(inner: M, seed: u64, fail_per_mille: u32, spike_per_mille: u32) -> Self {
        assert!(
            fail_per_mille + spike_per_mille <= 1000,
            "fault rates exceed 1000 per mille"
        );
        let name = format!("flaky({})", inner.name());
        FlakyLlm { inner, seed, fail_per_mille, spike_per_mille, spike_factor: 10.0, name }
    }

    /// Override the latency multiplier used for spiked responses.
    pub fn with_spike_factor(mut self, factor: f64) -> Self {
        self.spike_factor = factor;
        self
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The fault roll for a request: a value in `0..1000` that is a pure
    /// function of `(seed, prompt, seed_tag)`.
    fn roll(&self, req: &ChatRequest) -> u32 {
        let mut h = 0xcbf29ce484222325u64 ^ self.seed;
        for b in req.prompt.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= req.seed_tag.wrapping_mul(0x9e3779b97f4a7c15);
        // finalize so low bits depend on the whole state
        h = (h ^ (h >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        (h % 1000) as u32
    }

    fn fault_kind(&self, roll: u32) -> FaultKind {
        // deterministic split between the two kinds
        if roll.is_multiple_of(2) {
            FaultKind::Transport
        } else {
            FaultKind::RateLimit
        }
    }
}

impl<M: LanguageModel> FallibleLanguageModel for FlakyLlm<M> {
    fn try_complete(&self, req: &ChatRequest) -> Result<ChatResponse, LlmFailure> {
        let roll = self.roll(req);
        if roll < self.fail_per_mille {
            return Err(LlmFailure { kind: self.fault_kind(roll), latency_ms: FAULT_LATENCY_MS });
        }
        let mut resp = self.inner.complete(req);
        if roll < self.fail_per_mille + self.spike_per_mille {
            resp.latency_ms *= self.spike_factor;
        }
        Ok(resp)
    }

    fn fallible_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EchoLlm;

    impl LanguageModel for EchoLlm {
        fn complete(&self, req: &ChatRequest) -> ChatResponse {
            ChatResponse {
                texts: vec![req.prompt.clone(); req.n],
                prompt_tokens: 3,
                completion_tokens: 3,
                latency_ms: 100.0,
            }
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    fn req(prompt: &str, seed_tag: u64) -> ChatRequest {
        ChatRequest { prompt: prompt.into(), temperature: 0.0, n: 1, seed_tag }
    }

    #[test]
    fn plain_models_are_trivially_fallible() {
        let m = EchoLlm;
        let r = m.try_complete(&req("hi", 0)).unwrap();
        assert_eq!(r.texts, vec!["hi".to_string()]);
        assert_eq!(m.fallible_name(), "echo");
    }

    #[test]
    fn faults_are_deterministic_per_request() {
        let flaky = FlakyLlm::new(EchoLlm, 42, 300, 100);
        for i in 0..50u64 {
            let r = req(&format!("q{i}"), i);
            let a = flaky.try_complete(&r);
            let b = flaky.try_complete(&r);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x.latency_ms, y.latency_ms),
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("outcome flipped between identical calls"),
            }
        }
    }

    #[test]
    fn fault_rate_tracks_configuration() {
        let flaky = FlakyLlm::new(EchoLlm, 7, 250, 0);
        let total = 400u64;
        let failures = (0..total)
            .filter(|i| flaky.try_complete(&req(&format!("question {i}"), 0)).is_err())
            .count();
        let rate = failures as f64 / total as f64;
        assert!((0.15..0.35).contains(&rate), "rate {rate} far from 0.25");
    }

    #[test]
    fn seed_tag_variation_recovers_failures() {
        // a retrying caller bumps seed_tag per attempt; every failure we
        // can find must clear within a few bumps at a 20% fault rate
        let flaky = FlakyLlm::new(EchoLlm, 3, 200, 0);
        let mut saw_failure = false;
        for i in 0..100u64 {
            let prompt = format!("flaky question {i}");
            if flaky.try_complete(&req(&prompt, 0)).is_err() {
                saw_failure = true;
                let recovered =
                    (1..6u64).any(|tag| flaky.try_complete(&req(&prompt, tag)).is_ok());
                assert!(recovered, "no recovery within 5 retries for {prompt:?}");
            }
        }
        assert!(saw_failure, "fault rate 20% produced no failures in 100 requests");
    }

    #[test]
    fn spikes_multiply_latency_without_failing() {
        let flaky = FlakyLlm::new(EchoLlm, 11, 0, 1000).with_spike_factor(10.0);
        let r = flaky.try_complete(&req("slow one", 0)).unwrap();
        assert_eq!(r.latency_ms, 1000.0);
        assert_eq!(r.texts, vec!["slow one".to_string()]);
    }

    #[test]
    fn zero_rates_never_fault() {
        let flaky = FlakyLlm::new(EchoLlm, 99, 0, 0);
        for i in 0..50u64 {
            let r = flaky.try_complete(&req(&format!("q{i}"), i)).unwrap();
            assert_eq!(r.latency_ms, 100.0);
        }
        assert_eq!(flaky.fallible_name(), "flaky(echo)");
    }
}
