//! The hallucination engine: degrade a gold intent according to prompt
//! quality, then render the degraded intent as SQL.
//!
//! Every corruption class corresponds to a failure mode the paper's
//! modules exist to repair (§3.1, §3.5): wrong stored values, mangled
//! column names, misqualified same-name columns, dropped joins, aggregate
//! misuse, ranked-query style drift, SELECT-shape drift, and plain syntax
//! errors. Probabilities are *causally* tied to what the prompt contains:
//! a missing value block raises `ValueMismatch`, a missing column raises
//! `WrongColumn`, schema width raises distraction, few-shots and CoT lower
//! everything, and later beam samples drift further (which is what makes
//! weak models' vote curves peak and fall, Figure 4).

use crate::profile::{ErrorClass, ModelProfile};
use crate::proto::OutputFormat;
use datagen::{AggFunc, BuiltDb, Difficulty, QuerySpec, SelectSpec};
use rand::rngs::StdRng;
use rand::Rng;
use sqlkit::ast::{BinOp, Expr, OrderItem, SelectStmt};
use sqlkit::Value;
use std::collections::HashMap;

/// Measured quality of a generation prompt.
#[derive(Debug, Clone, Default)]
pub struct PromptQuality {
    /// Lower-cased `(table, column)` pairs present in the schema block.
    pub schema_cols: Vec<(String, String)>,
    /// `(table, column, stored value)` triples in the values block.
    pub values: Vec<(String, String, String)>,
    /// Few-shot example count.
    pub fewshots: usize,
    /// Few-shots carry CoT fields?
    pub fewshot_cot: bool,
    /// Requested output format.
    pub format: OutputFormat,
    /// Every single-quoted literal anywhere in the prompt (evidence lines,
    /// few-shots). Seeing a stored literal — from whatever source —
    /// protects the model from value-form hallucination.
    pub quoted_literals: Vec<String>,
}

impl PromptQuality {
    /// Parse a prompt.
    pub fn from_prompt(prompt: &str) -> Self {
        PromptQuality {
            schema_cols: crate::proto::parse_schema_columns(prompt),
            values: crate::proto::parse_values_block(prompt),
            fewshots: crate::proto::count_fewshots(prompt),
            fewshot_cot: crate::proto::fewshots_have_cot(prompt),
            format: crate::proto::parse_format(prompt),
            quoted_literals: single_quoted(prompt),
        }
    }

    fn has_column(&self, table: &str, column: &str) -> bool {
        let (t, c) = (table.to_lowercase(), column.to_lowercase());
        self.schema_cols.iter().any(|(pt, pc)| *pt == t && *pc == c)
    }

    fn has_value(&self, table: &str, column: &str, stored: &str) -> bool {
        let (t, c) = (table.to_lowercase(), column.to_lowercase());
        self.values.iter().any(|(vt, vc, vv)| *vt == t && *vc == c && vv == stored)
            || self.quoted_literals.iter().any(|l| l == stored)
    }
}

/// One corrupted candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The rendered (possibly broken) SQL.
    pub sql: String,
    /// The degraded intent behind it (for CoT rendering).
    pub spec: QuerySpec,
    /// Which corruptions were applied.
    pub applied: Vec<ErrorClass>,
}

/// Per-class probability multipliers (used by correction rounds to bias
/// regeneration toward fixing the flagged class).
pub type Suppression = HashMap<ErrorClass, f64>;

/// Sampling context for one candidate.
pub struct SampleCtx<'a> {
    /// Model profile.
    pub profile: &'a ModelProfile,
    /// Target database.
    pub db: &'a BuiltDb,
    /// Prompt quality measurements.
    pub quality: &'a PromptQuality,
    /// Question difficulty.
    pub difficulty: Difficulty,
    /// Sampling temperature.
    pub temperature: f64,
    /// Index of this sample within the beam.
    pub sample_idx: usize,
    /// Per-class suppression multipliers.
    pub suppression: &'a Suppression,
}

impl SampleCtx<'_> {
    /// Effective probability of one error class for this sample.
    pub fn class_prob(&self, class: ErrorClass) -> f64 {
        let p = self.profile;
        let mut prob = p.rate(class);
        // difficulty
        let tier = match self.difficulty {
            Difficulty::Simple => 0,
            Difficulty::Moderate => 1,
            Difficulty::Challenging => 2,
        };
        prob *= p.difficulty_mult[tier];
        // CoT format
        prob *= match self.quality.format {
            OutputFormat::StructuredCot => 1.0,
            OutputFormat::UnstructuredCot => p.unstructured_cot_penalty,
            OutputFormat::SqlOnly => p.no_cot_penalty,
        };
        // few-shots
        let mut fs = p.fewshot_discount.powi(self.quality.fewshots.min(9) as i32);
        if self.quality.fewshots > 0 && self.quality.fewshot_cot {
            fs *= p.cot_fewshot_bonus;
        }
        prob *= fs;
        // temperature relative to the 0.7 calibration point
        prob *= (1.0 + p.temperature_noise * (self.temperature - 0.7)).max(0.25);
        // beam drift
        prob *= 1.0 + p.beam_decay * self.sample_idx as f64;
        // correction suppression
        if let Some(m) = self.suppression.get(&class) {
            prob *= m;
        }
        prob.clamp(0.0, 0.95)
    }

    /// Distraction multiplier from schema width relative to what the query
    /// needs.
    fn distraction(&self, needed: usize) -> f64 {
        let cols = self.quality.schema_cols.len().max(needed.max(1));
        let ratio = cols as f64 / needed.max(1) as f64;
        self.profile.schema_distraction.powf(ratio.log2().max(0.0))
    }
}

/// Draw one corrupted candidate for the given gold spec.
pub fn sample_candidate(ctx: &SampleCtx<'_>, gold: &QuerySpec, rng: &mut StdRng) -> Candidate {
    let mut spec = gold.clone();
    let mut applied = Vec::new();

    // --- ValueMismatch: knowledge-based. When the stored form of a
    //     mismatched value is nowhere in the prompt, the model has no way
    //     to know it and writes the question's surface form in (almost)
    //     every sample; when the prompt shows the stored form, only a tiny
    //     copy-noise residue remains.
    let vm_modifier = {
        let base = ctx.profile.rate(ErrorClass::ValueMismatch).max(1e-9);
        ctx.class_prob(ErrorClass::ValueMismatch) / base
    };
    for f in spec.filters.iter_mut() {
        let Value::Text(stored) = f.value.clone() else { continue };
        if f.year_of_date {
            continue;
        }
        let mismatch = f.display != stored;
        let knowledge_gap = mismatch && !ctx.quality.has_value(&f.table, &f.column, &stored);
        let prob = if knowledge_gap {
            (0.85 * vm_modifier).clamp(0.0, 0.95)
        } else if mismatch {
            (0.03 * vm_modifier).clamp(0.0, 0.5)
        } else {
            (0.01 * vm_modifier).clamp(0.0, 0.5)
        };
        if rng.gen_bool(prob) {
            let corrupted =
                if mismatch { f.display.clone() } else { flip_case(&stored) };
            if corrupted != stored {
                applied.push(ErrorClass::ValueMismatch);
                f.value = Value::Text(corrupted);
            }
        }
    }

    // --- WrongColumn: per needed column, worse when absent from prompt
    let needed = gold.columns_used();
    let mut rename: Option<((String, String), String)> = None;
    for (t, c) in &needed {
        let mut prob = ctx.class_prob(ErrorClass::WrongColumn) * ctx.distraction(needed.len());
        if !ctx.quality.has_column(t, c) && !ctx.quality.schema_cols.is_empty() {
            // the model cannot read a name that is not in its prompt;
            // hallucination is near-forced regardless of few-shot quality
            prob = (prob * ctx.profile.missing_column_penalty).max(0.7).clamp(0.0, 0.92);
        }
        if rename.is_none() && rng.gen_bool(prob.clamp(0.0, 0.95)) {
            applied.push(ErrorClass::WrongColumn);
            rename = Some(((t.clone(), c.clone()), mangle_column(ctx.db, c, rng)));
        }
    }

    // --- WrongTableQualifier: same-name column in another joined table
    if spec.tables.len() > 1 && rng.gen_bool(ctx.class_prob(ErrorClass::WrongTableQualifier)) {
        let swap = spec.filters.iter().enumerate().find_map(|(i, f)| {
            spec.tables
                .iter()
                .find(|t| {
                    !t.eq_ignore_ascii_case(&f.table)
                        && ctx.db.col_meta(t, &f.column).is_some()
                })
                .map(|other| (i, other.clone()))
        });
        if let Some((i, other)) = swap {
            applied.push(ErrorClass::WrongTableQualifier);
            spec.filters[i].table = other;
        }
    }

    // --- MissingJoin: much likelier when the prompt schema omits the FK
    //     join keys the query needs (the model cannot write a join whose
    //     columns it cannot see)
    let mut missing_join_prob = ctx.class_prob(ErrorClass::MissingJoin);
    if spec.tables.len() > 1 && !ctx.quality.schema_cols.is_empty() {
        let fk_missing = ctx.db.database.schema.foreign_keys.iter().any(|fk| {
            let relevant = spec.tables.iter().any(|t| t.eq_ignore_ascii_case(&fk.table))
                && spec.tables.iter().any(|t| t.eq_ignore_ascii_case(&fk.ref_table));
            relevant
                && (!ctx.quality.has_column(&fk.table, &fk.column)
                    || !ctx.quality.has_column(&fk.ref_table, &fk.ref_column))
        });
        if fk_missing {
            // spike the *unsuppressed* probability to a floor, then re-apply
            // the suppression factor so correction rounds (and test
            // harnesses) can still dampen the class
            let supp = ctx.suppression.get(&ErrorClass::MissingJoin).copied().unwrap_or(1.0);
            let unsuppressed = if supp > 0.0 { missing_join_prob / supp } else { 0.0 };
            missing_join_prob = ((unsuppressed * 8.0).clamp(0.45, 0.9) * supp).min(0.9);
        }
    }
    if spec.tables.len() > 1 && rng.gen_bool(missing_join_prob) {
        let dropped = spec.tables.pop().unwrap();
        // only an error if something still references the dropped table;
        // otherwise it was a harmless redundant join removal
        if gold.columns_used().iter().any(|(t, _)| t.eq_ignore_ascii_case(&dropped)) {
            applied.push(ErrorClass::MissingJoin);
        } else {
            spec.tables.push(dropped);
        }
    }

    // --- AggSwap
    if rng.gen_bool(ctx.class_prob(ErrorClass::AggSwap)) {
        for s in spec.select.iter_mut() {
            if let SelectSpec::Agg { func, column, .. } = s {
                let swapped = match func {
                    AggFunc::Sum => Some(AggFunc::Avg),
                    AggFunc::Avg => Some(AggFunc::Sum),
                    AggFunc::Min => Some(AggFunc::Max),
                    AggFunc::Max => Some(AggFunc::Min),
                    AggFunc::CountDistinct => Some(AggFunc::Count),
                    AggFunc::Count if column.is_some() => Some(AggFunc::CountDistinct),
                    AggFunc::Count => None,
                };
                if let Some(f) = swapped {
                    *func = f;
                    applied.push(ErrorClass::AggSwap);
                    break;
                }
            }
        }
    }

    // --- AggInOrderBy (only meaningful on ungrouped ranked queries)
    if spec.group_by.is_none() {
        if let Some(o) = &mut spec.order {
            if o.agg.is_none() && rng.gen_bool(ctx.class_prob(ErrorClass::AggInOrderBy)) {
                o.agg = Some(if o.desc { AggFunc::Max } else { AggFunc::Min });
                applied.push(ErrorClass::AggInOrderBy);
            }
        }
    }

    // --- MissingLimit
    if spec.order.is_some()
        && spec.limit.is_some()
        && rng.gen_bool(ctx.class_prob(ErrorClass::MissingLimit))
    {
        spec.limit = None;
        applied.push(ErrorClass::MissingLimit);
    }

    // --- OrderFlip
    if let Some(o) = &mut spec.order {
        if rng.gen_bool(ctx.class_prob(ErrorClass::OrderFlip)) {
            o.desc = !o.desc;
            applied.push(ErrorClass::OrderFlip);
        }
    }

    // --- ExtraSelect
    if rng.gen_bool(ctx.class_prob(ErrorClass::ExtraSelect)) {
        if let Some(meta) = ctx.db.table_meta(&spec.tables[0]) {
            if let Some(pk) = meta.cols.iter().find(|c| c.kind == datagen::ColKind::Id) {
                let extra = SelectSpec::Column {
                    table: spec.tables[0].clone(),
                    column: pk.name.clone(),
                };
                if !spec.select.contains(&extra) {
                    spec.select.push(extra);
                    applied.push(ErrorClass::ExtraSelect);
                }
            }
        }
    }

    // --- OpSwap: loosen/tighten one range comparison
    if rng.gen_bool(ctx.class_prob(ErrorClass::OpSwap)) {
        use datagen::CmpOp;
        if let Some(f) = spec.filters.iter_mut().find(|f| {
            matches!(f.op, CmpOp::Gt | CmpOp::Ge | CmpOp::Lt | CmpOp::Le)
        }) {
            f.op = match f.op {
                CmpOp::Gt => CmpOp::Ge,
                CmpOp::Ge => CmpOp::Gt,
                CmpOp::Lt => CmpOp::Le,
                CmpOp::Le => CmpOp::Lt,
                other => other,
            };
            applied.push(ErrorClass::OpSwap);
        }
    }

    // render, then apply AST/string-level corruptions
    let mut ast = spec.to_sql(&ctx.db.database.schema);

    if let Some(((_, old), new_name)) = &rename {
        rename_column(&mut ast, old, new_name);
    }

    // --- RankedAsSubquery
    if spec.group_by.is_none()
        && spec.order.as_ref().map(|o| o.agg.is_none()).unwrap_or(false)
        && spec.limit == Some(1)
        && rng.gen_bool(ctx.class_prob(ErrorClass::RankedAsSubquery))
    {
        ranked_to_subquery(&mut ast, &spec);
        applied.push(ErrorClass::RankedAsSubquery);
    }

    let mut sql = sqlkit::print_select(&ast);

    // --- Syntax
    if rng.gen_bool(ctx.class_prob(ErrorClass::Syntax)) {
        if let Some(pos) = sql.find(" FROM ") {
            sql.replace_range(pos..pos + 6, " FORM ");
            applied.push(ErrorClass::Syntax);
        }
    }

    Candidate { sql, spec, applied }
}

// ---------------- sticky semantic misreads ----------------

/// Per-question probability that the model misreads the question, given
/// the prompt quality. Few-shots raise the ceiling (paper Table 5), CoT
/// mostly stabilises samples, difficulty raises everything (Figure 3).
pub fn semantic_q(
    profile: &ModelProfile,
    difficulty: Difficulty,
    quality: &PromptQuality,
    needed_cols: usize,
    complexity: f64,
) -> f64 {
    let tier = match difficulty {
        Difficulty::Simple => 0,
        Difficulty::Moderate => 1,
        Difficulty::Challenging => 2,
    };
    let mut q = profile.semantic_rate * profile.semantic_difficulty[tier] * complexity;
    // wide prompt schemas confuse comprehension itself, not just column
    // naming: column filtering lowers the misread rate (paper Table 4)
    let cols = quality.schema_cols.len().max(needed_cols.max(1));
    let ratio = cols as f64 / needed_cols.max(1) as f64;
    q *= profile.schema_distraction.powf(ratio.log2().max(0.0) * 0.35);
    q *= if quality.fewshots == 0 {
        1.22
    } else if !quality.fewshot_cot {
        1.10
    } else {
        1.0
    };
    q *= match quality.format {
        OutputFormat::StructuredCot => 1.0,
        OutputFormat::UnstructuredCot => 1.03,
        OutputFormat::SqlOnly => 1.06,
    };
    q.clamp(0.0, 0.95)
}

/// Construct a plausible misreading of the gold intent: a mutated spec
/// that *executes to a non-empty answer different from gold*. Returns
/// `None` when no such mutation exists (the question is unambiguous).
pub fn semantic_misread(db: &BuiltDb, gold: &QuerySpec, rng: &mut StdRng) -> Option<QuerySpec> {
    let schema = &db.database.schema;
    let gold_answer = db
        .database
        .query(&sqlkit::print_select(&gold.to_sql(schema)))
        .ok()?
        .normalized_rows();

    let mut attempts: Vec<QuerySpec> = Vec::new();

    // (a) a filter lands on a sibling column of the same table
    for (i, f) in gold.filters.iter().enumerate() {
        if let Some(meta) = db.table_meta(&f.table) {
            let siblings: Vec<&datagen::ColMeta> = meta
                .cols
                .iter()
                .filter(|c| {
                    !c.name.eq_ignore_ascii_case(&f.column)
                        && c.kind.filterable_eq() == db
                            .col_meta(&f.table, &f.column)
                            .map(|m| m.kind.filterable_eq())
                            .unwrap_or(false)
                        && c.kind != datagen::ColKind::Flag
                })
                .collect();
            if let Some(sib) = siblings.get(rng.gen_range(0..siblings.len().max(1)).min(siblings.len().saturating_sub(1))) {
                let mut spec = gold.clone();
                if sib.kind.filterable_eq() && sib.kind.is_textual() {
                    let values = db.stored_values(&f.table, &sib.name);
                    if let Some(v) = values.get(rng.gen_range(0..values.len().max(1)).min(values.len().saturating_sub(1))) {
                        spec.filters[i].column = sib.name.clone();
                        spec.filters[i].value = Value::Text(v.clone());
                        attempts.push(spec);
                    }
                } else if !sib.kind.is_textual() {
                    spec.filters[i].column = sib.name.clone();
                    attempts.push(spec);
                }
            }
        }
    }

    // (a2) the filter keeps its column but confuses the value with a
    //      different stored value of the same column
    for (i, f) in gold.filters.iter().enumerate() {
        if let Value::Text(stored) = &f.value {
            let others: Vec<String> = db
                .stored_values(&f.table, &f.column)
                .into_iter()
                .filter(|v| v != stored)
                .collect();
            if !others.is_empty() {
                let pick = others[rng.gen_range(0..others.len())].clone();
                let mut spec = gold.clone();
                spec.filters[i].value = Value::Text(pick);
                attempts.push(spec);
            }
        }
    }

    // (b) a projected column swaps to a sibling
    for (i, s) in gold.select.iter().enumerate() {
        if let SelectSpec::Column { table, column } = s {
            if let Some(meta) = db.table_meta(table) {
                for sib in &meta.cols {
                    if !sib.name.eq_ignore_ascii_case(column)
                        && !matches!(sib.kind, datagen::ColKind::Id | datagen::ColKind::Fk)
                    {
                        let mut spec = gold.clone();
                        spec.select[i] =
                            SelectSpec::Column { table: table.clone(), column: sib.name.clone() };
                        attempts.push(spec);
                        break;
                    }
                }
            }
        }
    }

    // (c) a filter silently dropped
    for i in 0..gold.filters.len() {
        let mut spec = gold.clone();
        spec.filters.remove(i);
        attempts.push(spec);
    }

    // (d) aggregate semantics misread
    {
        let mut spec = gold.clone();
        let mut touched = false;
        for s in spec.select.iter_mut() {
            if let SelectSpec::Agg { func, column, .. } = s {
                let swapped = match func {
                    AggFunc::Sum => Some(AggFunc::Avg),
                    AggFunc::Avg => Some(AggFunc::Sum),
                    AggFunc::Min => Some(AggFunc::Max),
                    AggFunc::Max => Some(AggFunc::Min),
                    AggFunc::CountDistinct => Some(AggFunc::Count),
                    AggFunc::Count if column.is_some() => Some(AggFunc::CountDistinct),
                    AggFunc::Count => None,
                };
                if let Some(f2) = swapped {
                    *func = f2;
                    touched = true;
                    break;
                }
            }
        }
        if touched {
            attempts.push(spec);
        }
    }

    // (e) superlative direction misread
    if let Some(o) = &gold.order {
        let mut spec = gold.clone();
        spec.order = Some(datagen::OrderSpec { desc: !o.desc, ..o.clone() });
        attempts.push(spec);
    }

    // keep the first mutation that executes to a different non-empty answer
    for spec in attempts {
        let sql = sqlkit::print_select(&spec.to_sql(schema));
        if let Ok(rs) = db.database.query(&sql) {
            if !rs.is_effectively_empty() && rs.normalized_rows() != gold_answer {
                return Some(spec);
            }
        }
    }
    None
}

/// Collect every single-quoted span in a text.
fn single_quoted(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('\'') {
        let after = &rest[start + 1..];
        match after.find('\'') {
            Some(end) => {
                out.push(after[..end].to_owned());
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    out
}

/// Flip the case style of a stored value (upper↔title/lower).
fn flip_case(stored: &str) -> String {
    if stored.chars().any(|c| c.is_lowercase()) {
        stored.to_uppercase()
    } else {
        stored.to_lowercase()
    }
}

/// Produce a plausible-but-nonexistent column name.
fn mangle_column(db: &BuiltDb, column: &str, rng: &mut StdRng) -> String {
    let candidates = [
        column.replace(' ', ""),
        column.replace(' ', "_"),
        format!("{column}s"),
        format!("{column}_id"),
        camel_to_snake(column),
        format!("{column}Name"),
    ];
    let exists = |name: &str| {
        db.tables
            .iter()
            .any(|t| t.cols.iter().any(|c| c.name.eq_ignore_ascii_case(name)))
    };
    let start = rng.gen_range(0..candidates.len());
    for k in 0..candidates.len() {
        let cand = &candidates[(start + k) % candidates.len()];
        if !cand.eq_ignore_ascii_case(column) && !exists(cand) {
            return cand.clone();
        }
    }
    format!("{column}_x")
}

fn camel_to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_lowercase());
    }
    out.replace(' ', "_")
}

/// Rename every reference to `old` column in the statement.
fn rename_column(ast: &mut SelectStmt, old: &str, new_name: &str) {
    ast.walk_exprs_mut(&mut |e| {
        if let Expr::Column { column, .. } = e {
            if column.eq_ignore_ascii_case(old) {
                *column = new_name.to_owned();
            }
        }
    });
}

/// Rewrite `ORDER BY col [DESC] LIMIT 1` into
/// `WHERE col = (SELECT MAX/MIN(col) FROM <same sources>)`.
fn ranked_to_subquery(ast: &mut SelectStmt, spec: &QuerySpec) {
    let Some(OrderItem { expr: order_col, desc }) = ast.order_by.first().cloned() else {
        return;
    };
    let func = if desc { "max" } else { "min" };
    let mut sub_core = ast.core.clone();
    sub_core.items = vec![sqlkit::ast::SelectItem::Expr {
        expr: Expr::Function {
            name: func.into(),
            args: vec![order_col.clone()],
            distinct: false,
            span: sqlkit::Span::default(),
        },
        alias: None,
    }];
    sub_core.distinct = false;
    let sub = SelectStmt::simple(sub_core);
    let cond = Expr::binary(order_col, BinOp::Eq, Expr::Subquery(Box::new(sub)));
    ast.core.where_clause = Some(match ast.core.where_clause.take() {
        Some(w) => Expr::binary(w, BinOp::And, cond),
        None => cond,
    });
    ast.order_by.clear();
    ast.limit = None;
    let _ = spec;
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};
    use rand::SeedableRng;

    struct Fixture {
        bench: datagen::Benchmark,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture { bench: generate(&Profile::tiny()) }
        }

        fn rich_example(&self) -> &datagen::Example {
            self.bench
                .dev
                .iter()
                .chain(&self.bench.train)
                .find(|e| !e.spec.filters.is_empty())
                .expect("benchmark has filtered examples")
        }
    }

    fn full_quality(_db: &BuiltDb, spec: &QuerySpec) -> PromptQuality {
        PromptQuality {
            schema_cols: spec
                .columns_used()
                .iter()
                .map(|(t, c)| (t.to_lowercase(), c.to_lowercase()))
                .collect(),
            values: spec
                .filters
                .iter()
                .filter_map(|f| match &f.value {
                    Value::Text(s) => Some((
                        f.table.to_lowercase(),
                        f.column.to_lowercase(),
                        s.clone(),
                    )),
                    _ => None,
                })
                .collect(),
            fewshots: 5,
            fewshot_cot: true,
            format: OutputFormat::StructuredCot,
            quoted_literals: Vec::new(),
        }
    }

    fn ctx<'a>(
        profile: &'a ModelProfile,
        db: &'a BuiltDb,
        quality: &'a PromptQuality,
        supp: &'a Suppression,
    ) -> SampleCtx<'a> {
        SampleCtx {
            profile,
            db,
            quality,
            difficulty: Difficulty::Moderate,
            temperature: 0.7,
            sample_idx: 0,
            suppression: supp,
        }
    }

    #[test]
    fn good_prompts_mostly_yield_gold_sql() {
        let f = Fixture::new();
        let ex = f.rich_example();
        let db = f.bench.db(&ex.db_id).unwrap();
        let profile = ModelProfile::gpt_4o();
        let quality = full_quality(db, &ex.spec);
        let supp = Suppression::new();
        let c = ctx(&profile, db, &quality, &supp);
        let mut rng = StdRng::seed_from_u64(1);
        let mut clean = 0;
        for _ in 0..60 {
            let cand = sample_candidate(&c, &ex.spec, &mut rng);
            if cand.applied.is_empty() {
                assert_eq!(cand.sql, ex.gold_sql);
                clean += 1;
            }
        }
        assert!(clean > 25, "clean candidates = {clean}/60");
    }

    #[test]
    fn empty_value_block_raises_value_mismatch() {
        let f = Fixture::new();
        // pick an example with a display-mismatched text filter
        let ex = f
            .bench
            .dev
            .iter()
            .chain(&f.bench.train)
            .find(|e| e.spec.filters.iter().any(|fl| fl.display_mismatch() && matches!(fl.value, Value::Text(_)) && !fl.year_of_date))
            .expect("quirky profile yields mismatched filters");
        let db = f.bench.db(&ex.db_id).unwrap();
        let profile = ModelProfile::gpt_4o();
        let supp = Suppression::new();

        let with_vals = full_quality(db, &ex.spec);
        let mut without_vals = with_vals.clone();
        without_vals.values.clear();

        let count_vm = |q: &PromptQuality, seed: u64| {
            let c = ctx(&profile, db, q, &supp);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..120)
                .filter(|_| {
                    sample_candidate(&c, &ex.spec, &mut rng)
                        .applied
                        .contains(&ErrorClass::ValueMismatch)
                })
                .count()
        };
        let with_n = count_vm(&with_vals, 7);
        let without_n = count_vm(&without_vals, 7);
        assert!(
            without_n > with_n * 3,
            "value retrieval should matter: with={with_n} without={without_n}"
        );
    }

    #[test]
    fn missing_column_forces_hallucination() {
        let f = Fixture::new();
        let ex = f.rich_example();
        let db = f.bench.db(&ex.db_id).unwrap();
        let profile = ModelProfile::gpt_4o();
        let supp = Suppression::new();
        let mut quality = full_quality(db, &ex.spec);
        // drop the first needed column from the prompt schema
        quality.schema_cols.remove(0);
        // keep at least one col so "schema present" logic engages
        quality.schema_cols.push(("ghost".into(), "ghost".into()));
        let c = ctx(&profile, db, &quality, &supp);
        let mut rng = StdRng::seed_from_u64(3);
        let wrong = (0..80)
            .filter(|_| {
                sample_candidate(&c, &ex.spec, &mut rng)
                    .applied
                    .contains(&ErrorClass::WrongColumn)
            })
            .count();
        assert!(wrong > 40, "missing column should force errors, got {wrong}/80");
    }

    #[test]
    fn corrupted_sql_differs_and_weak_models_err_more() {
        let f = Fixture::new();
        let ex = f.rich_example();
        let db = f.bench.db(&ex.db_id).unwrap();
        let supp = Suppression::new();
        let quality = PromptQuality {
            format: OutputFormat::SqlOnly,
            ..Default::default()
        };
        let count_corrupted = |profile: &ModelProfile| {
            let c = ctx(profile, db, &quality, &supp);
            let mut rng = StdRng::seed_from_u64(5);
            let mut corrupted = 0;
            for _ in 0..60 {
                let cand = sample_candidate(&c, &ex.spec, &mut rng);
                if !cand.applied.is_empty() {
                    corrupted += 1;
                    assert_ne!(cand.sql, ex.gold_sql);
                }
            }
            corrupted
        };
        let weak = count_corrupted(&ModelProfile::gpt_4o_mini());
        let strong = count_corrupted(&ModelProfile::gpt_4o());
        assert!(weak >= 5, "weak model on poor prompt must err, got {weak}/60");
        assert!(weak > strong, "mini ({weak}) must err more than 4o ({strong})");
    }

    #[test]
    fn suppression_reduces_class_rate() {
        let f = Fixture::new();
        let ex = f
            .bench
            .dev
            .iter()
            .chain(&f.bench.train)
            .find(|e| {
                e.spec.filters.iter().any(|fl| {
                    fl.display_mismatch()
                        && matches!(fl.value, Value::Text(_))
                        && !fl.year_of_date
                })
            })
            .unwrap();
        let db = f.bench.db(&ex.db_id).unwrap();
        let profile = ModelProfile::gpt_4o();
        let mut quality = full_quality(db, &ex.spec);
        quality.values.clear();
        let mut supp = Suppression::new();
        supp.insert(ErrorClass::ValueMismatch, 0.05);
        let free = Suppression::new();
        let count = |s: &Suppression| {
            let c = ctx(&profile, db, &quality, s);
            let mut rng = StdRng::seed_from_u64(11);
            (0..100)
                .filter(|_| {
                    sample_candidate(&c, &ex.spec, &mut rng)
                        .applied
                        .contains(&ErrorClass::ValueMismatch)
                })
                .count()
        };
        assert!(count(&supp) < count(&free) / 2);
    }

    #[test]
    fn beam_decay_raises_late_sample_error() {
        let profile = ModelProfile::gpt_4o_mini();
        let quality = PromptQuality::default();
        let supp = Suppression::new();
        let f = Fixture::new();
        let db = &f.bench.dbs[0];
        let mk = |sample_idx: usize| SampleCtx {
            profile: &profile,
            db,
            quality: &quality,
            difficulty: Difficulty::Moderate,
            temperature: 0.7,
            sample_idx,
            suppression: &supp,
        };
        let early = mk(0).class_prob(ErrorClass::AggSwap);
        let late = mk(20).class_prob(ErrorClass::AggSwap);
        assert!(late > early * 1.5, "late={late} early={early}");
    }

    #[test]
    fn mangled_columns_do_not_exist() {
        let f = Fixture::new();
        let db = &f.bench.dbs[0];
        let mut rng = StdRng::seed_from_u64(9);
        for t in &db.tables {
            for c in &t.cols {
                let m = mangle_column(db, &c.name, &mut rng);
                assert!(
                    db.tables
                        .iter()
                        .all(|tt| tt.cols.iter().all(|cc| !cc.name.eq_ignore_ascii_case(&m))),
                    "mangled {m} exists"
                );
            }
        }
    }
}
