//! The simulated model's "pre-training corpus": a registry mapping every
//! benchmark question back to its structured intent.
//!
//! A real LLM knows how to read questions because it was trained on
//! language; the simulator substitutes that competence with a lookup into
//! the benchmark registry, then *degrades* the recovered intent according
//! to prompt quality. Questions outside the registry fall back to a naive
//! keyword parser (see [`Oracle::fallback_spec`]), so ad-hoc user questions
//! in the examples still work.

use datagen::{Benchmark, BuiltDb, ColKind, Difficulty, QuerySpec, SelectSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// One registered question.
#[derive(Debug, Clone)]
pub struct OracleEntry {
    /// Database the question targets.
    pub db_id: String,
    /// The structured intent.
    pub spec: QuerySpec,
    /// Difficulty tier.
    pub difficulty: Difficulty,
}

/// Question → intent registry over a benchmark.
#[derive(Debug, Clone)]
pub struct Oracle {
    benchmark: Arc<Benchmark>,
    entries: HashMap<String, OracleEntry>,
}

impl Oracle {
    /// Build from a benchmark, registering every split's questions.
    pub fn new(benchmark: Arc<Benchmark>) -> Self {
        let mut entries = HashMap::new();
        for ex in benchmark
            .train
            .iter()
            .chain(&benchmark.dev)
            .chain(&benchmark.test)
        {
            entries.entry(ex.question.clone()).or_insert_with(|| OracleEntry {
                db_id: ex.db_id.clone(),
                spec: ex.spec.clone(),
                difficulty: ex.difficulty,
            });
        }
        Oracle { benchmark, entries }
    }

    /// Look up a question verbatim.
    pub fn lookup(&self, question: &str) -> Option<&OracleEntry> {
        self.entries.get(question.trim())
    }

    /// The backing benchmark.
    pub fn benchmark(&self) -> &Benchmark {
        &self.benchmark
    }

    /// A database by id.
    pub fn db(&self, id: &str) -> Option<&BuiltDb> {
        self.benchmark.db(id)
    }

    /// Number of registered questions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Naive keyword parse for unregistered questions: pick the table whose
    /// name/noun appears in the question, count when it asks "how many",
    /// otherwise select the first descriptive column; quoted spans become
    /// equality filters when they match a stored value.
    pub fn fallback_spec(&self, question: &str, db: &BuiltDb) -> QuerySpec {
        let q = question.to_lowercase();
        let table = db
            .tables
            .iter()
            .find(|t| q.contains(&t.name.to_lowercase()) || q.contains(&t.noun.to_lowercase()))
            .or_else(|| db.tables.first())
            .expect("built databases always have tables");

        let select = if q.contains("how many") || q.contains("number of") {
            vec![SelectSpec::Agg {
                func: datagen::AggFunc::Count,
                table: table.name.clone(),
                column: None,
            }]
        } else {
            let col = table
                .cols
                .iter()
                .find(|c| !matches!(c.kind, ColKind::Id | ColKind::Fk))
                .or_else(|| table.cols.first())
                .expect("tables have columns");
            vec![SelectSpec::Column { table: table.name.clone(), column: col.name.clone() }]
        };

        // quoted spans as filters
        let mut filters = Vec::new();
        for span in quoted_spans(question) {
            'cols: for col in &table.cols {
                if !col.kind.is_textual() {
                    continue;
                }
                for stored in db.stored_values(&table.name, &col.name) {
                    let display = db
                        .display_form(&table.name, &col.name, &stored)
                        .unwrap_or(&stored)
                        .to_lowercase();
                    if display == span.to_lowercase() || stored.to_lowercase() == span.to_lowercase()
                    {
                        filters.push(datagen::FilterSpec {
                            table: table.name.clone(),
                            column: col.name.clone(),
                            op: datagen::CmpOp::Eq,
                            value: sqlkit::Value::Text(stored.clone()),
                            value2: None,
                            display: span.clone(),
                            year_of_date: false,
                            abstract_phrase: None,
                            has_evidence: true,
                        });
                        break 'cols;
                    }
                }
            }
        }

        QuerySpec {
            tables: vec![table.name.clone()],
            select,
            filters,
            group_by: None,
            order: None,
            limit: None,
            distinct: false,
            difficulty: Difficulty::Simple,
        }
    }
}

fn quoted_spans(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for quote in ['\'', '"'] {
        let mut rest = text;
        while let Some(start) = rest.find(quote) {
            let after = &rest[start + 1..];
            match after.find(quote) {
                Some(end) => {
                    out.push(after[..end].to_owned());
                    rest = &after[end + 1..];
                }
                None => break,
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, Profile};

    fn oracle() -> Oracle {
        Oracle::new(Arc::new(generate(&Profile::tiny())))
    }

    #[test]
    fn registers_all_questions() {
        let o = oracle();
        let b = o.benchmark();
        for ex in b.dev.iter() {
            let entry = o.lookup(&ex.question).unwrap();
            // duplicates keep the first registration, which may differ; at
            // minimum the db and difficulty-bearing spec must be coherent
            assert!(b.db(&entry.db_id).is_some());
        }
        assert!(!o.is_empty());
    }

    #[test]
    fn unknown_question_returns_none() {
        let o = oracle();
        assert!(o.lookup("What is the airspeed velocity of an unladen swallow?").is_none());
    }

    #[test]
    fn fallback_parses_count_questions() {
        let o = oracle();
        let db = &o.benchmark().dbs[0];
        let noun = db.tables[0].noun.clone();
        let spec = o.fallback_spec(&format!("How many {noun} are there?"), db);
        assert!(matches!(spec.select[0], SelectSpec::Agg { .. }));
        let sql = sqlkit::print_select(&spec.to_sql(&db.database.schema));
        db.database.query(&sql).unwrap();
    }

    #[test]
    fn fallback_matches_quoted_values() {
        let o = oracle();
        let db = &o.benchmark().dbs[0];
        // find some stored textual value with a display form
        let mut found = None;
        'outer: for t in &db.tables {
            for c in &t.cols {
                if c.kind.is_textual() && c.kind != ColKind::Date {
                    if let Some(stored) = db.stored_values(&t.name, &c.name).first() {
                        let display =
                            db.display_form(&t.name, &c.name, stored).unwrap().to_owned();
                        found = Some((t.noun.clone(), display));
                        break 'outer;
                    }
                }
            }
        }
        let (noun, display) = found.expect("benchmark has textual values");
        let spec =
            o.fallback_spec(&format!("How many {noun} have value '{display}'?"), db);
        assert_eq!(spec.filters.len(), 1, "quoted value should become a filter");
    }
}
