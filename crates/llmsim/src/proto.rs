//! The prompt protocol shared between the pipeline and the simulated model.
//!
//! OpenSearch-SQL's prompts are structured (paper Listings 1–5). The
//! pipeline emits these markers; [`SimLlm`](crate::sim::SimLlm) parses them
//! back to measure *prompt quality* — which columns/values/few-shots the
//! prompt actually contains — and conditions its hallucination rates on
//! that. A real LLM would read the same markers as instructions.

/// Task header: first line of every prompt, `#task: <name>`.
pub const TASK_PREFIX: &str = "#task:";
/// Generation task (Listing 5).
pub const TASK_GENERATION: &str = "generation";
/// Extraction task (Listing 4).
pub const TASK_EXTRACTION: &str = "extraction";
/// Correction task (Listing 3).
pub const TASK_CORRECTION: &str = "correction";
/// Self-taught CoT augmentation of a Query-SQL pair (Listing 2 build).
pub const TASK_COT_AUGMENT: &str = "cot_augment";
/// SELECT-style alignment of the Info Alignment step.
pub const TASK_SELECT_ALIGN: &str = "select_align";

/// Question marker, identical to the paper's listings.
pub const QUESTION_OPEN: &str = "/* Answer the following:";
/// Closes the question marker.
pub const QUESTION_CLOSE: &str = "*/";
/// Schema block header.
pub const SCHEMA_HEADER: &str = "/* Database schema */";
/// Retrieved-values block header.
pub const VALUES_HEADER: &str = "/* Similar values */";
/// Few-shot block header.
pub const FEWSHOT_HEADER: &str = "/* Some example pairs */";
/// Evidence line prefix.
pub const EVIDENCE_PREFIX: &str = "#evidence:";
/// Erroneous-SQL line prefix in correction prompts.
pub const ERROR_SQL_PREFIX: &str = "#Error SQL:";
/// Error-description line prefix in correction prompts.
pub const ERROR_INFO_PREFIX: &str = "#Error:";
/// Gold-SQL line prefix in CoT-augmentation prompts.
pub const SQL_PREFIX: &str = "#SQL:";
/// Output-format directive requesting the structured CoT of Listing 5.
pub const FORMAT_STRUCTURED_COT: &str = "#format: reason,columns,values,SELECT,SQL-like,SQL";
/// Output-format directive requesting free-form chain of thought.
pub const FORMAT_UNSTRUCTURED_COT: &str = "#format: let's think step by step, then SQL";
/// Output-format directive requesting bare SQL.
pub const FORMAT_SQL_ONLY: &str = "#format: SQL";

/// Target-database line prefix, `#db: <id>`.
pub const DB_PREFIX: &str = "#db:";

/// Extract the target database id from a prompt.
pub fn parse_db(prompt: &str) -> Option<&str> {
    for line in prompt.lines() {
        if let Some(rest) = line.trim().strip_prefix(DB_PREFIX) {
            return Some(rest.trim());
        }
    }
    None
}

/// Extract the error-description line from a correction prompt.
pub fn parse_error_info(prompt: &str) -> Option<String> {
    for line in prompt.lines() {
        if let Some(rest) = line.trim().strip_prefix(ERROR_INFO_PREFIX) {
            return Some(rest.trim().to_owned());
        }
    }
    None
}

/// Extract the task name from a prompt (defaults to generation).
pub fn parse_task(prompt: &str) -> &str {
    for line in prompt.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix(TASK_PREFIX) {
            return rest.trim();
        }
    }
    TASK_GENERATION
}

/// Extract the *final* question from a prompt (few-shot blocks contain
/// earlier question markers; the real question is the last).
pub fn parse_question(prompt: &str) -> Option<&str> {
    let start = prompt.rfind(QUESTION_OPEN)? + QUESTION_OPEN.len();
    let rest = &prompt[start..];
    let end = rest.find(QUESTION_CLOSE)?;
    Some(rest[..end].trim())
}

/// Every `table.column` mentioned in the schema block, lower-cased.
pub fn parse_schema_columns(prompt: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some(start) = prompt.find(SCHEMA_HEADER) else {
        return out;
    };
    let block = &prompt[start..];
    let mut current_table: Option<String> = None;
    for line in block.lines().skip(1) {
        let line = line.trim();
        if let Some(t) = line.strip_prefix("# Table:") {
            current_table = Some(t.trim().to_lowercase());
        } else if let Some(col) = line.strip_prefix("#   ") {
            if let Some(t) = &current_table {
                // column line: `name TYPE ...`; names with spaces are the
                // prefix before the final type keyword — take everything up
                // to the last token that is a known type
                if let Some(name) = split_col_line(col) {
                    out.push((t.clone(), name.to_lowercase()));
                }
            }
        } else if line.starts_with("# FK:") || line.is_empty() {
            continue;
        } else if !line.starts_with('#') {
            break; // schema block ended
        }
    }
    out
}

fn split_col_line(line: &str) -> Option<&str> {
    for ty in [" INTEGER", " REAL", " TEXT", " BLOB"] {
        if let Some(pos) = line.find(ty) {
            return Some(line[..pos].trim());
        }
    }
    None
}

/// Every `table.column = 'stored'` triple in the values block.
pub fn parse_values_block(prompt: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let Some(start) = prompt.find(VALUES_HEADER) else {
        return out;
    };
    for line in prompt[start..].lines().skip(1) {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('#') else {
            if line.is_empty() {
                continue;
            }
            break;
        };
        // format: table.column = 'value'
        if let Some((lhs, rhs)) = rest.split_once('=') {
            let lhs = lhs.trim();
            if let Some((t, c)) = split_qualified(lhs) {
                let v = rhs.trim().trim_matches('\'').to_owned();
                out.push((t.to_lowercase(), c.to_lowercase(), v));
            }
        }
    }
    out
}

fn split_qualified(s: &str) -> Option<(&str, &str)> {
    let (t, c) = s.split_once('.')?;
    let c = c.trim_matches('`');
    Some((t.trim(), c))
}

/// Number of few-shot examples in the prompt (question markers minus the
/// final real one).
pub fn count_fewshots(prompt: &str) -> usize {
    prompt.matches(QUESTION_OPEN).count().saturating_sub(1)
}

/// Do the few-shot examples carry CoT fields?
pub fn fewshots_have_cot(prompt: &str) -> bool {
    match prompt.find(FEWSHOT_HEADER) {
        Some(start) => prompt[start..].contains("#reason:"),
        None => false,
    }
}

/// Which output format does the prompt request?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Structured CoT (Listing 5).
    StructuredCot,
    /// Free-form reasoning then SQL.
    UnstructuredCot,
    /// Bare SQL.
    #[default]
    SqlOnly,
}

/// Parse the requested output format (defaults to bare SQL).
pub fn parse_format(prompt: &str) -> OutputFormat {
    if prompt.contains(FORMAT_STRUCTURED_COT) {
        OutputFormat::StructuredCot
    } else if prompt.contains(FORMAT_UNSTRUCTURED_COT) {
        OutputFormat::UnstructuredCot
    } else {
        OutputFormat::SqlOnly
    }
}

/// Extract the last `#SQL:` payload from a model response.
pub fn parse_sql_from_response(text: &str) -> Option<&str> {
    let start = text.rfind(SQL_PREFIX)? + SQL_PREFIX.len();
    let rest = text[start..].trim();
    Some(rest)
}

/// Extract a named single-line field (`#name: value`) from a response.
pub fn parse_field<'a>(text: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("#{name}:");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(&tag) {
            return Some(rest.trim());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROMPT: &str = "#task: generation\n\
        /* Database schema */\n\
        # Table: Patient\n\
        #   PatientID INTEGER [PK] -- unique id\n\
        #   First Date TEXT -- admission\n\
        # FK: Laboratory.PatientID -> Patient.PatientID\n\
        /* Similar values */\n\
        # Patient.City = 'OSL'\n\
        /* Some example pairs */\n\
        /* Answer the following: old question */\n\
        #reason: because\n\
        #SQL: SELECT 1\n\
        #format: reason,columns,values,SELECT,SQL-like,SQL\n\
        /* Answer the following: How many patients? */\n";

    #[test]
    fn parses_task_and_question() {
        assert_eq!(parse_task(PROMPT), "generation");
        assert_eq!(parse_question(PROMPT), Some("How many patients?"));
    }

    #[test]
    fn parses_schema_columns_including_spaced_names() {
        let cols = parse_schema_columns(PROMPT);
        assert!(cols.contains(&("patient".into(), "patientid".into())));
        assert!(cols.contains(&("patient".into(), "first date".into())));
    }

    #[test]
    fn parses_values_block() {
        let vals = parse_values_block(PROMPT);
        assert_eq!(vals, vec![("patient".into(), "city".into(), "OSL".into())]);
    }

    #[test]
    fn counts_fewshots_and_detects_cot() {
        assert_eq!(count_fewshots(PROMPT), 1);
        assert!(fewshots_have_cot(PROMPT));
        assert_eq!(parse_format(PROMPT), OutputFormat::StructuredCot);
    }

    #[test]
    fn response_sql_extraction() {
        let resp = "#reason: x\n#SQL-like: Show 1\n#SQL: SELECT COUNT(*) FROM t";
        assert_eq!(parse_sql_from_response(resp), Some("SELECT COUNT(*) FROM t"));
        assert_eq!(parse_field(resp, "reason"), Some("x"));
        assert_eq!(parse_field(resp, "missing"), None);
    }

    #[test]
    fn defaults_when_markers_missing() {
        assert_eq!(parse_task("hello"), TASK_GENERATION);
        assert_eq!(parse_question("hello"), None);
        assert_eq!(parse_format("hello"), OutputFormat::SqlOnly);
        assert_eq!(count_fewshots("hello"), 0);
    }
}
