//! # llmsim — a deterministic simulated LLM for text-to-SQL pipelines
//!
//! Substitutes for GPT-4o / GPT-4o-mini / GPT-4 in the OpenSearch-SQL
//! reproduction. The pipeline talks to the [`chat::LanguageModel`] trait;
//! [`sim::SimLlm`] implements it as a *noisy oracle*: it recovers each
//! question's structured intent from the benchmark registry
//! ([`oracle::Oracle`]), measures the prompt's quality through the shared
//! [`proto`] markers, and injects hallucinations ([`corrupt`]) whose
//! probabilities are causally tied to what the prompt is missing.
//! Profiles ([`profile::ModelProfile`]) calibrate overall levels; all
//! module-ablation deltas emerge from which error classes each pipeline
//! module can repair.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod chat;
pub mod corrupt;
pub mod flaky;
pub mod oracle;
pub mod profile;
pub mod proto;
pub mod sim;

pub use chat::{count_tokens, ChatRequest, ChatResponse, LanguageModel};
pub use corrupt::{Candidate, PromptQuality, Suppression};
pub use flaky::{FallibleLanguageModel, FaultKind, FlakyLlm, LlmFailure};
pub use oracle::{Oracle, OracleEntry};
pub use profile::{ErrorClass, ModelProfile};
pub use sim::{render_sql_like, SimLlm, Usage};
