//! The language-model abstraction the pipeline talks to.
//!
//! OpenSearch-SQL's agents are prompt programs; the pipeline only ever sees
//! this trait. The reproduction plugs in [`SimLlm`](crate::sim::SimLlm),
//! but a client for a real chat API could implement the same trait.

/// A single completion request.
#[derive(Debug, Clone)]
pub struct ChatRequest {
    /// The full prompt (system + user concatenated; the simulated model
    /// parses structural markers out of it).
    pub prompt: String,
    /// Sampling temperature; 0 is deterministic, higher adds per-sample
    /// corruption noise.
    pub temperature: f64,
    /// Number of samples to draw (the paper's beam of up to 21 candidates).
    pub n: usize,
    /// Caller-chosen tag mixed into the sampling seed so that repeated
    /// calls (e.g. correction retries) draw fresh noise deterministically.
    pub seed_tag: u64,
}

impl ChatRequest {
    /// A single-sample, temperature-0 request.
    pub fn once(prompt: impl Into<String>) -> Self {
        ChatRequest { prompt: prompt.into(), temperature: 0.0, n: 1, seed_tag: 0 }
    }
}

/// A completion response with usage accounting.
#[derive(Debug, Clone)]
pub struct ChatResponse {
    /// One text per requested sample.
    pub texts: Vec<String>,
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens across all returned samples.
    pub completion_tokens: usize,
    /// Modelled wall-clock latency in milliseconds.
    pub latency_ms: f64,
}

/// The language-model interface. `Send + Sync` so evaluation harnesses can
/// fan examples out across threads against one shared model.
pub trait LanguageModel: Send + Sync {
    /// Complete a request.
    fn complete(&self, req: &ChatRequest) -> ChatResponse;
    /// Model name (for reports).
    fn name(&self) -> &str;
}

/// Approximate tokenizer: whitespace-delimited words plus punctuation
/// runs, matching the ~0.75 words/token rule of BPE tokenizers closely
/// enough for cost accounting.
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    let mut in_word = false;
    for c in text.chars() {
        if c.is_alphanumeric() {
            if !in_word {
                tokens += 1;
                in_word = true;
            }
        } else {
            in_word = false;
            if !c.is_whitespace() {
                tokens += 1;
            }
        }
    }
    // long words split into multiple BPE pieces; approximate with one extra
    // token per 24 bytes of text (word/punctuation counting above already
    // covers the common short pieces, so this surcharge stays small)
    tokens + text.len() / 24
}

/// Deterministic latency model: a fixed round-trip plus per-token decode
/// cost. `speed` is tokens-per-millisecond of the simulated endpoint.
pub fn model_latency_ms(prompt_tokens: usize, completion_tokens: usize, speed: f64) -> f64 {
    let rtt = 180.0;
    rtt + prompt_tokens as f64 / (speed * 8.0) + completion_tokens as f64 / speed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_counts_scale_with_text() {
        let short = count_tokens("SELECT 1");
        let long = count_tokens("SELECT name, age FROM patients WHERE city = 'Oslo' ORDER BY age");
        assert!(short < long);
        assert!(short >= 2);
    }

    #[test]
    fn punctuation_counts() {
        assert!(count_tokens("a,b.c") >= 5);
        assert_eq!(count_tokens(""), 0);
    }

    #[test]
    fn token_counts_are_pinned() {
        // pins the exact formula (words + punctuation runs + len/24
        // surcharge) so accidental tokenizer changes show up in review
        assert_eq!(count_tokens("SELECT 1"), 2);
        assert_eq!(count_tokens("a,b.c"), 5);
        assert_eq!(count_tokens("SELECT name FROM t WHERE id = 3"), 8 + 31 / 24);
        // 25 chars of one word: 1 word token + 1 length surcharge token
        assert_eq!(count_tokens(&"x".repeat(25)), 2);
    }

    #[test]
    fn latency_grows_with_tokens() {
        assert!(model_latency_ms(1000, 500, 10.0) > model_latency_ms(100, 50, 10.0));
    }

    #[test]
    fn once_builds_single_request() {
        let r = ChatRequest::once("hi");
        assert_eq!(r.n, 1);
        assert_eq!(r.temperature, 0.0);
    }
}
