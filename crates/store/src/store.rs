//! The durable store: a base file snapshot plus a write-ahead log.
//!
//! `Store` owns an in-memory [`Database`] whose durable form is the
//! pair `(base file, WAL)`. Mutating statements go through
//! [`Store::execute`], which applies them in memory and appends them to
//! the log; [`Store::commit`] makes the open transaction durable;
//! [`Store::checkpoint`] folds the log into a fresh base snapshot and
//! truncates it. Reopening replays committed transactions on top of the
//! base file, so a crash at any point recovers exactly the last
//! committed state.

use crate::file::{read_database, write_database, LoadedStore};
use crate::wal::{FsMedia, ReplayReport, Wal, WalMedia};
use crate::StoreError;
use sqlkit::Database;
use std::path::{Path, PathBuf};

/// What [`Store::open`] found and did.
#[derive(Debug, Clone)]
pub struct OpenReport {
    /// Replay outcome over the WAL.
    pub replay: ReplayReport,
    /// Size of the base file in bytes.
    pub base_bytes: u64,
}

/// A database with durable storage underneath it.
#[derive(Debug)]
pub struct Store<M: WalMedia = FsMedia> {
    path: PathBuf,
    db: Database,
    blobs: Vec<(String, Vec<u8>)>,
    wal: Wal<M>,
}

/// The WAL path conventionally paired with a base store file.
pub fn wal_path(base: &Path) -> PathBuf {
    let mut os = base.as_os_str().to_owned();
    os.push(".wal");
    PathBuf::from(os)
}

impl Store<FsMedia> {
    /// Create a store at `path` from an existing database (plus named
    /// blobs), writing the base snapshot and an empty WAL. Any sidecar
    /// WAL left behind by an earlier store at the same path is
    /// truncated without being replayed — the fresh base owns all
    /// state, and a stale log's statements need not even parse against
    /// the new schema.
    pub fn create(
        path: &Path,
        db: Database,
        blobs: Vec<(String, Vec<u8>)>,
    ) -> Result<Self, StoreError> {
        write_database(path, &db, &blobs, 0)?;
        let media = FsMedia::open(&wal_path(path))?;
        let wal = Wal::create(media)?;
        Ok(Store { path: path.to_owned(), db, blobs, wal })
    }

    /// Open a store: read the base file, replay the WAL's committed
    /// transactions, and truncate any uncommitted tail.
    pub fn open(path: &Path) -> Result<(Self, OpenReport), StoreError> {
        let media = FsMedia::open(&wal_path(path))?;
        Store::open_with(path, media)
    }
}

impl<M: WalMedia> Store<M> {
    /// Open a store over explicit WAL media (fault-injection tests pass
    /// a [`FaultFile`] here).
    pub fn open_with(path: &Path, media: M) -> Result<(Self, OpenReport), StoreError> {
        let loaded: LoadedStore = read_database(path)?;
        let LoadedStore { mut database, blobs, file_bytes, base_seq } = loaded;
        let (wal, replay) = Wal::open(media, &mut database, base_seq)?;
        let report = OpenReport { replay, base_bytes: file_bytes };
        Ok((Store { path: path.to_owned(), db: database, blobs, wal }, report))
    }

    /// The live database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Named blobs stored alongside the database.
    pub fn blobs(&self) -> &[(String, Vec<u8>)] {
        &self.blobs
    }

    /// Base file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Execute a mutating script: applied in memory immediately and
    /// appended to the WAL as one statement record of the open
    /// transaction. Not durable until [`Store::commit`].
    pub fn execute(&mut self, sql: &str) -> Result<(), StoreError> {
        // validate against the live database first so the log only ever
        // holds statements that executed successfully
        self.db
            .execute_script(sql)
            .map_err(|e| StoreError::corrupt(format!("execute: {e}")))?;
        self.wal.append_stmt(sql)?;
        Ok(())
    }

    /// Commit the open transaction (durable after this returns).
    pub fn commit(&mut self) -> Result<u64, StoreError> {
        Ok(self.wal.commit()?)
    }

    /// Write an fsync-point marker into the log.
    pub fn fsync_mark(&mut self) -> Result<(), StoreError> {
        Ok(self.wal.fsync_mark()?)
    }

    /// Statements executed since the last commit.
    pub fn pending_stmts(&self) -> u64 {
        self.wal.pending_stmts()
    }

    /// Last committed sequence number.
    pub fn commit_seq(&self) -> u64 {
        self.wal.seq()
    }

    /// Current WAL end offset in bytes.
    pub fn wal_end(&self) -> u64 {
        self.wal.end()
    }

    /// Checkpoint: commit any open transaction, write the current state
    /// as a fresh base snapshot, and truncate the log. Returns the new
    /// base file size.
    ///
    /// The snapshot records the current commit sequence as its
    /// `base_seq`, so a crash after the base file is published (the
    /// atomic rename inside [`write_database`]) but before the log is
    /// truncated is harmless: the next open skips every WAL commit the
    /// base already folded in instead of replaying it twice.
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        let stats = crate::stats::store_stats();
        stats.checkpoint_begin();
        let started = std::time::Instant::now();
        let result = (|| {
            if self.wal.pending_stmts() > 0 {
                self.wal.commit()?;
            }
            let bytes = write_database(&self.path, &self.db, &self.blobs, self.wal.seq())?;
            self.wal.reset()?;
            Ok(bytes)
        })();
        let us = started.elapsed().as_micros() as u64;
        stats.checkpoint_end(us, *result.as_ref().unwrap_or(&0));
        result
    }
}

impl<M: WalMedia> Store<M> {
    /// The WAL media itself — fault-injection tests crash it and hand
    /// the survivor back to [`Store::open_with`].
    pub fn media_mut(&mut self) -> &mut M {
        self.wal.media_mut()
    }

    /// Consume the store, returning the WAL media (what "the disk"
    /// holds after the process dies).
    pub fn into_media(self) -> M {
        self.wal.into_media()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("osql-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_db() -> Database {
        let mut db = Database::new("ledger");
        db.execute_script(
            "CREATE TABLE acct (id INTEGER PRIMARY KEY, name TEXT, balance REAL);\
             INSERT INTO acct VALUES (1, 'ann', 10.0), (2, 'bob', 5.5);",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_open_commit_reopen() {
        let dir = tmpdir("lifecycle");
        let path = dir.join("ledger.store");
        let store = Store::create(&path, seed_db(), vec![]).unwrap();
        drop(store);

        let (mut store, report) = Store::open(&path).unwrap();
        assert_eq!(report.replay.committed, 0);
        store.execute("INSERT INTO acct VALUES (3, 'cal', 0.0)").unwrap();
        store.execute("UPDATE acct SET balance = 11.0 WHERE id = 1").unwrap();
        store.commit().unwrap();
        drop(store);

        let (store, report) = Store::open(&path).unwrap();
        assert_eq!(report.replay.committed, 1);
        assert_eq!(report.replay.stmts_applied, 2);
        assert_eq!(store.database().rows("acct").unwrap().len(), 3);
        let rs = store.database().query("SELECT balance FROM acct WHERE id = 1").unwrap();
        assert_eq!(rs.rows[0][0], sqlkit::Value::Real(11.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = tmpdir("checkpoint");
        let path = dir.join("ledger.store");
        let mut store = Store::create(&path, seed_db(), vec![]).unwrap();
        store.execute("INSERT INTO acct VALUES (3, 'cal', 1.0)").unwrap();
        store.commit().unwrap();
        store.execute("DELETE FROM acct WHERE id = 2").unwrap();
        // checkpoint commits the open txn, snapshots, truncates the log
        store.checkpoint().unwrap();
        assert_eq!(store.wal_end(), crate::wal::WAL_HEADER);
        drop(store);

        let (store, report) = Store::open(&path).unwrap();
        assert_eq!(report.replay.committed, 0, "log was folded into the base file");
        assert_eq!(store.database().rows("acct").unwrap().len(), 2);
        assert!(store
            .database()
            .query("SELECT * FROM acct WHERE id = 2")
            .unwrap()
            .rows
            .is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_checkpoint_base_publish_and_wal_reset_is_harmless() {
        let dir = tmpdir("ckpt-crash");
        let path = dir.join("ledger.store");
        let mut store = Store::create(&path, seed_db(), vec![]).unwrap();
        store.execute("INSERT INTO acct VALUES (3, 'cal', 1.0)").unwrap();
        store.commit().unwrap();
        store.execute("UPDATE acct SET balance = 99.0 WHERE id = 1").unwrap();
        store.commit().unwrap();
        let expected = store.database().rows("acct").unwrap().to_vec();
        let seq = store.commit_seq();
        // simulate checkpoint() crashing after the base rename but
        // before wal.reset(): publish the folded base, keep the old WAL
        write_database(&path, store.database(), store.blobs(), seq).unwrap();
        drop(store);

        let (store, report) = Store::open(&path).unwrap();
        assert_eq!(
            report.replay.committed, 0,
            "commits the base folded in must not replay (the INSERT would \
             hit a primary-key conflict and the UPDATE would double-apply)"
        );
        assert_eq!(report.replay.commits_skipped, 2);
        assert_eq!(store.database().rows("acct").unwrap(), expected.as_slice());
        assert_eq!(store.commit_seq(), seq, "sequence continues from the base");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_over_a_stale_wal_truncates_it_without_replay() {
        let dir = tmpdir("stale-wal");
        let path = dir.join("ledger.store");
        // an earlier store at the same path left a committed WAL behind
        let mut old = Store::create(&path, seed_db(), vec![]).unwrap();
        old.execute("INSERT INTO acct VALUES (3, 'cal', 1.0)").unwrap();
        old.commit().unwrap();
        drop(old);
        // recreate with a different schema: the stale log's statements
        // don't even apply to it, and must never be replayed
        let mut other = Database::new("ledger");
        other.execute_script("CREATE TABLE book (id INTEGER PRIMARY KEY, title TEXT)").unwrap();
        let store = Store::create(&path, other, vec![]).unwrap();
        assert_eq!(store.wal_end(), crate::wal::WAL_HEADER);
        drop(store);
        let (store, report) = Store::open(&path).unwrap();
        assert_eq!(report.replay.committed, 0);
        assert!(store.database().rows("book").unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_statement_never_reaches_the_log() {
        let dir = tmpdir("invalid");
        let path = dir.join("ledger.store");
        let mut store = Store::create(&path, seed_db(), vec![]).unwrap();
        let end_before = store.wal_end();
        assert!(store.execute("INSERT INTO ghost VALUES (1)").is_err());
        assert_eq!(store.wal_end(), end_before, "failed statement must not be logged");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blobs_survive_create_and_checkpoint() {
        let dir = tmpdir("blobs");
        let path = dir.join("ledger.store");
        let blobs = vec![("meta".to_owned(), vec![9u8; 100])];
        let mut store = Store::create(&path, seed_db(), blobs.clone()).unwrap();
        store.execute("INSERT INTO acct VALUES (3, 'cal', 1.0)").unwrap();
        store.checkpoint().unwrap();
        drop(store);
        let (store, _) = Store::open(&path).unwrap();
        assert_eq!(store.blobs(), blobs.as_slice());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
