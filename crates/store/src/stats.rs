//! Process-global store-path instrumentation.
//!
//! The store crate sits below the runtime (no dependency on the metrics
//! registry), so — like `sqlkit`'s plan cache — it accumulates its own
//! cumulative counters here and the runtime mirrors them into `/metrics`
//! with `raise_to`/`set`. Everything is a monotone counter or a level
//! gauge, so mirroring from multiple workers never double-counts.
//!
//! What is measured:
//!
//! * **WAL latency** — `append` (media write), `sync` (fsync), and
//!   `commit` (append + fsync of the commit record) each feed a fixed
//!   cumulative-bucket histogram in microseconds.
//! * **Checkpoint progress** — an `active` gauge (a checkpoint is
//!   running right now), the completed-checkpoint count, the last base
//!   snapshot's byte size, and checkpoint latency.

use osql_chk::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Cumulative histogram bucket bounds, in microseconds. The last bound
/// is an implicit `+Inf` catch-all when exceeded.
pub const STORE_US_BOUNDS: [u64; 10] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000];

/// One latency instrument: count, total, and cumulative bucket counts.
#[derive(Debug, Default)]
pub struct LatencyCell {
    count: AtomicU64,
    total_us: AtomicU64,
    buckets: [AtomicU64; STORE_US_BOUNDS.len()],
}

/// A plain-value copy of a [`LatencyCell`], safe to mirror or render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Operations recorded.
    pub count: u64,
    /// Total microseconds across all operations.
    pub total_us: u64,
    /// `(upper_bound_us, cumulative_count)` pairs; operations beyond the
    /// last bound appear only in `count`.
    pub buckets: Vec<(u64, u64)>,
}

impl LatencyCell {
    /// Record one operation that took `us` microseconds.
    pub fn record_us(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        for (i, bound) in STORE_US_BOUNDS.iter().enumerate() {
            if us <= *bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Operations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total microseconds recorded so far.
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }

    /// Copy the current values out.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            buckets: STORE_US_BOUNDS
                .iter()
                .zip(&self.buckets)
                .map(|(bound, cell)| (*bound, cell.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// The process-wide store instrumentation (see module docs).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// WAL media-write latency.
    pub wal_append: LatencyCell,
    /// WAL fsync latency.
    pub wal_sync: LatencyCell,
    /// WAL commit latency (commit record append + fsync).
    pub wal_commit: LatencyCell,
    /// Checkpoint latency, end to end.
    pub checkpoint: LatencyCell,
    checkpoints_active: AtomicU64,
    checkpoint_last_bytes: AtomicU64,
}

impl StoreStats {
    /// Mark a checkpoint as started (raises the `active` gauge).
    pub fn checkpoint_begin(&self) {
        self.checkpoints_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a checkpoint as finished: lowers the gauge, records its
    /// latency, and remembers the new base snapshot's size.
    pub fn checkpoint_end(&self, us: u64, base_bytes: u64) {
        self.checkpoints_active.fetch_sub(1, Ordering::Relaxed);
        self.checkpoint.record_us(us);
        self.checkpoint_last_bytes.store(base_bytes, Ordering::Relaxed);
    }

    /// Checkpoints running right now (progress gauge).
    pub fn checkpoints_active(&self) -> u64 {
        self.checkpoints_active.load(Ordering::Relaxed)
    }

    /// Byte size of the most recently written base snapshot.
    pub fn checkpoint_last_bytes(&self) -> u64 {
        self.checkpoint_last_bytes.load(Ordering::Relaxed)
    }
}

/// The shared [`StoreStats`] every store in the process reports into.
pub fn store_stats() -> &'static StoreStats {
    static GLOBAL: OnceLock<StoreStats> = OnceLock::new();
    GLOBAL.get_or_init(StoreStats::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_cell_accumulates_cumulative_buckets() {
        let cell = LatencyCell::default();
        cell.record_us(80); // ≤ 100 and everything above
        cell.record_us(600); // ≤ 1_000 and above
        cell.record_us(999_999); // beyond the last bound: count only
        let snap = cell.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.total_us, 80 + 600 + 999_999);
        let at = |bound: u64| snap.buckets.iter().find(|(b, _)| *b == bound).unwrap().1;
        assert_eq!(at(50), 0);
        assert_eq!(at(100), 1);
        assert_eq!(at(500), 1);
        assert_eq!(at(1_000), 2);
        assert_eq!(at(250_000), 2);
    }

    #[test]
    fn checkpoint_gauge_rises_and_falls() {
        let stats = StoreStats::default();
        stats.checkpoint_begin();
        assert_eq!(stats.checkpoints_active(), 1);
        stats.checkpoint_end(1_500, 4096);
        assert_eq!(stats.checkpoints_active(), 0);
        assert_eq!(stats.checkpoint_last_bytes(), 4096);
        assert_eq!(stats.checkpoint.count(), 1);
    }
}
