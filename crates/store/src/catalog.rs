//! Demand-paged catalog: db_id → store file, loaded lazily, evicted
//! under a byte-accounted LRU memory budget.
//!
//! The catalog is generic over the resident value type `T` so callers
//! decide what "a loaded database" means (the runtime loads a full
//! benchmark slice; tests load a bare [`sqlkit::Database`]). A loader
//! callback maps a store-file path to `(T, resident_bytes)`; the
//! catalog tracks residency, recency, and total bytes, and evicts the
//! least-recently-used entries when the budget is exceeded — but never
//! the entry it just loaded, so a budget smaller than any single
//! database still serves every query (it just thrashes).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use osql_chk::atomic::{AtomicU64, Ordering};
use osql_chk::Mutex;
use std::sync::Arc;

/// Suffix of store files inside a catalog directory.
pub const STORE_EXT: &str = "store";

/// A load or eviction that callers may want to surface (metrics, trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogEvent {
    /// A database was read from disk.
    Load {
        /// Database id.
        id: String,
        /// Resident bytes accounted for the entry.
        bytes: u64,
        /// Load latency in microseconds.
        micros: u64,
    },
    /// A database was evicted to stay under the budget.
    Evict {
        /// Database id.
        id: String,
        /// Bytes released.
        bytes: u64,
    },
}

struct Entry<T> {
    value: Arc<T>,
    bytes: u64,
    last_used: u64,
}

struct Inner<T> {
    entries: HashMap<String, Entry<T>>,
    tick: u64,
    events: Vec<CatalogEvent>,
}

type Loader<T> = Box<dyn Fn(&Path) -> std::io::Result<(T, u64)> + Send + Sync>;

/// A demand-paged mapping from database id to loaded value.
pub struct Catalog<T> {
    dir: PathBuf,
    budget: u64,
    loader: Loader<T>,
    inner: Mutex<Inner<T>>,
    loads: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    resident_bytes: AtomicU64,
}

impl<T> std::fmt::Debug for Catalog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("dir", &self.dir)
            .field("budget", &self.budget)
            .field("resident_bytes", &self.resident_bytes())
            .field("loads", &self.loads())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl<T> Catalog<T> {
    /// Open a catalog over `dir`. `budget` is the resident-byte ceiling
    /// (0 means "evict everything but the entry in use"); `loader` maps
    /// a store-file path to a loaded value and its byte cost.
    pub fn open(
        dir: &Path,
        budget: u64,
        loader: impl Fn(&Path) -> std::io::Result<(T, u64)> + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        if !dir.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("catalog dir {} does not exist", dir.display()),
            ));
        }
        Ok(Catalog {
            dir: dir.to_owned(),
            budget,
            loader: Box::new(loader),
            inner: Mutex::new(Inner { entries: HashMap::new(), tick: 0, events: Vec::new() }),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
        })
    }

    /// Database ids available on disk (files named `<id>.store`),
    /// sorted for deterministic iteration.
    pub fn available(&self) -> std::io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(STORE_EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    ids.push(stem.to_owned());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// The store-file path for a database id.
    pub fn store_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.{STORE_EXT}"))
    }

    /// Fetch a database, loading it from disk on first use and evicting
    /// least-recently-used entries to honour the budget. The entry just
    /// loaded is never evicted, even when it alone exceeds the budget.
    pub fn get(&self, id: &str) -> std::io::Result<Arc<T>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.get_mut(id) {
            e.last_used = tick;
            return Ok(Arc::clone(&e.value));
        }
        drop(inner); // load without holding the lock
        let path = self.store_path(id);
        let started = std::time::Instant::now();
        let (value, bytes) = (self.loader)(&path)?;
        let micros = started.elapsed().as_micros() as u64;
        let value = Arc::new(value);

        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // another thread may have loaded it while we were reading
        if let Some(e) = inner.entries.get_mut(id) {
            e.last_used = tick;
            return Ok(Arc::clone(&e.value));
        }
        inner
            .entries
            .insert(id.to_owned(), Entry { value: Arc::clone(&value), bytes, last_used: tick });
        inner.events.push(CatalogEvent::Load { id: id.to_owned(), bytes, micros });
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.evict_to_budget(&mut inner, id);
        Ok(value)
    }

    /// Evict LRU entries (other than `keep`) until the budget holds.
    fn evict_to_budget(&self, inner: &mut Inner<T>, keep: &str) {
        while self.resident_bytes.load(Ordering::Relaxed) > self.budget {
            let victim = inner
                .entries
                .iter()
                .filter(|(id, _)| id.as_str() != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| id.clone());
            let Some(id) = victim else { break };
            let entry = inner.entries.remove(&id).expect("victim exists");
            self.resident_bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            inner.events.push(CatalogEvent::Evict { id, bytes: entry.bytes });
        }
    }

    /// Drop a resident entry so the next [`Catalog::get`] reloads it
    /// from disk. Returns whether the id was resident. This is how a
    /// replication follower makes freshly applied WAL commits visible:
    /// the store file (or its sidecar WAL) changed underneath the
    /// catalog, and the stale in-memory copy must not keep serving.
    /// Counted separately from budget evictions, and surfaced as a
    /// [`CatalogEvent::Evict`] so pipelines keyed on the entry drop too.
    pub fn invalidate(&self, id: &str) -> bool {
        let mut inner = self.inner.lock();
        let Some(entry) = inner.entries.remove(id) else { return false };
        self.resident_bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        inner.events.push(CatalogEvent::Evict { id: id.to_owned(), bytes: entry.bytes });
        true
    }

    /// Ids currently resident, most recently used first.
    pub fn resident(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock();
        let mut ids: Vec<(&String, &Entry<T>)> = inner.entries.iter().collect();
        ids.sort_by_key(|(_, e)| std::cmp::Reverse(e.last_used));
        ids.into_iter().map(|(id, e)| (id.clone(), e.bytes)).collect()
    }

    /// True when the id is resident right now.
    pub fn is_resident(&self, id: &str) -> bool {
        self.inner.lock().entries.contains_key(id)
    }

    /// Drain pending load/evict events (for metrics/trace forwarding).
    pub fn take_events(&self) -> Vec<CatalogEvent> {
        std::mem::take(&mut self.inner.lock().events)
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Resident-byte ceiling.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Databases loaded from disk (cold loads, not cache hits).
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Databases evicted to stay under budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries dropped by [`Catalog::invalidate`] (staleness, not budget
    /// pressure).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Loader that "loads" the id string and charges a fixed byte cost.
    fn open_fixed(dir: &Path, budget: u64, cost: u64) -> Catalog<String> {
        Catalog::open(dir, budget, move |path: &Path| {
            let stem = path.file_stem().unwrap().to_str().unwrap().to_owned();
            Ok((stem, cost))
        })
        .unwrap()
    }

    fn tmpdir(tag: &str, ids: &[&str]) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("osql-catalog-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for id in ids {
            std::fs::write(dir.join(format!("{id}.{STORE_EXT}")), b"x").unwrap();
        }
        dir
    }

    #[test]
    fn lazy_load_and_hit_counting() {
        let dir = tmpdir("lazy", &["a", "b"]);
        let cat = open_fixed(&dir, 1000, 10);
        assert_eq!(cat.available().unwrap(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(cat.loads(), 0);
        assert_eq!(&*cat.get("a").unwrap(), "a");
        assert_eq!(&*cat.get("a").unwrap(), "a");
        assert_eq!(cat.loads(), 1, "second get is a hit");
        assert_eq!(cat.resident_bytes(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let dir = tmpdir("lru", &["a", "b", "c"]);
        let cat = open_fixed(&dir, 20, 10); // room for two
        cat.get("a").unwrap();
        cat.get("b").unwrap();
        cat.get("a").unwrap(); // refresh a; b is now LRU
        cat.get("c").unwrap(); // evicts b
        assert!(cat.is_resident("a"));
        assert!(!cat.is_resident("b"));
        assert!(cat.is_resident("c"));
        assert_eq!(cat.evictions(), 1);
        assert_eq!(cat.resident_bytes(), 20);
        let events = cat.take_events();
        assert!(events
            .contains(&CatalogEvent::Evict { id: "b".to_owned(), bytes: 10 }));
        assert!(cat.take_events().is_empty(), "events drain once");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_entry_is_never_self_evicted() {
        let dir = tmpdir("oversize", &["a", "b"]);
        let cat = open_fixed(&dir, 5, 10); // every entry exceeds the budget
        assert_eq!(&*cat.get("a").unwrap(), "a");
        assert!(cat.is_resident("a"), "just-loaded entry survives over-budget");
        assert_eq!(&*cat.get("b").unwrap(), "b"); // evicts a, keeps b
        assert!(!cat.is_resident("a"));
        assert!(cat.is_resident("b"));
        // thrash back and forth — always serves
        for _ in 0..3 {
            assert_eq!(&*cat.get("a").unwrap(), "a");
            assert_eq!(&*cat.get("b").unwrap(), "b");
        }
        assert_eq!(cat.evictions(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_and_missing_id_error() {
        let missing = std::env::temp_dir().join("osql-catalog-definitely-missing");
        assert!(Catalog::<String>::open(&missing, 10, |_| Ok((String::new(), 1))).is_err());
        let dir = tmpdir("missing-id", &["a"]);
        let cat = Catalog::open(&dir, 10, |path: &Path| {
            if path.exists() {
                Ok((String::from("ok"), 1))
            } else {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, "no store"))
            }
        })
        .unwrap();
        assert!(cat.get("a").is_ok());
        assert!(cat.get("ghost").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalidate_drops_entry_and_forces_reload() {
        let dir = tmpdir("invalidate", &["a", "b"]);
        let cat = open_fixed(&dir, 1000, 10);
        cat.get("a").unwrap();
        cat.get("b").unwrap();
        assert_eq!(cat.loads(), 2);
        assert!(cat.invalidate("a"), "resident entry invalidates");
        assert!(!cat.is_resident("a"));
        assert!(cat.is_resident("b"), "other entries untouched");
        assert_eq!(cat.resident_bytes(), 10, "bytes released");
        assert!(!cat.invalidate("a"), "already gone");
        assert!(!cat.invalidate("ghost"), "never loaded");
        assert_eq!(cat.invalidations(), 1);
        assert_eq!(cat.evictions(), 0, "invalidation is not budget pressure");
        cat.get("a").unwrap();
        assert_eq!(cat.loads(), 3, "next get reloads from disk");
        assert!(cat
            .take_events()
            .contains(&CatalogEvent::Evict { id: "a".to_owned(), bytes: 10 }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resident_listing_orders_by_recency() {
        let dir = tmpdir("resident", &["a", "b", "c"]);
        let cat = open_fixed(&dir, 1000, 7);
        cat.get("a").unwrap();
        cat.get("b").unwrap();
        cat.get("c").unwrap();
        cat.get("a").unwrap();
        let ids: Vec<String> = cat.resident().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec!["a".to_owned(), "c".to_owned(), "b".to_owned()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
