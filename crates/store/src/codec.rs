//! Binary codec for store payloads: a growable little-endian encoder, a
//! bounds-checked decoder, a CRC-32 checksum, and the typed row codec
//! over [`sqlkit::Value`] plus the schema codec over
//! [`sqlkit::schema::DbSchema`].
//!
//! Everything is hand-rolled — the store must not depend on external
//! serialisation crates — and every decode path returns a typed
//! [`CodecError`] instead of panicking, because decoders run over bytes
//! that fsck and crash recovery deliberately corrupt.

use sqlkit::ast::TypeName;
use sqlkit::index::ColumnIndex;
use sqlkit::schema::{ColumnInfo, DbSchema, ForeignKey, TableInfo};
use sqlkit::value::{Row, Value};
use std::fmt;

/// A decode failure: what was being decoded and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

// ---- CRC-32 (IEEE 802.3, reflected) ------------------------------------

/// CRC-32 of a byte slice (IEEE polynomial, the checksum used by every
/// page header and WAL record).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---- encoder -----------------------------------------------------------

/// A growable little-endian byte encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Finish, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

// ---- decoder -----------------------------------------------------------

/// A bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return err(format!("need {n} bytes, {} remain", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let bytes = self.get_bytes()?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => err("invalid UTF-8 in string"),
        }
    }
}

// ---- value / row codec -------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_TEXT: u8 = 3;

/// Encode one value (tag byte + payload).
pub fn put_value(enc: &mut Enc, v: &Value) {
    match v {
        Value::Null => enc.put_u8(TAG_NULL),
        Value::Int(i) => {
            enc.put_u8(TAG_INT);
            enc.put_i64(*i);
        }
        Value::Real(r) => {
            enc.put_u8(TAG_REAL);
            enc.put_f64(*r);
        }
        Value::Text(t) => {
            enc.put_u8(TAG_TEXT);
            enc.put_str(t);
        }
    }
}

/// Decode one value.
pub fn get_value(dec: &mut Dec<'_>) -> Result<Value, CodecError> {
    match dec.get_u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(dec.get_i64()?)),
        TAG_REAL => Ok(Value::Real(dec.get_f64()?)),
        TAG_TEXT => Ok(Value::Text(dec.get_str()?)),
        tag => err(format!("unknown value tag {tag}")),
    }
}

/// Encode a table's rows: row count, then each row's values in schema
/// order (arity is implied by the schema, so rows carry no per-row
/// header — only per-value type tags).
pub fn encode_rows(rows: &[Row], arity: usize) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(rows.len() as u64);
    enc.put_u32(arity as u32);
    for row in rows {
        debug_assert_eq!(row.len(), arity, "rows match schema arity");
        for v in row {
            put_value(&mut enc, v);
        }
    }
    enc.into_bytes()
}

/// Decode a table's rows, checking the recorded arity against the schema.
pub fn decode_rows(bytes: &[u8], expect_arity: usize) -> Result<Vec<Row>, CodecError> {
    let mut dec = Dec::new(bytes);
    let n = dec.get_u64()? as usize;
    let arity = dec.get_u32()? as usize;
    if arity != expect_arity {
        return err(format!("row arity {arity} does not match schema arity {expect_arity}"));
    }
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(get_value(&mut dec)?);
        }
        rows.push(row);
    }
    if dec.remaining() != 0 {
        return err(format!("{} trailing bytes after rows", dec.remaining()));
    }
    Ok(rows)
}

// ---- index codec -------------------------------------------------------

/// A decoded secondary-index section: the declaration, plus the sorted
/// entries and the indexed table's row count at build time when the
/// index was usable (`None` marks a column persisted as unbuildable,
/// e.g. it contained a NaN).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedIndex {
    /// Indexed table name.
    pub table: String,
    /// Indexed column name.
    pub column: String,
    /// `Some((entries, table_rows))` for a usable index, `None` for a
    /// declaration-only section.
    pub built: Option<(Vec<(Value, u32)>, u64)>,
}

/// Encode a secondary-index section: a usable flag, the declaration,
/// and (for usable indexes) the table's row count at build time plus
/// the sorted `(value, rid)` entries. Unusable indexes persist as
/// declaration-only sections so the planning fingerprint survives a
/// round trip through the store.
pub fn encode_index(table: &str, column: &str, index: Option<&ColumnIndex>) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u8(u8::from(index.is_some()));
    enc.put_str(table);
    enc.put_str(column);
    if let Some(ix) = index {
        enc.put_u64(ix.table_rows() as u64);
        enc.put_u64(ix.len() as u64);
        for (v, rid) in ix.entries() {
            put_value(&mut enc, v);
            enc.put_u32(*rid);
        }
    }
    enc.into_bytes()
}

/// Decode a secondary-index section.
pub fn decode_index(bytes: &[u8]) -> Result<DecodedIndex, CodecError> {
    let mut dec = Dec::new(bytes);
    let usable = match dec.get_u8()? {
        0 => false,
        1 => true,
        f => return err(format!("unknown index usable flag {f}")),
    };
    let table = dec.get_str()?;
    let column = dec.get_str()?;
    let built = if usable {
        let table_rows = dec.get_u64()?;
        let n = dec.get_u64()? as usize;
        if (n as u64) > table_rows {
            return err(format!("index holds {n} entries over {table_rows} rows"));
        }
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let v = get_value(&mut dec)?;
            let rid = dec.get_u32()?;
            if u64::from(rid) >= table_rows {
                return err(format!("index rid {rid} out of range ({table_rows} rows)"));
            }
            entries.push((v, rid));
        }
        Some((entries, table_rows))
    } else {
        None
    };
    if dec.remaining() != 0 {
        return err(format!("{} trailing bytes after index", dec.remaining()));
    }
    Ok(DecodedIndex { table, column, built })
}

// ---- schema codec ------------------------------------------------------

fn type_tag(ty: TypeName) -> u8 {
    match ty {
        TypeName::Integer => 0,
        TypeName::Real => 1,
        TypeName::Text => 2,
        TypeName::Blob => 3,
    }
}

fn tag_type(tag: u8) -> Result<TypeName, CodecError> {
    match tag {
        0 => Ok(TypeName::Integer),
        1 => Ok(TypeName::Real),
        2 => Ok(TypeName::Text),
        3 => Ok(TypeName::Blob),
        t => err(format!("unknown type tag {t}")),
    }
}

/// Encode a whole-database schema: name, tables (with column names,
/// affinities, descriptions, PK flags), and foreign keys.
pub fn encode_schema(schema: &DbSchema) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_str(&schema.name);
    enc.put_u32(schema.tables.len() as u32);
    for t in &schema.tables {
        enc.put_str(&t.name);
        enc.put_u32(t.columns.len() as u32);
        for c in &t.columns {
            enc.put_str(&c.name);
            enc.put_u8(type_tag(c.ty));
            enc.put_u8(u8::from(c.primary_key));
            enc.put_str(&c.description);
        }
    }
    enc.put_u32(schema.foreign_keys.len() as u32);
    for fk in &schema.foreign_keys {
        enc.put_str(&fk.table);
        enc.put_str(&fk.column);
        enc.put_str(&fk.ref_table);
        enc.put_str(&fk.ref_column);
    }
    enc.into_bytes()
}

/// Decode a whole-database schema.
pub fn decode_schema(bytes: &[u8]) -> Result<DbSchema, CodecError> {
    let mut dec = Dec::new(bytes);
    let mut schema = DbSchema::new(dec.get_str()?);
    let n_tables = dec.get_u32()? as usize;
    for _ in 0..n_tables {
        let name = dec.get_str()?;
        let n_cols = dec.get_u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let cname = dec.get_str()?;
            let ty = tag_type(dec.get_u8()?)?;
            let primary_key = dec.get_u8()? != 0;
            let description = dec.get_str()?;
            columns.push(ColumnInfo { name: cname, ty, description, primary_key });
        }
        schema.tables.push(TableInfo { name, columns });
    }
    let n_fks = dec.get_u32()? as usize;
    for _ in 0..n_fks {
        schema.foreign_keys.push(ForeignKey {
            table: dec.get_str()?,
            column: dec.get_str()?,
            ref_table: dec.get_str()?,
            ref_column: dec.get_str()?,
        });
    }
    if dec.remaining() != 0 {
        return err(format!("{} trailing bytes after schema", dec.remaining()));
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn scalar_round_trips() {
        let mut enc = Enc::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX - 1);
        enc.put_i64(-42);
        enc.put_f64(2.5);
        enc.put_str("héllo");
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert_eq!(dec.get_f64().unwrap(), 2.5);
        assert_eq!(dec.get_str().unwrap(), "héllo");
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn decoder_is_bounds_checked() {
        let mut dec = Dec::new(&[1, 2]);
        assert!(dec.get_u32().is_err());
        // a corrupt length prefix cannot over-read
        let mut enc = Enc::new();
        enc.put_u32(1_000_000);
        let bytes = enc.into_bytes();
        assert!(Dec::new(&bytes).get_bytes().is_err());
    }

    #[test]
    fn values_round_trip_all_tags() {
        let vals = [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Real(-0.125),
            Value::Real(f64::INFINITY),
            Value::text(""),
            Value::text("quoted 'text' with\nnewline"),
        ];
        let mut enc = Enc::new();
        for v in &vals {
            put_value(&mut enc, v);
        }
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        for v in &vals {
            assert_eq!(&get_value(&mut dec).unwrap(), v);
        }
    }

    #[test]
    fn rows_round_trip_and_check_arity() {
        let rows = vec![
            vec![Value::Int(1), Value::text("a"), Value::Null],
            vec![Value::Int(2), Value::text("b"), Value::Real(1.5)],
        ];
        let bytes = encode_rows(&rows, 3);
        assert_eq!(decode_rows(&bytes, 3).unwrap(), rows);
        assert!(decode_rows(&bytes, 2).is_err(), "arity mismatch is detected");
        assert!(decode_rows(&bytes[..bytes.len() - 1], 3).is_err(), "truncation is detected");
    }

    #[test]
    fn index_sections_round_trip() {
        let rows =
            vec![vec![Value::Int(3)], vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(1)]];
        let ix = ColumnIndex::build(&rows, 0).unwrap();
        let bytes = encode_index("t", "c", Some(&ix));
        let dec = decode_index(&bytes).unwrap();
        assert_eq!((dec.table.as_str(), dec.column.as_str()), ("t", "c"));
        let (entries, table_rows) = dec.built.unwrap();
        assert_eq!(table_rows, 4);
        assert_eq!(entries, ix.entries().to_vec());

        let decl_only = encode_index("t", "c", None);
        assert_eq!(decode_index(&decl_only).unwrap().built, None);
        assert!(decode_index(&decl_only[..decl_only.len() - 1]).is_err());
        assert!(decode_index(&bytes[..bytes.len() - 2]).is_err(), "truncation is detected");
    }

    #[test]
    fn schema_round_trips_with_descriptions() {
        let mut schema = DbSchema::new("clinic");
        schema.tables.push(TableInfo {
            name: "Patient".into(),
            columns: vec![
                ColumnInfo {
                    name: "ID".into(),
                    ty: TypeName::Integer,
                    description: "unique id of the patient".into(),
                    primary_key: true,
                },
                ColumnInfo::new("First Date", TypeName::Text),
            ],
        });
        schema.foreign_keys.push(ForeignKey {
            table: "Lab".into(),
            column: "ID".into(),
            ref_table: "Patient".into(),
            ref_column: "ID".into(),
        });
        let bytes = encode_schema(&schema);
        assert_eq!(decode_schema(&bytes).unwrap(), schema);
        // flipping any byte is either an error or a different schema
        let mut bad = bytes.clone();
        bad[4] ^= 0xFF;
        if let Ok(other) = decode_schema(&bad) {
            assert_ne!(other, schema);
        }
    }
}
