//! Fixed-size checksummed pages — the unit of the base-file format.
//!
//! Every page is [`PAGE_SIZE`] bytes: a 16-byte header (magic, CRC-32 of
//! the payload, payload length, page type) followed by up to
//! [`PAGE_PAYLOAD`] payload bytes and zero padding. A page either
//! verifies exactly (magic + length bounds + checksum) or is reported
//! corrupt; there is no partial credit, which is what makes `fsck` able
//! to flag every damaged page individually.

use crate::codec::crc32;

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Bytes of header at the start of each page.
pub const PAGE_HEADER: usize = 16;
/// Maximum payload bytes per page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

/// Magic at the start of every page ("OSPG").
pub const PAGE_MAGIC: u32 = 0x4750_534F;

/// Page type: the table-of-contents page (always page 0).
pub const PAGE_TOC: u8 = 1;
/// Page type: a section payload page.
pub const PAGE_DATA: u8 = 2;

/// Why a page failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// The buffer is not exactly one page long.
    BadSize(usize),
    /// The magic number is wrong (not a store page at all).
    BadMagic,
    /// The recorded payload length exceeds the page payload area.
    BadLength(u32),
    /// The payload checksum does not match the header.
    BadChecksum {
        /// CRC recorded in the header.
        expect: u32,
        /// CRC computed over the payload.
        actual: u32,
    },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::BadSize(n) => write!(f, "page is {n} bytes, expected {PAGE_SIZE}"),
            PageError::BadMagic => f.write_str("bad page magic"),
            PageError::BadLength(n) => write!(f, "payload length {n} exceeds {PAGE_PAYLOAD}"),
            PageError::BadChecksum { expect, actual } => {
                write!(f, "checksum mismatch (header {expect:#010x}, payload {actual:#010x})")
            }
        }
    }
}

/// Pack a payload (≤ [`PAGE_PAYLOAD`] bytes) into one page.
///
/// # Panics
/// Panics if the payload is too large; callers chunk payloads first.
pub fn pack_page(page_type: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= PAGE_PAYLOAD, "payload exceeds page capacity");
    let mut page = vec![0u8; PAGE_SIZE];
    page[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    page[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[12] = page_type;
    page[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
    // the checksum covers length, type, padding, and payload — every
    // meaningful byte except the magic (structurally checked) and the
    // zero fill past the payload
    let crc = crc32(&page[8..PAGE_HEADER + payload.len()]);
    page[4..8].copy_from_slice(&crc.to_le_bytes());
    page
}

/// Verify one page and return `(page_type, payload)`.
pub fn unpack_page(page: &[u8]) -> Result<(u8, &[u8]), PageError> {
    if page.len() != PAGE_SIZE {
        return Err(PageError::BadSize(page.len()));
    }
    let magic = u32::from_le_bytes(page[0..4].try_into().expect("4 bytes"));
    if magic != PAGE_MAGIC {
        return Err(PageError::BadMagic);
    }
    let expect = u32::from_le_bytes(page[4..8].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(page[8..12].try_into().expect("4 bytes"));
    if len as usize > PAGE_PAYLOAD {
        return Err(PageError::BadLength(len));
    }
    let actual = crc32(&page[8..PAGE_HEADER + len as usize]);
    if actual != expect {
        return Err(PageError::BadChecksum { expect, actual });
    }
    Ok((page[12], &page[PAGE_HEADER..PAGE_HEADER + len as usize]))
}

/// Split a section byte stream into data pages.
pub fn paginate(bytes: &[u8]) -> Vec<Vec<u8>> {
    if bytes.is_empty() {
        return vec![pack_page(PAGE_DATA, &[])];
    }
    bytes.chunks(PAGE_PAYLOAD).map(|chunk| pack_page(PAGE_DATA, chunk)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        let payload = b"hello page".to_vec();
        let page = pack_page(PAGE_DATA, &payload);
        assert_eq!(page.len(), PAGE_SIZE);
        let (ty, got) = unpack_page(&page).unwrap();
        assert_eq!(ty, PAGE_DATA);
        assert_eq!(got, payload.as_slice());
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let page = pack_page(PAGE_TOC, b"some toc payload");
        // flip each byte of the occupied region in turn; all must fail
        for i in 0..(PAGE_HEADER + 16) {
            let mut bad = page.clone();
            bad[i] ^= 0x01;
            assert!(unpack_page(&bad).is_err(), "flipped byte {i} went undetected");
        }
        // padding corruption is outside the checksummed payload: allowed
        let mut padded = page.clone();
        padded[PAGE_SIZE - 1] ^= 0x01;
        assert!(unpack_page(&padded).is_ok());
    }

    #[test]
    fn size_and_length_bounds_checked() {
        assert_eq!(unpack_page(&[0u8; 10]), Err(PageError::BadSize(10)));
        let mut page = pack_page(PAGE_DATA, b"x");
        page[8..12].copy_from_slice(&(PAGE_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(unpack_page(&page), Err(PageError::BadLength(_))));
    }

    #[test]
    fn paginate_covers_empty_and_multi_page() {
        assert_eq!(paginate(&[]).len(), 1);
        let big = vec![7u8; PAGE_PAYLOAD * 2 + 5];
        let pages = paginate(&big);
        assert_eq!(pages.len(), 3);
        let rebuilt: Vec<u8> =
            pages.iter().flat_map(|p| unpack_page(p).unwrap().1.to_vec()).collect();
        assert_eq!(rebuilt, big);
    }
}
