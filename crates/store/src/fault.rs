//! Fault-injection media for crash-recovery testing.
//!
//! [`FaultFile`] is an in-memory [`WalMedia`] that models the failure
//! modes a real disk exposes: unsynced bytes lost on crash, torn writes
//! that persist only a prefix of the last append, corrupted bytes, and
//! short reads. The recovery test matrix drives it across every byte
//! offset of a scripted workload to prove the committed-prefix
//! invariant.

use crate::wal::WalMedia;

/// Which faults a [`FaultFile`] injects.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// On [`FaultFile::crash`], keep at most this many bytes even if
    /// more were synced — a torn write / partial fsync at an arbitrary
    /// byte boundary.
    pub torn_tail: Option<u64>,
    /// XOR this mask into the byte at this offset on every read — a
    /// latent corruption (bit rot, misdirected write).
    pub corrupt_at: Option<(u64, u8)>,
    /// Reads return at most this many bytes — a short read.
    pub short_read: Option<u64>,
}

/// In-memory WAL media with injectable faults and explicit crash
/// semantics: bytes appended but not yet synced are lost on
/// [`FaultFile::crash`], exactly like a page cache.
#[derive(Debug, Default, Clone)]
pub struct FaultFile {
    data: Vec<u8>,
    durable: usize,
    plan: FaultPlan,
    syncs: u64,
}

impl FaultFile {
    /// An empty fault-free file.
    pub fn new() -> Self {
        FaultFile::default()
    }

    /// Replace the fault plan.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Simulate a crash: unsynced bytes vanish, then the torn-tail cap
    /// (if any) is applied.
    pub fn crash(&mut self) {
        self.data.truncate(self.durable);
        if let Some(cap) = self.plan.torn_tail {
            self.data.truncate(cap as usize);
        }
        self.durable = self.data.len();
    }

    /// Bytes currently held (before read-side faults).
    pub fn raw_len(&self) -> usize {
        self.data.len()
    }

    /// Bytes guaranteed durable (synced).
    pub fn durable_len(&self) -> usize {
        self.durable
    }

    /// Number of syncs observed.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl WalMedia for FaultFile {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.durable = self.data.len();
        self.syncs += 1;
        Ok(())
    }

    fn len(&mut self) -> std::io::Result<u64> {
        Ok(self.read_all()?.len() as u64)
    }

    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = self.data.clone();
        if let Some(cap) = self.plan.short_read {
            out.truncate(cap as usize);
        }
        if let Some((off, mask)) = self.plan.corrupt_at {
            if let Some(b) = out.get_mut(off as usize) {
                *b ^= mask;
            }
        }
        Ok(out)
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.data.truncate(len as usize);
        self.durable = self.durable.min(self.data.len());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_drops_unsynced_bytes() {
        let mut f = FaultFile::new();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b" volatile").unwrap();
        f.crash();
        assert_eq!(f.read_all().unwrap(), b"durable");
        assert_eq!(f.syncs(), 1);
    }

    #[test]
    fn torn_tail_caps_even_synced_bytes() {
        let mut f = FaultFile::new();
        f.append(b"0123456789").unwrap();
        f.sync().unwrap();
        f.set_plan(FaultPlan { torn_tail: Some(4), ..FaultPlan::default() });
        f.crash();
        assert_eq!(f.read_all().unwrap(), b"0123");
    }

    #[test]
    fn corruption_and_short_reads_apply_on_read() {
        let mut f = FaultFile::new();
        f.append(b"abcdef").unwrap();
        f.sync().unwrap();
        f.set_plan(FaultPlan {
            corrupt_at: Some((1, 0x01)),
            short_read: Some(3),
            ..FaultPlan::default()
        });
        // short read first, then corruption inside the visible prefix
        assert_eq!(f.read_all().unwrap(), b"ac\x63");
        assert_eq!(f.len().unwrap(), 3);
        // underlying bytes untouched
        assert_eq!(f.raw_len(), 6);
    }
}
