//! Write-ahead log: statement-level records, commit markers, fsync
//! points, and replay-based crash recovery.
//!
//! The log is an 8-byte header (`OSQLWAL1`) followed by records:
//!
//! ```text
//! [kind u8][len u32 LE][payload len bytes][crc32 u32 LE]
//! ```
//!
//! where the CRC covers kind, length, and payload. Record kinds are
//! `Stmt` (a SQL statement to re-execute), `Commit` (transaction
//! boundary carrying a sequence number), and `FsyncMark` (a durability
//! point noted by the writer). Replay buffers statements and applies
//! them only when their `Commit` arrives, stopping at the first
//! truncated or corrupt record — so recovery yields exactly the state
//! of the last fully committed transaction, no matter where the log was
//! cut. Commits whose sequence number the base snapshot already records
//! (its TOC `base_seq`) are skipped, so a crash between a checkpoint's
//! base publish and its WAL truncation never double-applies them. On
//! open the uncommitted tail is truncated away so a later commit can
//! never resurrect orphaned statements.

use crate::codec::crc32;
use crate::StoreError;
use sqlkit::Database;
use std::io::{Read, Seek, SeekFrom, Write};

/// WAL file magic.
pub const WAL_MAGIC: [u8; 8] = *b"OSQLWAL1";
/// Length of the WAL header in bytes.
pub const WAL_HEADER: u64 = 8;

/// Record kind: one SQL statement of an open transaction.
pub const REC_STMT: u8 = 1;
/// Record kind: transaction commit (payload = sequence number).
pub const REC_COMMIT: u8 = 2;
/// Record kind: fsync-point marker (payload = sequence number).
pub const REC_FSYNC: u8 = 3;

/// The byte sink/source a WAL is stored on. Production uses
/// [`FsMedia`]; tests use [`crate::FaultFile`] to inject torn writes,
/// lost tails, corruption, and short reads.
pub trait WalMedia {
    /// Append bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Make previously appended bytes durable.
    fn sync(&mut self) -> std::io::Result<()>;
    /// Current length in bytes.
    fn len(&mut self) -> std::io::Result<u64>;
    /// True when the log holds no bytes.
    fn is_empty(&mut self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Read the whole log.
    fn read_all(&mut self) -> std::io::Result<Vec<u8>>;
    /// Truncate the log to `len` bytes.
    fn truncate(&mut self, len: u64) -> std::io::Result<()>;
}

/// A WAL stored on a real file.
#[derive(Debug)]
pub struct FsMedia {
    file: std::fs::File,
}

impl FsMedia {
    /// Open (or create) the WAL file at `path`.
    pub fn open(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FsMedia { file })
    }
}

impl WalMedia for FsMedia {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    fn len(&mut self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()
    }
}

/// Encode one WAL record (used by the writer and by tests that build
/// logs byte-by-byte).
pub fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(9 + payload.len());
    rec.push(kind);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    let crc = crc32(&rec);
    rec.extend_from_slice(&crc.to_le_bytes());
    rec
}

/// One decoded record and the offset just past it.
enum Parsed<'a> {
    Stmt(&'a [u8]),
    Commit(u64),
    Fsync,
}

/// Try to parse the record at `pos`. Returns `Ok(None)` on a clean end
/// of log, `Err` on truncation/corruption (the finding message).
fn parse_record(buf: &[u8], pos: usize) -> Result<Option<(Parsed<'_>, usize)>, String> {
    if pos == buf.len() {
        return Ok(None);
    }
    if buf.len() - pos < 5 {
        return Err(format!("truncated record header at offset {pos}"));
    }
    let kind = buf[pos];
    let len = u32::from_le_bytes(buf[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
    let body_end = pos + 5 + len;
    if body_end + 4 > buf.len() {
        return Err(format!("truncated record body at offset {pos}"));
    }
    let expect = u32::from_le_bytes(buf[body_end..body_end + 4].try_into().expect("4 bytes"));
    if crc32(&buf[pos..body_end]) != expect {
        return Err(format!("checksum mismatch in record at offset {pos}"));
    }
    let payload = &buf[pos + 5..body_end];
    let parsed = match kind {
        REC_STMT => Parsed::Stmt(payload),
        REC_COMMIT | REC_FSYNC => {
            if payload.len() != 8 {
                return Err(format!("marker record at offset {pos} has bad payload length"));
            }
            let seq = u64::from_le_bytes(payload.try_into().expect("8 bytes"));
            if kind == REC_COMMIT {
                Parsed::Commit(seq)
            } else {
                Parsed::Fsync
            }
        }
        k => return Err(format!("unknown record kind {k} at offset {pos}")),
    };
    Ok(Some((parsed, body_end + 4)))
}

/// What replay recovered from a log.
#[derive(Debug, Default, Clone)]
pub struct ReplayReport {
    /// Fully committed transactions applied.
    pub committed: u64,
    /// Committed transactions skipped because the base snapshot already
    /// folded them in (their seq was at or below the base's `base_seq`).
    pub commits_skipped: u64,
    /// Sequence number of the first skipped commit (0 when none were
    /// skipped) — with [`ReplayReport::last_skipped_seq`], the exact
    /// range a checkpoint's base publish already folded in, so operators
    /// comparing primary and follower positions see which transactions
    /// replay refused to double-apply.
    pub first_skipped_seq: u64,
    /// Sequence number of the last skipped commit (0 when none).
    pub last_skipped_seq: u64,
    /// Statements re-executed (across all committed transactions).
    pub stmts_applied: u64,
    /// Sequence number of the last commit record seen, applied or
    /// skipped (0 when none).
    pub last_commit_seq: u64,
    /// Offset just past the last committed record — the durable prefix.
    pub committed_offset: u64,
    /// Bytes past the committed prefix that were ignored (uncommitted
    /// tail, truncation damage, or corruption).
    pub tail_bytes: u64,
    /// Why scanning stopped early, when it did.
    pub finding: Option<String>,
}

/// Structural audit of a log (no statements are executed).
#[derive(Debug, Default, Clone)]
pub struct WalAudit {
    /// Valid records scanned (all kinds).
    pub records: u64,
    /// Commit records among them.
    pub commits: u64,
    /// Fsync markers among them.
    pub fsync_marks: u64,
    /// Sequence number of the last commit record scanned (0 when the
    /// log holds no commits) — together with the base file's `base_seq`,
    /// the store's durable position.
    pub last_commit_seq: u64,
    /// Offset just past the last commit record.
    pub committed_offset: u64,
    /// Bytes past the committed prefix.
    pub tail_bytes: u64,
    /// Corruption/truncation finding, if scanning stopped early.
    pub finding: Option<String>,
}

fn header_ok(buf: &[u8]) -> Result<(), String> {
    if buf.len() < WAL_HEADER as usize {
        return Err(format!("log is {} bytes, shorter than the header", buf.len()));
    }
    if buf[..8] != WAL_MAGIC {
        return Err("bad WAL magic".to_owned());
    }
    Ok(())
}

/// Replay a log's committed transactions into `db`.
///
/// Statements are buffered per transaction and applied only when the
/// transaction's commit record is reached intact; scanning stops at the
/// first truncated or corrupt record. An empty or header-less log
/// replays to zero commits rather than erroring — that is what a crash
/// before the first sync looks like.
///
/// `base_seq` is the last commit already folded into the base snapshot
/// being replayed onto (the TOC's `base_seq`; 0 for a fresh export).
/// Commits at or below it are skipped, not re-applied: a crash between
/// a checkpoint's base publish and its WAL truncation leaves the full
/// log next to a base that already contains the folded state, and
/// re-executing those transactions would duplicate rows or abort on
/// primary-key conflicts.
pub fn replay_into(
    db: &mut Database,
    buf: &[u8],
    base_seq: u64,
) -> Result<ReplayReport, StoreError> {
    let mut report = ReplayReport::default();
    if buf.is_empty() {
        return Ok(report);
    }
    if let Err(msg) = header_ok(buf) {
        report.finding = Some(msg);
        report.tail_bytes = buf.len() as u64;
        return Ok(report);
    }
    report.committed_offset = WAL_HEADER;
    let mut pos = WAL_HEADER as usize;
    let mut pending: Vec<&[u8]> = Vec::new();
    loop {
        match parse_record(buf, pos) {
            Ok(None) => break,
            Ok(Some((rec, next))) => {
                match rec {
                    Parsed::Stmt(sql) => pending.push(sql),
                    Parsed::Commit(seq) => {
                        if seq <= base_seq {
                            // the base snapshot already holds this
                            // transaction's effects — drop it unapplied
                            pending.clear();
                            report.commits_skipped += 1;
                            if report.first_skipped_seq == 0 {
                                report.first_skipped_seq = seq;
                            }
                            report.last_skipped_seq = seq;
                        } else {
                            for sql in pending.drain(..) {
                                let text = std::str::from_utf8(sql).map_err(|_| {
                                    StoreError::corrupt("non-UTF-8 statement in committed record")
                                })?;
                                db.execute_script(text).map_err(|e| {
                                    StoreError::corrupt(format!("replay statement failed: {e}"))
                                })?;
                                report.stmts_applied += 1;
                            }
                            report.committed += 1;
                        }
                        report.last_commit_seq = seq;
                        report.committed_offset = next as u64;
                    }
                    Parsed::Fsync => {}
                }
                pos = next;
            }
            Err(msg) => {
                report.finding = Some(msg);
                break;
            }
        }
    }
    report.tail_bytes = buf.len() as u64 - report.committed_offset;
    Ok(report)
}

/// One committed transaction recovered by a structural scan: its commit
/// sequence number and the statements it carried, in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedTxn {
    /// The transaction's commit sequence number.
    pub seq: u64,
    /// The SQL statements committed, in append order.
    pub stmts: Vec<String>,
}

/// What [`scan_records`] recovered from a record region.
#[derive(Debug, Default, Clone)]
pub struct TxnScan {
    /// Fully committed transactions, in log order.
    pub txns: Vec<ScannedTxn>,
    /// Offset just past the last intact commit record — the prefix that
    /// is safe to ship or apply.
    pub committed_offset: u64,
    /// Bytes past the committed prefix (uncommitted tail or damage).
    pub tail_bytes: u64,
    /// Why scanning stopped early, when it did (torn or corrupt record,
    /// non-UTF-8 statement).
    pub finding: Option<String>,
}

/// Structurally scan the record region of a WAL-framed byte stream
/// (bytes from `start` onward use the shared
/// `[kind][len][payload][crc32]` framing) into committed transactions,
/// without executing anything.
///
/// This is the replication shipper's and follower's view of a log: only
/// statements covered by an intact commit record are returned, scanning
/// stops at the first torn or corrupt record, and trailing statements
/// without a commit are reported as tail bytes — so a torn segment tail
/// can never invent a transaction the writer did not finish.
pub fn scan_records(buf: &[u8], start: usize) -> TxnScan {
    let mut scan = TxnScan { committed_offset: start.min(buf.len()) as u64, ..TxnScan::default() };
    let mut pos = start;
    let mut pending: Vec<String> = Vec::new();
    loop {
        match parse_record(buf, pos) {
            Ok(None) => break,
            Ok(Some((rec, next))) => {
                match rec {
                    Parsed::Stmt(sql) => match std::str::from_utf8(sql) {
                        Ok(text) => pending.push(text.to_owned()),
                        Err(_) => {
                            scan.finding =
                                Some(format!("non-UTF-8 statement at offset {pos}"));
                            break;
                        }
                    },
                    Parsed::Commit(seq) => {
                        scan.txns.push(ScannedTxn { seq, stmts: std::mem::take(&mut pending) });
                        scan.committed_offset = next as u64;
                    }
                    Parsed::Fsync => {}
                }
                pos = next;
            }
            Err(msg) => {
                scan.finding = Some(msg);
                break;
            }
        }
    }
    scan.tail_bytes = (buf.len() as u64).saturating_sub(scan.committed_offset);
    scan
}

/// Structurally audit a log without executing anything (fsck's view).
pub fn audit(buf: &[u8]) -> WalAudit {
    let mut audit = WalAudit::default();
    if buf.is_empty() {
        return audit;
    }
    if let Err(msg) = header_ok(buf) {
        audit.finding = Some(msg);
        audit.tail_bytes = buf.len() as u64;
        return audit;
    }
    audit.committed_offset = WAL_HEADER;
    let mut pos = WAL_HEADER as usize;
    loop {
        match parse_record(buf, pos) {
            Ok(None) => break,
            Ok(Some((rec, next))) => {
                audit.records += 1;
                match rec {
                    Parsed::Commit(seq) => {
                        audit.commits += 1;
                        audit.last_commit_seq = seq;
                        audit.committed_offset = next as u64;
                    }
                    Parsed::Fsync => audit.fsync_marks += 1,
                    Parsed::Stmt(_) => {}
                }
                pos = next;
            }
            Err(msg) => {
                audit.finding = Some(msg);
                break;
            }
        }
    }
    audit.tail_bytes = buf.len() as u64 - audit.committed_offset;
    audit
}

/// Run `op`, feeding its latency into `cell` whether it succeeds or not
/// (a failed fsync is exactly the latency outlier worth seeing).
fn timed<T>(
    cell: &crate::stats::LatencyCell,
    op: impl FnOnce() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let started = std::time::Instant::now();
    let result = op();
    cell.record_us(started.elapsed().as_micros() as u64);
    result
}

/// An open write-ahead log positioned for appends.
#[derive(Debug)]
pub struct Wal<M: WalMedia> {
    media: M,
    end: u64,
    seq: u64,
    pending_stmts: u64,
}

impl<M: WalMedia> Wal<M> {
    /// Open the log over `media`, replaying committed transactions into
    /// `db` and truncating any uncommitted/corrupt tail so the durable
    /// log holds exactly the committed prefix. `base_seq` is the last
    /// commit the base snapshot already folded in ([`replay_into`]
    /// skips commits at or below it).
    pub fn open(
        mut media: M,
        db: &mut Database,
        base_seq: u64,
    ) -> Result<(Self, ReplayReport), StoreError> {
        let buf = media.read_all()?;
        let report = replay_into(db, &buf, base_seq)?;
        if report.committed_offset < WAL_HEADER {
            // no usable header: start the log fresh
            media.truncate(0)?;
            media.append(&WAL_MAGIC)?;
            media.sync()?;
        } else if report.committed_offset < buf.len() as u64 {
            media.truncate(report.committed_offset)?;
        }
        let end = report.committed_offset.max(WAL_HEADER);
        // new commits must continue past both the log's and the base's
        // sequence numbers, whichever is further along
        let seq = report.last_commit_seq.max(base_seq);
        let wal = Wal { media, end, seq, pending_stmts: 0 };
        Ok((wal, report))
    }

    /// Start a fresh, empty log over `media`, discarding whatever bytes
    /// it held. Used by `Store::create`: a brand-new base file owns all
    /// state, so a stale WAL left at the same path by some earlier store
    /// must be truncated, never replayed.
    pub fn create(mut media: M) -> std::io::Result<Self> {
        media.truncate(0)?;
        media.append(&WAL_MAGIC)?;
        media.sync()?;
        Ok(Wal { media, end: WAL_HEADER, seq: 0, pending_stmts: 0 })
    }

    /// Append `rec` and (when `sync`) make it durable. On any failure
    /// the media is rolled back to the pre-append end (best effort), so
    /// a retry never leaves a duplicate or partially written record
    /// behind and `end()` keeps matching the media length.
    fn append_record(&mut self, rec: &[u8], sync: bool) -> std::io::Result<()> {
        let stats = crate::stats::store_stats();
        let result = timed(&stats.wal_append, || self.media.append(rec)).and_then(|()| {
            if sync {
                timed(&stats.wal_sync, || self.media.sync())
            } else {
                Ok(())
            }
        });
        if let Err(e) = result {
            let _ = self.media.truncate(self.end);
            return Err(e);
        }
        self.end += rec.len() as u64;
        Ok(())
    }

    /// Append one statement record (not durable until [`Wal::commit`]).
    pub fn append_stmt(&mut self, sql: &str) -> std::io::Result<()> {
        let rec = encode_record(REC_STMT, sql.as_bytes());
        self.append_record(&rec, false)?;
        self.pending_stmts += 1;
        Ok(())
    }

    /// Commit the open transaction: write the commit record, fsync, and
    /// return the new commit sequence number. The in-memory sequence
    /// advances only after both the append and the sync succeed, so a
    /// failed commit can be retried without skipping a sequence number.
    pub fn commit(&mut self) -> std::io::Result<u64> {
        let started = std::time::Instant::now();
        let seq = self.seq + 1;
        let rec = encode_record(REC_COMMIT, &seq.to_le_bytes());
        self.append_record(&rec, true)?;
        self.seq = seq;
        self.pending_stmts = 0;
        crate::stats::store_stats().wal_commit.record_us(started.elapsed().as_micros() as u64);
        Ok(seq)
    }

    /// Write an fsync-point marker and sync.
    pub fn fsync_mark(&mut self) -> std::io::Result<()> {
        let rec = encode_record(REC_FSYNC, &self.seq.to_le_bytes());
        self.append_record(&rec, true)
    }

    /// Statements appended since the last commit.
    pub fn pending_stmts(&self) -> u64 {
        self.pending_stmts
    }

    /// Last committed sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Current end offset of the log.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Mutable access to the underlying media (fault-injection tests).
    pub fn media_mut(&mut self) -> &mut M {
        &mut self.media
    }

    /// Consume the log, returning its media.
    pub fn into_media(self) -> M {
        self.media
    }

    /// Reset the log to an empty (header-only) state — used after a
    /// checkpoint has folded the log into the base file.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.media.truncate(0)?;
        self.media.append(&WAL_MAGIC)?;
        self.media.sync()?;
        self.end = WAL_HEADER;
        self.pending_stmts = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory media for unit tests (fault-free).
    #[derive(Debug, Default, Clone)]
    pub struct MemMedia {
        pub buf: Vec<u8>,
    }

    impl WalMedia for MemMedia {
        fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            self.buf.extend_from_slice(bytes);
            Ok(())
        }
        fn sync(&mut self) -> std::io::Result<()> {
            Ok(())
        }
        fn len(&mut self) -> std::io::Result<u64> {
            Ok(self.buf.len() as u64)
        }
        fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
            Ok(self.buf.clone())
        }
        fn truncate(&mut self, len: u64) -> std::io::Result<()> {
            self.buf.truncate(len as usize);
            Ok(())
        }
    }

    fn base_db() -> Database {
        let mut db = Database::new("w");
        db.execute_script("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)").unwrap();
        db
    }

    #[test]
    fn commit_then_replay_restores_rows() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.append_stmt("INSERT INTO t VALUES (2, 'b')").unwrap();
        assert_eq!(wal.pending_stmts(), 2);
        assert_eq!(wal.commit().unwrap(), 1);
        let media = wal.media.clone();

        let mut fresh = base_db();
        let (_, report) = Wal::open(media, &mut fresh, 0).unwrap();
        assert_eq!(report.committed, 1);
        assert_eq!(report.stmts_applied, 2);
        assert_eq!(report.tail_bytes, 0);
        assert_eq!(fresh.rows("t").unwrap().len(), 2);
    }

    #[test]
    fn uncommitted_tail_is_dropped_and_truncated() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.commit().unwrap();
        wal.append_stmt("INSERT INTO t VALUES (2, 'orphan')").unwrap();
        // crash before commit
        let media = wal.media.clone();
        let mut fresh = base_db();
        let (wal2, report) = Wal::open(media, &mut fresh, 0).unwrap();
        assert_eq!(report.committed, 1);
        assert!(report.tail_bytes > 0, "orphan statement was in the tail");
        assert_eq!(fresh.rows("t").unwrap().len(), 1);
        // the tail was physically removed: a later commit cannot resurrect it
        let mut wal2 = wal2;
        wal2.commit().unwrap();
        let mut again = base_db();
        let (_, r2) = Wal::open(wal2.media.clone(), &mut again, 0).unwrap();
        assert_eq!(r2.committed, 2);
        assert_eq!(again.rows("t").unwrap().len(), 1, "orphan must not reappear");
    }

    #[test]
    fn fsync_marks_are_scanned_but_do_not_commit() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.fsync_mark().unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.commit().unwrap();
        wal.fsync_mark().unwrap();
        let a = audit(&wal.media.buf);
        assert_eq!(a.commits, 1);
        assert_eq!(a.fsync_marks, 2);
        assert!(a.finding.is_none());
        // trailing fsync mark is an ignorable tail for replay purposes
        let mut fresh = base_db();
        let (_, report) = Wal::open(wal.media.clone(), &mut fresh, 0).unwrap();
        assert_eq!(report.committed, 1);
        assert_eq!(fresh.rows("t").unwrap().len(), 1);
    }

    #[test]
    fn corrupt_record_stops_replay_at_committed_prefix() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.commit().unwrap();
        let good_end = wal.end() as usize;
        wal.append_stmt("INSERT INTO t VALUES (2, 'b')").unwrap();
        wal.commit().unwrap();
        let mut media = wal.media.clone();
        media.buf[good_end + 2] ^= 0xFF; // corrupt txn 2's statement record
        let mut fresh = base_db();
        let (_, report) = Wal::open(media, &mut fresh, 0).unwrap();
        assert_eq!(report.committed, 1, "second txn must not apply");
        assert!(report.finding.is_some());
        assert_eq!(fresh.rows("t").unwrap().len(), 1);
    }

    #[test]
    fn reset_empties_the_log() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.commit().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.end(), WAL_HEADER);
        let mut fresh = base_db();
        let (_, report) = Wal::open(wal.media.clone(), &mut fresh, 0).unwrap();
        assert_eq!(report.committed, 0);
        assert_eq!(fresh.rows("t").unwrap().len(), 0);
    }

    /// Media whose next append or sync fails once, then heals.
    #[derive(Debug, Default, Clone)]
    struct FlakyMedia {
        inner: MemMedia,
        fail_append: bool,
        fail_sync: bool,
    }

    impl WalMedia for FlakyMedia {
        fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            if self.fail_append {
                self.fail_append = false;
                return Err(std::io::Error::other("injected append failure"));
            }
            self.inner.append(bytes)
        }
        fn sync(&mut self) -> std::io::Result<()> {
            if self.fail_sync {
                self.fail_sync = false;
                return Err(std::io::Error::other("injected sync failure"));
            }
            self.inner.sync()
        }
        fn len(&mut self) -> std::io::Result<u64> {
            self.inner.len()
        }
        fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
            self.inner.read_all()
        }
        fn truncate(&mut self, len: u64) -> std::io::Result<()> {
            self.inner.truncate(len)
        }
    }

    #[test]
    fn replay_skips_commits_the_base_already_folded_in() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.commit().unwrap(); // seq 1
        wal.append_stmt("INSERT INTO t VALUES (2, 'b')").unwrap();
        wal.commit().unwrap(); // seq 2
        // base snapshot folded in seq 1: replay must apply only seq 2
        let mut fresh = base_db();
        fresh.execute_script("INSERT INTO t VALUES (1, 'a')").unwrap();
        let (wal2, report) = Wal::open(wal.media.clone(), &mut fresh, 1).unwrap();
        assert_eq!(report.committed, 1);
        assert_eq!(report.commits_skipped, 1);
        assert_eq!(report.stmts_applied, 1);
        assert_eq!(report.last_commit_seq, 2);
        assert_eq!(fresh.rows("t").unwrap().len(), 2);
        assert_eq!(wal2.seq(), 2, "new commits continue past the log's seq");
        // base folded in everything: nothing applies, seq continues from base
        let mut full = base_db();
        let (wal3, report) = Wal::open(wal.media.clone(), &mut full, 2).unwrap();
        assert_eq!((report.committed, report.commits_skipped), (0, 2));
        assert_eq!(full.rows("t").unwrap().len(), 0);
        assert_eq!(wal3.seq(), 2);
    }

    #[test]
    fn create_discards_stale_bytes_without_replaying() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO nonexistent_table VALUES (1)").unwrap();
        // forge a commit over a statement that no longer applies
        let rec = encode_record(REC_COMMIT, &1u64.to_le_bytes());
        wal.media.append(&rec).unwrap();
        let stale = wal.into_media();
        let fresh = Wal::create(stale).unwrap();
        assert_eq!(fresh.end(), WAL_HEADER);
        assert_eq!(fresh.seq(), 0);
        let mut clean = base_db();
        let (_, report) = Wal::open(fresh.into_media(), &mut clean, 0).unwrap();
        assert_eq!(report.committed, 0, "stale log must be gone, not replayed");
    }

    #[test]
    fn failed_commit_does_not_advance_seq_and_retries_cleanly() {
        let mut db = base_db();
        let media = FlakyMedia::default();
        let (mut wal, _) = Wal::open(media, &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.media_mut().fail_append = true;
        assert!(wal.commit().is_err());
        assert_eq!(wal.seq(), 0, "failed append must not consume a sequence number");
        wal.media_mut().fail_sync = true;
        assert!(wal.commit().is_err());
        assert_eq!(wal.seq(), 0, "failed sync must not consume a sequence number");
        // the retry lands seq 1; replay sees exactly one committed txn
        assert_eq!(wal.commit().unwrap(), 1);
        let mut fresh = base_db();
        let (_, report) = Wal::open(wal.media.inner.clone(), &mut fresh, 0).unwrap();
        assert_eq!(report.committed, 1);
        assert_eq!(report.last_commit_seq, 1);
        assert_eq!(fresh.rows("t").unwrap().len(), 1);
    }

    #[test]
    fn replay_reports_the_skipped_seq_range() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        for i in 1..=4 {
            wal.append_stmt(&format!("INSERT INTO t VALUES ({i}, 'x')")).unwrap();
            wal.commit().unwrap();
        }
        // base folded in seqs 1..=3: the report pins the exact range
        let mut fresh = base_db();
        fresh.execute_script(
            "INSERT INTO t VALUES (1, 'x'); INSERT INTO t VALUES (2, 'x');\
             INSERT INTO t VALUES (3, 'x')",
        )
        .unwrap();
        let report = replay_into(&mut fresh, &wal.media.buf, 3).unwrap();
        assert_eq!(report.commits_skipped, 3);
        assert_eq!(report.first_skipped_seq, 1);
        assert_eq!(report.last_skipped_seq, 3);
        assert_eq!(report.committed, 1);
        // nothing skipped: range stays (0, 0)
        let mut none = base_db();
        let report = replay_into(&mut none, &wal.media.buf, 0).unwrap();
        assert_eq!(report.commits_skipped, 0);
        assert_eq!((report.first_skipped_seq, report.last_skipped_seq), (0, 0));
    }

    #[test]
    fn scan_records_recovers_txns_and_never_invents_a_tail() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.append_stmt("INSERT INTO t VALUES (2, 'b')").unwrap();
        wal.commit().unwrap();
        wal.fsync_mark().unwrap();
        wal.append_stmt("INSERT INTO t VALUES (3, 'c')").unwrap();
        wal.commit().unwrap();
        wal.append_stmt("INSERT INTO t VALUES (4, 'orphan')").unwrap();
        let scan = scan_records(&wal.media.buf, WAL_HEADER as usize);
        assert_eq!(scan.txns.len(), 2);
        assert_eq!(scan.txns[0].seq, 1);
        assert_eq!(scan.txns[0].stmts.len(), 2);
        assert_eq!(scan.txns[1].seq, 2);
        assert_eq!(scan.txns[1].stmts, vec!["INSERT INTO t VALUES (3, 'c')".to_owned()]);
        assert!(scan.tail_bytes > 0, "orphan statement is tail, not a transaction");
        assert!(scan.finding.is_none(), "clean tail is not a finding");
        // truncate mid-record at every byte: committed prefix only shrinks
        // at record boundaries, and no scan ever yields a phantom txn
        let full = wal.media.buf.clone();
        for cut in WAL_HEADER as usize..full.len() {
            let scan = scan_records(&full[..cut], WAL_HEADER as usize);
            assert!(scan.txns.len() <= 2);
            for (i, txn) in scan.txns.iter().enumerate() {
                assert_eq!(txn.seq, (i + 1) as u64, "cut at {cut} invented a seq");
            }
        }
    }

    #[test]
    fn audit_flags_corruption_with_offset() {
        let mut db = base_db();
        let (mut wal, _) = Wal::open(MemMedia::default(), &mut db, 0).unwrap();
        wal.append_stmt("INSERT INTO t VALUES (1, 'a')").unwrap();
        wal.commit().unwrap();
        let mut buf = wal.media.buf.clone();
        buf[WAL_HEADER as usize] = 99; // unknown record kind
        let a = audit(&buf);
        assert_eq!(a.commits, 0);
        assert!(a.finding.unwrap().contains("offset 8"));
    }
}
