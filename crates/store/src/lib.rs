//! # osql-store — durable page-based storage for sqlkit databases
//!
//! The serving stack's persistence layer, with zero external
//! dependencies (like `osql-trace`):
//!
//! - [`file`]: a single-file store format — fixed-size checksummed
//!   pages, a table-of-contents page, a schema section, one row section
//!   per table, and named blobs — written atomically via temp-file +
//!   rename ([`write_database`] / [`read_database`] / [`fsck_file`]).
//! - [`wal`]: a statement-level write-ahead log with commit records,
//!   fsync-point markers, and replay-based crash recovery that always
//!   restores exactly the last fully committed state.
//! - [`store`]: [`Store`] pairs a base snapshot with a WAL —
//!   `execute`/`commit`/`checkpoint` — and truncates uncommitted tails
//!   on open.
//! - [`catalog`]: [`Catalog`] maps db_id → store file, loads lazily on
//!   first query, and evicts under a byte-accounted LRU budget so a
//!   benchmark larger than memory can still be served.
//! - [`fault`]: [`FaultFile`], an injectable WAL media (torn writes,
//!   lost unsynced tails, corruption, short reads) driving the
//!   crash-recovery test matrix.
//!
//! The codec ([`codec`]) is hand-rolled little-endian binary with
//! CRC-32 checksums at page, section, and WAL-record granularity;
//! every decode path is bounds-checked and returns typed errors, never
//! panics, because fsck and recovery deliberately feed it garbage.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod catalog;
pub mod codec;
pub mod fault;
pub mod file;
pub mod page;
pub mod stats;
pub mod store;
pub mod wal;

pub use catalog::{Catalog, CatalogEvent, STORE_EXT};
pub use codec::{crc32, CodecError, Dec, Enc};
pub use fault::{FaultFile, FaultPlan};
pub use file::{fsck_file, read_database, read_toc, write_database, FsckReport, LoadedStore, Toc};
pub use page::{PAGE_PAYLOAD, PAGE_SIZE};
pub use stats::{store_stats, LatencySnapshot, StoreStats, STORE_US_BOUNDS};
pub use store::{wal_path, OpenReport, Store};
pub use wal::{
    audit, replay_into, scan_records, FsMedia, ReplayReport, ScannedTxn, TxnScan, Wal, WalAudit,
    WalMedia,
};

/// Any failure in the storage layer: an I/O error from the filesystem
/// or a corruption finding from a checksum/decode path.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The bytes on disk are not a valid store (checksum mismatch,
    /// truncation, bad magic, undecodable payload, …).
    Corrupt(String),
}

impl StoreError {
    /// A corruption finding.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Corrupt(e.to_string())
    }
}
