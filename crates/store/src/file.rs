//! Single-file store format: a checksummed TOC page followed by section
//! pages holding the schema, one row section per table, and named blobs.
//!
//! Layout (all pages [`PAGE_SIZE`] bytes):
//!
//! ```text
//! page 0        TOC: magic, version, page size, db name, section list
//! page 1..N     DATA pages, sections stored as contiguous page ranges
//! ```
//!
//! Each section records its byte length, CRC-32 over the reassembled
//! bytes, and (for table sections) a row count, so corruption is caught
//! at two levels: per page and per section. Files are written via a
//! temp-file + rename so a crashed `write_database` never leaves a
//! half-written store visible under the final name.

use crate::codec::{self, crc32, Dec, Enc};
use crate::page::{
    pack_page, paginate, unpack_page, PAGE_DATA, PAGE_PAYLOAD, PAGE_SIZE, PAGE_TOC,
};
use crate::StoreError;
use sqlkit::{ColumnIndex, Database, IndexDef};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Store file magic ("OSQLSTO1").
pub const STORE_MAGIC: u64 = u64::from_le_bytes(*b"OSQLSTO1");
/// Store format version. Version 2 added `base_seq` to the TOC so
/// recovery can tell which WAL commits a checkpoint already folded in;
/// version 3 added secondary-index sections. Version-2 files (no index
/// sections) still load.
pub const STORE_VERSION: u32 = 3;

/// What a section holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// The database schema (always the first section).
    Schema,
    /// One table's rows; `name` is the table name.
    Table,
    /// An opaque named blob (e.g. datagen metadata).
    Blob,
    /// One secondary index's sorted entries; `name` is `table.column`.
    Index,
}

impl SectionKind {
    fn tag(self) -> u8 {
        match self {
            SectionKind::Schema => 1,
            SectionKind::Table => 2,
            SectionKind::Blob => 3,
            SectionKind::Index => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, StoreError> {
        match tag {
            1 => Ok(SectionKind::Schema),
            2 => Ok(SectionKind::Table),
            3 => Ok(SectionKind::Blob),
            4 => Ok(SectionKind::Index),
            t => Err(StoreError::corrupt(format!("unknown section kind {t}"))),
        }
    }
}

/// One TOC entry: a named section stored as a contiguous page range.
#[derive(Debug, Clone)]
pub struct Section {
    /// What the section holds.
    pub kind: SectionKind,
    /// Section name (table name, blob name, or `"schema"`).
    pub name: String,
    /// First page index of the section.
    pub first_page: u32,
    /// Number of pages the section spans.
    pub page_count: u32,
    /// Exact byte length of the section payload.
    pub byte_len: u64,
    /// CRC-32 over the reassembled section bytes.
    pub crc: u32,
    /// Row count for table sections (0 otherwise).
    pub row_count: u64,
}

/// Decoded TOC page.
#[derive(Debug, Clone)]
pub struct Toc {
    /// Database name recorded in the store.
    pub db_name: String,
    /// Sequence number of the last WAL commit folded into this base
    /// file (0 for a fresh export). WAL replay skips commits at or
    /// below it, so a crash between a checkpoint's base publish and its
    /// WAL truncation cannot double-apply transactions.
    pub base_seq: u64,
    /// Sections in file order (schema first, then tables, then blobs).
    pub sections: Vec<Section>,
}

fn encode_toc(toc: &Toc) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(STORE_MAGIC);
    enc.put_u32(STORE_VERSION);
    enc.put_u32(PAGE_SIZE as u32);
    enc.put_str(&toc.db_name);
    enc.put_u64(toc.base_seq);
    enc.put_u32(toc.sections.len() as u32);
    for s in &toc.sections {
        enc.put_u8(s.kind.tag());
        enc.put_str(&s.name);
        enc.put_u32(s.first_page);
        enc.put_u32(s.page_count);
        enc.put_u64(s.byte_len);
        enc.put_u32(s.crc);
        enc.put_u64(s.row_count);
    }
    enc.into_bytes()
}

fn decode_toc(payload: &[u8]) -> Result<Toc, StoreError> {
    let mut dec = Dec::new(payload);
    let magic = dec.get_u64()?;
    if magic != STORE_MAGIC {
        return Err(StoreError::corrupt("bad store magic in TOC"));
    }
    let version = dec.get_u32()?;
    if !(2..=STORE_VERSION).contains(&version) {
        return Err(StoreError::corrupt(format!("unsupported store version {version}")));
    }
    let page_size = dec.get_u32()?;
    if page_size as usize != PAGE_SIZE {
        return Err(StoreError::corrupt(format!("unsupported page size {page_size}")));
    }
    let db_name = dec.get_str()?;
    let base_seq = dec.get_u64()?;
    let n = dec.get_u32()? as usize;
    let mut sections = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        sections.push(Section {
            kind: SectionKind::from_tag(dec.get_u8()?)?,
            name: dec.get_str()?,
            first_page: dec.get_u32()?,
            page_count: dec.get_u32()?,
            byte_len: dec.get_u64()?,
            crc: dec.get_u32()?,
            row_count: dec.get_u64()?,
        });
    }
    if dec.remaining() != 0 {
        return Err(StoreError::corrupt("trailing bytes after TOC"));
    }
    Ok(Toc { db_name, base_seq, sections })
}

/// A database reloaded from a store file.
#[derive(Debug)]
pub struct LoadedStore {
    /// The reconstructed database.
    pub database: Database,
    /// Named blob sections, in file order.
    pub blobs: Vec<(String, Vec<u8>)>,
    /// Size of the store file in bytes (used for byte-accounted budgets).
    pub file_bytes: u64,
    /// Last WAL commit sequence folded into this base (TOC `base_seq`);
    /// replay must skip commits at or below it.
    pub base_seq: u64,
}

/// Write a database (plus optional named blobs) as a store file.
///
/// The file is assembled next to `path` under a `.tmp` name, fsynced,
/// and renamed into place, so readers never observe a partial store.
/// `base_seq` is the last WAL commit this snapshot folds in (0 for a
/// fresh export with no log history); it is recorded in the TOC so
/// replay can skip already-applied commits if the sidecar WAL survives
/// a crash that the snapshot's truncation should have removed.
/// Returns the number of bytes written.
pub fn write_database(
    path: &Path,
    db: &Database,
    blobs: &[(String, Vec<u8>)],
    base_seq: u64,
) -> std::io::Result<u64> {
    // assemble section payloads in file order
    let mut payloads: Vec<(SectionKind, String, Vec<u8>, u64)> = Vec::new();
    payloads.push((
        SectionKind::Schema,
        "schema".to_owned(),
        codec::encode_schema(&db.schema),
        0,
    ));
    for table in &db.schema.tables {
        let rows = db
            .rows(&table.name)
            .map_err(|e| std::io::Error::other(format!("dump {}: {e}", table.name)))?;
        payloads.push((
            SectionKind::Table,
            table.name.clone(),
            codec::encode_rows(rows, table.columns.len()),
            rows.len() as u64,
        ));
    }
    for def in db.index_defs() {
        let built = db.index(&def.table, &def.column);
        payloads.push((
            SectionKind::Index,
            format!("{}.{}", def.table, def.column),
            codec::encode_index(&def.table, &def.column, built.as_deref()),
            built.map(|ix| ix.len() as u64).unwrap_or(0),
        ));
    }
    for (name, bytes) in blobs {
        payloads.push((SectionKind::Blob, name.clone(), bytes.clone(), 0));
    }

    // paginate sections and build the TOC
    let assemble = |payloads: &[(SectionKind, String, Vec<u8>, u64)]| {
        let mut data_pages: Vec<Vec<u8>> = Vec::new();
        let mut sections = Vec::with_capacity(payloads.len());
        for (kind, name, bytes, row_count) in payloads {
            let pages = paginate(bytes);
            sections.push(Section {
                kind: *kind,
                name: name.clone(),
                first_page: 1 + data_pages.len() as u32,
                page_count: pages.len() as u32,
                byte_len: bytes.len() as u64,
                crc: crc32(bytes),
                row_count: *row_count,
            });
            data_pages.extend(pages);
        }
        let toc_bytes =
            encode_toc(&Toc { db_name: db.schema.name.clone(), base_seq, sections });
        (data_pages, toc_bytes)
    };
    let (mut data_pages, mut toc_bytes) = assemble(&payloads);
    if toc_bytes.len() > PAGE_PAYLOAD {
        // indexes are rebuildable from the table sections: drop them
        // before giving up on a TOC that cannot fit one page
        payloads.retain(|(kind, ..)| *kind != SectionKind::Index);
        (data_pages, toc_bytes) = assemble(&payloads);
    }
    if toc_bytes.len() > PAGE_PAYLOAD {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("TOC overflows one page ({} bytes)", toc_bytes.len()),
        ));
    }

    // temp file + fsync + rename: all-or-nothing visibility
    let tmp = path.with_extension("store.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&pack_page(PAGE_TOC, &toc_bytes))?;
        for page in &data_pages {
            f.write_all(page)?;
        }
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // best-effort directory fsync so the rename itself is durable
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(((1 + data_pages.len()) * PAGE_SIZE) as u64)
}

fn section_bytes(file: &[u8], s: &Section) -> Result<Vec<u8>, StoreError> {
    let pages = file.len() / PAGE_SIZE;
    let end = s.first_page as usize + s.page_count as usize;
    if s.first_page == 0 || end > pages {
        return Err(StoreError::corrupt(format!(
            "section '{}' pages {}..{} out of range (file has {} pages)",
            s.name, s.first_page, end, pages
        )));
    }
    let mut bytes = Vec::with_capacity(s.byte_len as usize);
    for idx in s.first_page as usize..end {
        let page = &file[idx * PAGE_SIZE..(idx + 1) * PAGE_SIZE];
        let (ty, payload) = unpack_page(page)
            .map_err(|e| StoreError::corrupt(format!("page {idx} ('{}'): {e}", s.name)))?;
        if ty != PAGE_DATA {
            return Err(StoreError::corrupt(format!(
                "page {idx} ('{}') has type {ty}, expected data",
                s.name
            )));
        }
        bytes.extend_from_slice(payload);
    }
    if (bytes.len() as u64) < s.byte_len {
        return Err(StoreError::corrupt(format!(
            "section '{}' holds {} bytes, TOC records {}",
            s.name,
            bytes.len(),
            s.byte_len
        )));
    }
    bytes.truncate(s.byte_len as usize);
    if crc32(&bytes) != s.crc {
        return Err(StoreError::corrupt(format!("section '{}' checksum mismatch", s.name)));
    }
    Ok(bytes)
}

fn load_toc(file: &[u8]) -> Result<Toc, StoreError> {
    if file.len() < PAGE_SIZE || !file.len().is_multiple_of(PAGE_SIZE) {
        return Err(StoreError::corrupt(format!(
            "file is {} bytes, not a positive multiple of {PAGE_SIZE}",
            file.len()
        )));
    }
    let (ty, payload) = unpack_page(&file[..PAGE_SIZE])
        .map_err(|e| StoreError::corrupt(format!("TOC page: {e}")))?;
    if ty != PAGE_TOC {
        return Err(StoreError::corrupt(format!("page 0 has type {ty}, expected TOC")));
    }
    decode_toc(payload)
}

/// Install one decoded index section into the reloaded database. Every
/// failure path — undecodable payload, unknown table, a row count that
/// does not match the reloaded table, entries that fail the sorted-run
/// validation — drops the index silently: the declaration disappears,
/// the planner falls back to scans, and results stay correct. A section
/// persisted as declaration-only (unbuildable column) reinstalls as
/// unusable so the planning fingerprint round-trips.
fn install_index_section(database: &mut Database, bytes: &[u8]) {
    let Ok(decoded) = codec::decode_index(bytes) else { return };
    let def = IndexDef { table: decoded.table, column: decoded.column };
    match decoded.built {
        None => {
            let _ = database.install_unusable_index(def);
        }
        Some((entries, table_rows)) => {
            let live_rows = match database.rows(&def.table) {
                Ok(rows) => rows.len(),
                Err(_) => return,
            };
            if table_rows != live_rows as u64 {
                return;
            }
            if let Some(index) = ColumnIndex::from_entries(entries, live_rows) {
                let _ = database.install_index(def, index);
            }
        }
    }
}

/// Read a store file back into a [`Database`] plus its blobs.
pub fn read_database(path: &Path) -> Result<LoadedStore, StoreError> {
    let file = fs::read(path)?;
    let toc = load_toc(&file)?;
    let mut database = Database::default();
    let mut blobs = Vec::new();
    let mut saw_schema = false;
    for s in &toc.sections {
        let bytes = match section_bytes(&file, s) {
            Ok(b) => b,
            // index sections are derived data: a damaged one is dropped
            // (lookups fall back to scans) instead of failing the load —
            // fsck still reports it. Everything else is authoritative.
            Err(_) if s.kind == SectionKind::Index => continue,
            Err(e) => return Err(e),
        };
        match s.kind {
            SectionKind::Schema => {
                if saw_schema {
                    return Err(StoreError::corrupt("duplicate schema section"));
                }
                saw_schema = true;
                let schema = codec::decode_schema(&bytes)?;
                let mut db = Database::new(schema.name.clone());
                for t in &schema.tables {
                    db.create_table(t.clone()).map_err(|e| {
                        StoreError::corrupt(format!("rebuild table {}: {e}", t.name))
                    })?;
                }
                for fk in schema.foreign_keys {
                    db.add_foreign_key(fk);
                }
                database = db;
            }
            SectionKind::Table => {
                if !saw_schema {
                    return Err(StoreError::corrupt("table section before schema"));
                }
                let arity = database
                    .schema
                    .table(&s.name)
                    .map(|t| t.columns.len())
                    .ok_or_else(|| {
                        StoreError::corrupt(format!("table section '{}' not in schema", s.name))
                    })?;
                let rows = codec::decode_rows(&bytes, arity)?;
                if rows.len() as u64 != s.row_count {
                    return Err(StoreError::corrupt(format!(
                        "table '{}' decoded {} rows, TOC records {}",
                        s.name,
                        rows.len(),
                        s.row_count
                    )));
                }
                database.insert_rows(&s.name, rows).map_err(|e| {
                    StoreError::corrupt(format!("reload rows into {}: {e}", s.name))
                })?;
            }
            SectionKind::Index => {
                if !saw_schema {
                    return Err(StoreError::corrupt("index section before schema"));
                }
                install_index_section(&mut database, &bytes);
            }
            SectionKind::Blob => blobs.push((s.name.clone(), bytes)),
        }
    }
    if !saw_schema {
        return Err(StoreError::corrupt("store has no schema section"));
    }
    if database.schema.name != toc.db_name {
        return Err(StoreError::corrupt(format!(
            "TOC db name '{}' does not match schema name '{}'",
            toc.db_name, database.schema.name
        )));
    }
    Ok(LoadedStore { database, blobs, file_bytes: file.len() as u64, base_seq: toc.base_seq })
}

/// Read only a store file's TOC page — the cheap way to learn a store's
/// identity and durable position (`base_seq`) without decoding any row
/// sections. Operators use this (via the `catalog`/`fsck` CLI modes) to
/// compare a primary's position against a follower's by hand.
pub fn read_toc(path: &Path) -> Result<Toc, StoreError> {
    use std::io::Read as _;
    let mut f = fs::File::open(path)?;
    let mut page = vec![0u8; PAGE_SIZE];
    f.read_exact(&mut page)
        .map_err(|_| StoreError::corrupt(format!("file shorter than one {PAGE_SIZE}-byte page")))?;
    let (ty, payload) =
        unpack_page(&page).map_err(|e| StoreError::corrupt(format!("TOC page: {e}")))?;
    if ty != PAGE_TOC {
        return Err(StoreError::corrupt(format!("page 0 has type {ty}, expected TOC")));
    }
    decode_toc(payload)
}

/// Full audit of a store file: every page and every section is checked,
/// and *all* findings are collected rather than stopping at the first.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Total pages in the file.
    pub pages: usize,
    /// Sections listed in the TOC.
    pub sections: usize,
    /// The TOC's `base_seq` — the last WAL commit folded into this base
    /// file — when the TOC decoded (`None` when it did not).
    pub base_seq: Option<u64>,
    /// Human-readable corruption findings (empty means clean).
    pub findings: Vec<String>,
}

impl FsckReport {
    /// True when no corruption was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Audit a store file, collecting every corrupted page/section finding.
pub fn fsck_file(path: &Path) -> Result<FsckReport, StoreError> {
    let file = fs::read(path)?;
    let mut report = FsckReport::default();
    if file.len() < PAGE_SIZE || !file.len().is_multiple_of(PAGE_SIZE) {
        report.findings.push(format!(
            "file is {} bytes, not a positive multiple of {PAGE_SIZE}",
            file.len()
        ));
        return Ok(report);
    }
    report.pages = file.len() / PAGE_SIZE;
    // pass 1: every page must verify on its own
    for idx in 0..report.pages {
        let page = &file[idx * PAGE_SIZE..(idx + 1) * PAGE_SIZE];
        if let Err(e) = unpack_page(page) {
            report.findings.push(format!("page {idx}: {e}"));
        }
    }
    // pass 2: TOC and section-level invariants
    let toc = match load_toc(&file) {
        Ok(toc) => toc,
        Err(e) => {
            let msg = format!("TOC: {e}");
            if !report.findings.iter().any(|f| f.starts_with("page 0")) {
                report.findings.push(msg);
            }
            return Ok(report);
        }
    };
    report.sections = toc.sections.len();
    report.base_seq = Some(toc.base_seq);
    for s in &toc.sections {
        if let Err(e) = section_bytes(&file, s) {
            report.findings.push(e.to_string());
        }
    }
    // pass 3: the reassembled database must decode
    if report.is_clean() {
        if let Err(e) = read_database(path) {
            report.findings.push(format!("decode: {e}"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new("shop");
        db.execute_script(
            "CREATE TABLE item (id INTEGER PRIMARY KEY, label TEXT, price REAL);\
             CREATE TABLE sale (id INTEGER PRIMARY KEY, item_id INTEGER, qty INTEGER,\
               FOREIGN KEY (item_id) REFERENCES item(id));\
             INSERT INTO item VALUES (1, 'bolt', 0.25), (2, 'nut', NULL);\
             INSERT INTO sale VALUES (10, 1, 4), (11, 2, 1), (12, 1, 9);",
        )
        .unwrap();
        db
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("osql-store-file-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trips_db_and_blobs() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("shop.store");
        let db = sample_db();
        let blobs = vec![("meta".to_owned(), vec![1u8, 2, 3, 255])];
        let bytes = write_database(&path, &db, &blobs, 7).unwrap();
        assert_eq!(bytes % PAGE_SIZE as u64, 0);
        let loaded = read_database(&path).unwrap();
        assert_eq!(loaded.base_seq, 7, "base_seq round-trips through the TOC");
        assert_eq!(loaded.database.schema, db.schema);
        assert_eq!(loaded.database.rows("item").unwrap(), db.rows("item").unwrap());
        assert_eq!(loaded.database.rows("sale").unwrap(), db.rows("sale").unwrap());
        assert_eq!(loaded.blobs, blobs);
        assert_eq!(loaded.file_bytes, bytes);
        // queries agree
        let q = "SELECT label FROM item ORDER BY id";
        assert_eq!(loaded.database.query(q).unwrap().rows, db.query(q).unwrap().rows);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("shop.store");
        write_database(&path, &sample_db(), &[], 0).unwrap();
        let clean = fs::read(&path).unwrap();
        // flip one byte in each page's payload area; read and fsck must flag it
        let pages = clean.len() / PAGE_SIZE;
        for p in 0..pages {
            let mut bad = clean.clone();
            bad[p * PAGE_SIZE + 20] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(read_database(&path).is_err(), "corrupt page {p} read back silently");
            let report = fsck_file(&path).unwrap();
            assert!(!report.is_clean(), "fsck missed corruption in page {p}");
            assert!(report.findings.iter().any(|f| f.contains(&format!("page {p}"))));
        }
        // truncation
        fs::write(&path, &clean[..clean.len() - 1]).unwrap();
        assert!(read_database(&path).is_err());
        assert!(!fsck_file(&path).unwrap().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_reports_every_bad_page() {
        let dir = tmpdir("multi");
        let path = dir.join("shop.store");
        write_database(&path, &sample_db(), &[], 0).unwrap();
        let mut bad = fs::read(&path).unwrap();
        let pages = bad.len() / PAGE_SIZE;
        assert!(pages >= 3, "sample db should span several pages");
        for p in 0..pages {
            bad[p * PAGE_SIZE + 18] ^= 0x01;
        }
        fs::write(&path, &bad).unwrap();
        let report = fsck_file(&path).unwrap();
        // one finding per damaged page, not just the first
        let page_findings =
            report.findings.iter().filter(|f| f.starts_with("page ")).count();
        assert_eq!(page_findings, pages);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_file_audits_clean() {
        let dir = tmpdir("clean");
        let path = dir.join("shop.store");
        write_database(&path, &sample_db(), &[("b".into(), b"xyz".to_vec())], 0).unwrap();
        let report = fsck_file(&path).unwrap();
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.sections, 4); // schema + 2 tables + 1 blob
        fs::remove_dir_all(&dir).unwrap();
    }
}
