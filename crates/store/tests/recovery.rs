//! Crash-recovery property: cutting or corrupting the WAL at *any*
//! byte offset and reopening yields exactly the state of the last
//! fully committed transaction.
//!
//! The matrix drives [`FaultFile`] across every byte offset of a
//! scripted workload twice — once as a torn-write truncation, once as
//! a single-byte corruption — which is far past the 64-fault-point
//! floor the acceptance criteria require.

use osql_store::fault::{FaultFile, FaultPlan};
use osql_store::{wal_path, write_database, Store};
use sqlkit::value::Row;
use sqlkit::Database;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osql-recovery-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_db() -> Database {
    let mut db = Database::new("ledger");
    db.execute_script(
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, name TEXT, balance REAL);\
         INSERT INTO acct VALUES (1, 'seed', 100.0);",
    )
    .unwrap();
    db
}

fn rows_of(db: &Database) -> Vec<Row> {
    db.rows("acct").unwrap().to_vec()
}

/// Run the scripted workload over a FaultFile WAL, returning the final
/// media plus `(end_offset, expected_rows)` snapshots: snapshot `i`
/// applies whenever the log survives to at least `end_offset` bytes.
fn scripted_workload(path: &std::path::Path) -> (FaultFile, Vec<(u64, Vec<Row>)>) {
    write_database(path, &base_db(), &[], 0).unwrap();
    let (mut store, _) = Store::open_with(path, FaultFile::new()).unwrap();
    // baseline: whatever survives, the base file's state is the floor
    let mut snapshots = vec![(0u64, rows_of(store.database()))];
    for txn in 0..12u32 {
        let stmts = 1 + (txn % 3);
        for s in 0..stmts {
            let id = 10 + txn * 10 + s;
            store
                .execute(&format!("INSERT INTO acct VALUES ({id}, 'tx{txn}', {s}.5)"))
                .unwrap();
        }
        if txn % 4 == 1 {
            store.execute(&format!("UPDATE acct SET balance = {txn} WHERE id = 1")).unwrap();
        }
        if txn == 7 {
            store.execute("DELETE FROM acct WHERE id = 10").unwrap();
        }
        store.commit().unwrap();
        // snapshot at the commit boundary: a trailing fsync marker is
        // ignorable tail, not part of the committed prefix
        snapshots.push((store.wal_end(), rows_of(store.database())));
        if txn % 5 == 0 {
            store.fsync_mark().unwrap();
        }
    }
    (store.into_media(), snapshots)
}

fn expected_at(snapshots: &[(u64, Vec<Row>)], survived: u64) -> &Vec<Row> {
    &snapshots
        .iter()
        .rev()
        .find(|(end, _)| *end <= survived)
        .expect("baseline snapshot always applies")
        .1
}

#[test]
fn truncation_at_every_byte_offset_recovers_committed_prefix() {
    let dir = tmpdir("truncate");
    let path = dir.join("ledger.store");
    let (media, snapshots) = scripted_workload(&path);
    let total = media.raw_len() as u64;
    assert!(total > 64, "workload WAL must exceed the 64-fault-point floor");
    let mut fault_points = 0u64;
    for cut in 0..=total {
        let mut crashed = media.clone();
        crashed.set_plan(FaultPlan { torn_tail: Some(cut), ..FaultPlan::default() });
        crashed.crash();
        let (store, report) =
            Store::open_with(&path, crashed).expect("recovery must always succeed");
        let expect = expected_at(&snapshots, cut);
        assert_eq!(
            &rows_of(store.database()),
            expect,
            "cut at byte {cut}: state is not the committed prefix \
             (replay committed {}, finding {:?})",
            report.replay.committed,
            report.replay.finding,
        );
        fault_points += 1;
    }
    eprintln!("truncation fault points exercised: {fault_points}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corruption_at_every_byte_offset_recovers_committed_prefix() {
    let dir = tmpdir("corrupt");
    let path = dir.join("ledger.store");
    let (media, snapshots) = scripted_workload(&path);
    let total = media.raw_len() as u64;
    let mut fault_points = 0u64;
    for off in 0..total {
        let mut sick = media.clone();
        sick.set_plan(FaultPlan { corrupt_at: Some((off, 0xFF)), ..FaultPlan::default() });
        let (store, _) = Store::open_with(&path, sick).expect("recovery must always succeed");
        // replay stops inside the record containing the corrupt byte,
        // so exactly the commits that ended before it are applied
        let expect = expected_at(&snapshots, off);
        assert_eq!(
            &rows_of(store.database()),
            expect,
            "corruption at byte {off}: state is not the committed prefix"
        );
        fault_points += 1;
    }
    eprintln!("corruption fault points exercised: {fault_points}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_store_accepts_new_commits_without_resurrecting_the_tail() {
    let dir = tmpdir("resume");
    let path = dir.join("ledger.store");
    let (media, snapshots) = scripted_workload(&path);
    let total = media.raw_len() as u64;
    // sample several cut points: after recovery, new commits must build
    // on the committed prefix and never bring the lost tail back
    for cut in [total / 7, total / 3, total / 2, total - 3] {
        let mut crashed = media.clone();
        crashed.set_plan(FaultPlan { torn_tail: Some(cut), ..FaultPlan::default() });
        crashed.crash();
        let (mut store, _) = Store::open_with(&path, crashed).unwrap();
        let mut expect = expected_at(&snapshots, cut).clone();
        store.execute("INSERT INTO acct VALUES (999, 'post-crash', 1.0)").unwrap();
        store.commit().unwrap();
        expect.push(vec![
            sqlkit::Value::Int(999),
            sqlkit::Value::text("post-crash"),
            sqlkit::Value::Real(1.0),
        ]);
        let survivor = store.into_media();
        let (reopened, _) = Store::open_with(&path, survivor).unwrap();
        assert_eq!(rows_of(reopened.database()), expect, "cut at {cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoint crash window: `checkpoint()` publishes the folded base
/// (atomic rename) and only then truncates the WAL. Crash between the
/// two and the full log sits next to a base that already contains its
/// effects — recovery must skip those commits, not replay them twice
/// (the workload's primary-key INSERTs would otherwise conflict and
/// make the store unopenable). The WAL is additionally cut at every
/// byte offset: whatever survives of it, the recovered state is the
/// checkpointed state.
#[test]
fn checkpoint_crash_window_never_double_replays_at_any_cut() {
    let dir = tmpdir("ckpt-window");
    let path = dir.join("ledger.store");
    let (media, snapshots) = scripted_workload(&path);
    // simulate the first half of a checkpoint: fold the final state
    // into the base file, recording the last commit seq; the WAL is
    // left exactly as the workload wrote it (reset never ran)
    let (store, _) = Store::open_with(&path, media.clone()).unwrap();
    let final_rows = snapshots.last().unwrap().1.clone();
    assert_eq!(rows_of(store.database()), final_rows);
    write_database(&path, store.database(), &[], store.commit_seq()).unwrap();
    drop(store);

    let total = media.raw_len() as u64;
    let mut fault_points = 0u64;
    for cut in 0..=total {
        let mut crashed = media.clone();
        crashed.set_plan(FaultPlan { torn_tail: Some(cut), ..FaultPlan::default() });
        crashed.crash();
        let (store, report) =
            Store::open_with(&path, crashed).expect("recovery must always succeed");
        assert_eq!(
            rows_of(store.database()),
            final_rows,
            "cut at byte {cut}: base already folded everything in, yet replay \
             applied {} commits (skipped {})",
            report.replay.committed,
            report.replay.commits_skipped,
        );
        assert_eq!(report.replay.committed, 0, "cut at byte {cut}");
        fault_points += 1;
    }
    eprintln!("checkpoint-crash fault points exercised: {fault_points}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn real_file_wal_recovers_after_on_disk_damage() {
    let dir = tmpdir("fsmedia");
    let path = dir.join("ledger.store");
    let mut store = Store::create(&path, base_db(), vec![]).unwrap();
    store.execute("INSERT INTO acct VALUES (2, 'two', 2.0)").unwrap();
    store.commit().unwrap();
    let committed = rows_of(store.database());
    store.execute("INSERT INTO acct VALUES (3, 'three', 3.0)").unwrap();
    store.commit().unwrap();
    drop(store);
    // damage the second transaction's bytes on disk
    let wal = wal_path(&path);
    let mut bytes = std::fs::read(&wal).unwrap();
    let n = bytes.len();
    bytes[n - 20] ^= 0xFF;
    std::fs::write(&wal, &bytes).unwrap();
    let (store, report) = Store::open(&path).unwrap();
    assert_eq!(report.replay.committed, 1);
    assert!(report.replay.finding.is_some());
    assert_eq!(rows_of(store.database()), committed);
    // the damaged tail was truncated off the real file too
    drop(store);
    let after = std::fs::read(&wal).unwrap();
    assert!(after.len() < n);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn short_reads_surface_as_truncation_not_garbage() {
    let dir = tmpdir("short");
    let path = dir.join("ledger.store");
    let (media, snapshots) = scripted_workload(&path);
    let total = media.raw_len() as u64;
    for cap in [9, total / 2, total - 1] {
        let mut sick = media.clone();
        sick.set_plan(FaultPlan { short_read: Some(cap), ..FaultPlan::default() });
        let (store, _) = Store::open_with(&path, sick).unwrap();
        assert_eq!(&rows_of(store.database()), expected_at(&snapshots, cap));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
