//! Index-section durability properties:
//!
//! - a clean store round-trips declared indexes (built entries and
//!   declaration-only "unusable" markers alike), preserving the
//!   planning fingerprint;
//! - corrupting any page of an index section is localised: fsck names
//!   the damaged section, the load still succeeds, the damaged index
//!   is dropped (never served), and query results stay correct;
//! - WAL replay and checkpoints keep persisted indexes exact as rows
//!   are appended.

use osql_store::{fsck_file, read_database, write_database, PAGE_SIZE, Store};
use sqlkit::value::Value;
use sqlkit::{plan_fingerprint, Database, IndexDef};
use std::fs;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osql-ixsec-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn indexed_db() -> Database {
    let mut db = Database::new("ledger");
    let mut script = String::from(
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, name TEXT, balance REAL);\n",
    );
    for i in 0..120 {
        script.push_str(&format!("INSERT INTO acct VALUES ({i}, 'holder{i}', {i}.25);\n"));
    }
    db.execute_script(&script).unwrap();
    db.ensure_default_indexes();
    db
}

#[test]
fn clean_round_trip_preserves_indexes_and_fingerprint() {
    let dir = tmpdir("clean");
    let path = dir.join("ledger.store");
    let db = indexed_db();
    write_database(&path, &db, &[], 0).unwrap();
    let loaded = read_database(&path).unwrap();
    assert!(loaded.database.has_index("acct", "id"));
    assert_eq!(
        plan_fingerprint(&loaded.database),
        plan_fingerprint(&db),
        "index declarations must survive a store round trip"
    );
    let ix = loaded.database.index("acct", "id").expect("index resident after load");
    assert_eq!(ix.table_rows(), 120);
    assert_eq!(ix.rids_eq(&Value::Int(57)), vec![57]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unusable_index_round_trips_as_declaration_only() {
    let dir = tmpdir("unusable");
    let path = dir.join("ledger.store");
    let mut db = indexed_db();
    db.install_unusable_index(IndexDef { table: "acct".into(), column: "name".into() })
        .unwrap();
    write_database(&path, &db, &[], 0).unwrap();
    let loaded = read_database(&path).unwrap();
    assert!(loaded.database.has_index("acct", "name"), "declaration survives");
    assert!(
        loaded.database.index("acct", "name").is_none(),
        "unusable marker survives: lookups must keep falling back to scans"
    );
    assert_eq!(plan_fingerprint(&loaded.database), plan_fingerprint(&db));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn index_page_corruption_is_localised_and_never_serves_wrong_rows() {
    let dir = tmpdir("corrupt");
    let path = dir.join("ledger.store");
    let db = indexed_db();
    write_database(&path, &db, &[], 0).unwrap();
    let expected = db.query("SELECT name FROM acct WHERE id = 57").unwrap().rows;

    let clean = fs::read(&path).unwrap();
    let pages = clean.len() / PAGE_SIZE;
    let mut index_pages = 0;
    for p in 0..pages {
        let mut bad = clean.clone();
        bad[p * PAGE_SIZE + 20] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        let report = fsck_file(&path).unwrap();
        assert!(!report.is_clean(), "fsck missed corruption in page {p}");
        let names_index = report.findings.iter().any(|f| f.contains("acct.id"));
        match read_database(&path) {
            Ok(loaded) => {
                // only derived (index) data may be damaged on a successful load
                assert!(
                    names_index,
                    "page {p}: load succeeded but fsck blamed {:?}",
                    report.findings
                );
                index_pages += 1;
                assert!(
                    !loaded.database.has_index("acct", "id"),
                    "page {p}: damaged index must be dropped, not served"
                );
                let got = loaded.database.query("SELECT name FROM acct WHERE id = 57").unwrap();
                assert_eq!(got.rows, expected, "page {p}: results drifted after fallback");
            }
            Err(_) => {
                assert!(
                    !names_index,
                    "page {p}: index-only corruption must not fail the whole load"
                );
            }
        }
    }
    assert!(index_pages >= 1, "the store should hold at least one index page");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_replay_and_checkpoint_keep_indexes_exact() {
    let dir = tmpdir("replay");
    let path = dir.join("ledger.store");
    write_database(&path, &indexed_db(), &[], 0).unwrap();

    // append through the WAL, then reopen so recovery replays the log
    let (mut store, _) = Store::open(&path).unwrap();
    store.execute("INSERT INTO acct VALUES (500, 'replayed', 1.5)").unwrap();
    store.commit().unwrap();
    drop(store);
    let (mut store, report) = Store::open(&path).unwrap();
    assert_eq!(report.replay.committed, 1);
    let ix = store.database().index("acct", "id").expect("index survives replay");
    assert_eq!(ix.table_rows(), 121, "replayed insert must be reflected in the index");
    assert_eq!(ix.rids_eq(&Value::Int(500)), vec![120]);

    // a checkpoint rewrites the base file, index sections included
    store.checkpoint().unwrap();
    drop(store);
    let loaded = read_database(&path).unwrap();
    let ix = loaded.database.index("acct", "id").expect("index resident after checkpoint");
    assert_eq!(ix.table_rows(), 121);
    assert_eq!(ix.rids_eq(&Value::Int(500)), vec![120]);
    fs::remove_dir_all(&dir).unwrap();
}
