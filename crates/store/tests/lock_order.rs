//! Lock-order analysis over the storage layer: concurrent demand-paging
//! through the catalog, then assert the always-on analyzer saw an
//! acyclic acquisition graph.
#![cfg(all(debug_assertions, not(osql_model)))]

use osql_store::Catalog;
use std::path::Path;
use std::sync::Arc;

#[test]
fn catalog_admits_a_global_lock_order() {
    let dir = std::env::temp_dir().join(format!("osql-lockorder-cat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cat = Arc::new(
        Catalog::open(&dir, 150, |path: &Path| {
            let id = path.file_stem().unwrap().to_string_lossy().into_owned();
            Ok((id, 60))
        })
        .unwrap(),
    );
    std::thread::scope(|s| {
        for t in 0..3usize {
            let cat = cat.clone();
            s.spawn(move || {
                for i in 0..6usize {
                    let _ = cat.get(&format!("db{}", (t + i) % 4)).unwrap();
                }
            });
        }
    });
    assert!(cat.resident_bytes() <= 150 || cat.resident().len() == 1);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(osql_chk::lockorder::cycles_detected(), 0, "lock-order cycle in catalog");
}
