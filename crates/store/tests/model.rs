//! Model-checked concurrency invariants for the storage layer: the
//! demand-paged catalog's eviction protocol and WAL commit sequencing
//! under concurrent committers. Only built under `--cfg osql_model`:
//!
//! ```sh
//! RUSTFLAGS="--cfg osql_model" CARGO_TARGET_DIR=target/model \
//!     cargo test -p osql-store --test model
//! ```
#![cfg(osql_model)]

use osql_chk::model::{self, Config, Outcome};
use osql_chk::thread;
use osql_store::{audit, Catalog, Wal, WalMedia};
use std::path::Path;
use std::sync::Arc;

fn cfg() -> Config {
    Config { preemption_bound: 2, max_schedules: 50_000, ..Config::default() }
}

fn assert_pass(invariant: &str, outcome: Outcome) {
    match outcome {
        Outcome::Pass(report) => {
            // visible under `cargo test -- --nocapture`; the numbers feed
            // EXPERIMENTS.md
            eprintln!("{invariant}: {} schedule(s) explored", report.schedules);
        }
        Outcome::Fail { message, schedule, schedules } => {
            panic!("{invariant}: model check failed after {schedules} schedule(s): {message}\nschedule: {schedule}")
        }
    }
}

/// Fault-free in-memory WAL media; the model schedules around the chk
/// mutex guarding the `Wal`, not around I/O.
#[derive(Default)]
struct MemWal {
    buf: Vec<u8>,
}

impl WalMedia for MemWal {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }
    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }
    fn len(&mut self) -> std::io::Result<u64> {
        Ok(self.buf.len() as u64)
    }
    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        Ok(self.buf.clone())
    }
    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.buf.truncate(len as usize);
        Ok(())
    }
}

/// Commit sequence numbers stay gap-free under concurrent committers:
/// two threads each append + commit through one `chk::Mutex<Wal<_>>`;
/// the sequences handed out are exactly {1, 2} and the durable log
/// audits to two intact commits with no tail garbage.
#[test]
fn wal_commit_seqs_gap_free_under_concurrent_committers() {
    assert_pass("wal_commit_seqs_gap_free_under_concurrent_committers", model::explore(cfg(), || {
        let wal = Arc::new(osql_chk::Mutex::new(Wal::create(MemWal::default()).unwrap()));
        let other = {
            let wal = wal.clone();
            thread::spawn(move || {
                let mut w = wal.lock();
                w.append_stmt("INSERT INTO t VALUES (2)").unwrap();
                w.commit().unwrap()
            })
        };
        let mine = {
            let mut w = wal.lock();
            w.append_stmt("INSERT INTO t VALUES (1)").unwrap();
            w.commit().unwrap()
        };
        let theirs = other.join().unwrap();
        let mut seqs = [mine, theirs];
        seqs.sort_unstable();
        assert_eq!(seqs, [1, 2], "gap-free and duplicate-free");

        let mut w = wal.lock();
        assert_eq!(w.seq(), 2);
        let end = w.end();
        let buf = w.media_mut().read_all().unwrap();
        let report = audit(&buf);
        assert_eq!(report.commits, 2, "both commits durable");
        assert_eq!(report.finding, None, "no torn records");
        assert_eq!(report.tail_bytes, 0, "no uncommitted tail");
        assert_eq!(report.committed_offset, end);
    }));
}

/// The catalog's "never evict the entry just loaded" rule under racing
/// loaders: two threads each demand-page a database whose size alone
/// busts the budget. Both gets must succeed, exactly one victim is
/// evicted, and the accounting stays exact.
#[test]
fn catalog_never_evicts_the_entry_just_loaded() {
    let dir = std::env::temp_dir().join(format!("osql-chk-catalog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir = Arc::new(dir);
    assert_pass("catalog_never_evicts_the_entry_just_loaded", model::explore(cfg(), {
        let dir = dir.clone();
        move || {
            // budget 100, each db is 60 bytes: the second load must evict
            // the first — and only the first, never itself.
            let cat = Arc::new(
                Catalog::open(&dir, 100, |path: &Path| {
                    let id = path.file_stem().unwrap().to_string_lossy().into_owned();
                    Ok((id, 60))
                })
                .unwrap(),
            );
            let other = {
                let cat = cat.clone();
                thread::spawn(move || cat.get("b").unwrap())
            };
            let mine = cat.get("a").unwrap();
            let theirs = other.join().unwrap();
            assert_eq!((mine.as_str(), theirs.as_str()), ("a", "b"), "both loads served");
            assert_eq!(cat.loads(), 2);
            assert_eq!(cat.evictions(), 1, "exactly one victim");
            let resident = cat.resident();
            assert_eq!(resident.len(), 1, "budget honoured after the race");
            assert_eq!(cat.resident_bytes(), 60);
            // the survivor is whichever loaded last — never evicted by
            // its own insertion
            assert!(cat.is_resident(&resident[0].0));
        }
    }));
    let _ = std::fs::remove_dir_all(&*dir);
}

/// A resident entry is retained across a racing re-get: when the budget
/// fits both, concurrent gets never evict anything.
#[test]
fn catalog_retains_entries_that_fit_the_budget() {
    let dir = std::env::temp_dir().join(format!("osql-chk-catalog2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir = Arc::new(dir);
    assert_pass("catalog_retains_entries_that_fit_the_budget", model::explore(cfg(), {
        let dir = dir.clone();
        move || {
            let cat = Arc::new(
                Catalog::open(&dir, 200, |path: &Path| {
                    let id = path.file_stem().unwrap().to_string_lossy().into_owned();
                    Ok((id, 60))
                })
                .unwrap(),
            );
            let other = {
                let cat = cat.clone();
                thread::spawn(move || cat.get("b").unwrap())
            };
            let mine = cat.get("a").unwrap();
            other.join().unwrap();
            assert_eq!(mine.as_str(), "a");
            assert_eq!(cat.evictions(), 0, "both fit: nothing evicted");
            assert!(cat.is_resident("a") && cat.is_resident("b"));
            assert_eq!(cat.resident_bytes(), 120);
        }
    }));
    let _ = std::fs::remove_dir_all(&*dir);
}

/// Double-load race: both threads demand the *same* id concurrently.
/// The second loader must adopt the first's entry (single resident copy)
/// and the catalog must never double-count its bytes.
#[test]
fn catalog_concurrent_same_id_loads_converge() {
    let dir = std::env::temp_dir().join(format!("osql-chk-catalog3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir = Arc::new(dir);
    assert_pass("catalog_concurrent_same_id_loads_converge", model::explore(cfg(), {
        let dir = dir.clone();
        move || {
            let cat = Arc::new(
                Catalog::open(&dir, 1000, |path: &Path| {
                    let id = path.file_stem().unwrap().to_string_lossy().into_owned();
                    Ok((id, 60))
                })
                .unwrap(),
            );
            let other = {
                let cat = cat.clone();
                thread::spawn(move || cat.get("a").unwrap())
            };
            let mine = cat.get("a").unwrap();
            let theirs = other.join().unwrap();
            assert_eq!(mine.as_str(), "a");
            assert!(Arc::ptr_eq(&mine, &theirs) || cat.loads() == 2, "either shared or re-loaded, never torn");
            assert!(cat.is_resident("a"));
            assert_eq!(cat.resident().len(), 1, "one resident copy");
            assert_eq!(cat.evictions(), 0);
        }
    }));
    let _ = std::fs::remove_dir_all(&*dir);
}
