//! Lock-order analysis over the trace collector: concurrent publishers
//! and readers, then assert the always-on analyzer saw an acyclic
//! acquisition graph.
#![cfg(all(debug_assertions, not(osql_model)))]

use osql_trace::{Trace, TraceCollector};
use std::sync::Arc;

#[test]
fn trace_collector_admits_a_global_lock_order() {
    let c = Arc::new(TraceCollector::new(16));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..8 {
                    let mut t = Trace::new();
                    let span = t.start("q");
                    t.end(span);
                    c.publish(Arc::new(t.finish()));
                    let _ = c.recent();
                    let _ = c.last();
                }
            });
        }
    });
    assert_eq!(c.published(), 24);
    assert_eq!(osql_chk::lockorder::cycles_detected(), 0, "lock-order cycle in trace collector");
}
