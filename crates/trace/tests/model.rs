//! Model-checked concurrency invariants for the flight recorder. Only
//! built under `--cfg osql_model`:
//!
//! ```sh
//! RUSTFLAGS="--cfg osql_model" CARGO_TARGET_DIR=target/model \
//!     cargo test -p osql-trace --test model
//! ```
#![cfg(osql_model)]

use osql_chk::model::{self, Config, Outcome};
use osql_chk::thread;
use osql_trace::{FlightConfig, FlightRecorder, RequestOutcome, RequestRecord};
use std::sync::Arc;

fn cfg() -> Config {
    Config { preemption_bound: 2, max_schedules: 50_000, ..Config::default() }
}

fn assert_pass(invariant: &str, outcome: Outcome) {
    match outcome {
        Outcome::Pass(report) => {
            eprintln!("{invariant}: {} schedule(s) explored", report.schedules);
        }
        Outcome::Fail { message, schedule, schedules } => {
            panic!("{invariant}: model check failed after {schedules} schedule(s): {message}\nschedule: {schedule}")
        }
    }
}

fn recorder(capacity: usize, shards: usize) -> Arc<FlightRecorder> {
    Arc::new(FlightRecorder::new(FlightConfig {
        capacity,
        shards,
        slow_ms: 100.0,
        slow_rows: 1_000,
        slow_log_path: None,
    }))
}

fn rec(id: &str, total_ms: f64) -> RequestRecord {
    let mut r = RequestRecord::new(id, "db");
    r.total_ms = total_ms;
    r
}

/// The ring never loses an in-flight writer's record: two writers that
/// `begin` and `finish` concurrently (single shard, capacity 2) are both
/// retrievable afterwards under every interleaving — eviction only ever
/// displaces completed records, and a finish racing another finish still
/// lands.
#[test]
fn flight_finish_never_loses_an_inflight_writers_record() {
    assert_pass("flight_finish_never_loses_an_inflight_writers_record", model::explore(cfg(), || {
        let fr = recorder(2, 1);
        let other = {
            let fr = fr.clone();
            thread::spawn(move || {
                fr.begin("a");
                fr.finish(rec("a", 1.0));
            })
        };
        fr.begin("b");
        fr.finish(rec("b", 1.0));
        other.join().unwrap();
        assert!(fr.lookup("a").is_some(), "writer a's record was lost");
        assert!(fr.lookup("b").is_some(), "writer b's record was lost");
        assert_eq!(fr.inflight_len(), 0, "every registration must be consumed");
        assert_eq!(fr.finished(), 2);
        assert_eq!(fr.dropped(), 0, "capacity 2 fits both records");
    }));
}

/// The tail-sampling decision is race-free: a slow and a fast record
/// finishing concurrently each get exactly their own decision — the slow
/// record keeps its payloads, the fast one is stripped, and the slow
/// counter ends at exactly 1 under every interleaving.
#[test]
fn flight_tail_sampling_decision_is_race_free() {
    assert_pass("flight_tail_sampling_decision_is_race_free", model::explore(cfg(), || {
        let fr = recorder(8, 2);
        let slow_writer = {
            let fr = fr.clone();
            thread::spawn(move || {
                let mut r = rec("slow", 500.0);
                r.trace = Some(Arc::new(osql_trace::QueryTrace::empty()));
                r.explain = Some("plan".to_owned());
                fr.finish(r);
            })
        };
        let mut fast = rec("fast", 1.0);
        fast.trace = Some(Arc::new(osql_trace::QueryTrace::empty()));
        fast.explain = Some("plan".to_owned());
        fr.finish(fast);
        slow_writer.join().unwrap();

        let slow = fr.lookup("slow").expect("slow record present");
        assert!(slow.slow && slow.trace.is_some() && slow.explain.is_some());
        let fast = fr.lookup("fast").expect("fast record present");
        assert!(!fast.slow && fast.trace.is_none() && fast.explain.is_none());
        assert_eq!(fr.slow_total(), 1, "exactly one slow record, every schedule");
    }));
}

/// Eviction under concurrent finishes is exact: with a single-shard ring
/// of capacity 1 and two racing finishes, exactly one record survives,
/// exactly one eviction is counted, and the survivor is the one with the
/// larger completion sequence number (drop-oldest, never drop-newest).
#[test]
fn flight_concurrent_eviction_keeps_the_newer_record() {
    assert_pass("flight_concurrent_eviction_keeps_the_newer_record", model::explore(cfg(), || {
        let fr = recorder(1, 1);
        let other = {
            let fr = fr.clone();
            thread::spawn(move || fr.finish(rec("a", 1.0)))
        };
        fr.finish(rec("b", 1.0));
        other.join().unwrap();
        assert_eq!(fr.depth(), 1);
        assert_eq!(fr.dropped(), 1);
        let survivor = fr.recent(1).pop().expect("one survivor");
        assert_eq!(survivor.seq, 1, "the later finish must survive drop-oldest");
    }));
}

/// An error outcome finishing concurrently with an `Ok` one: sampling
/// retains the error's span tree (errors are always interesting) while
/// the `Ok` record is stripped, and both are queryable by predicate.
#[test]
fn flight_error_records_survive_sampling_under_races() {
    assert_pass("flight_error_records_survive_sampling_under_races", model::explore(cfg(), || {
        let fr = recorder(8, 2);
        let errw = {
            let fr = fr.clone();
            thread::spawn(move || {
                let mut r = rec("err", 1.0);
                r.outcome = RequestOutcome::Error;
                r.error = Some("boom".to_owned());
                r.trace = Some(Arc::new(osql_trace::QueryTrace::empty()));
                fr.finish(r);
            })
        };
        let mut ok = rec("ok", 1.0);
        ok.trace = Some(Arc::new(osql_trace::QueryTrace::empty()));
        fr.finish(ok);
        errw.join().unwrap();
        let err = fr.lookup("err").unwrap();
        assert!(err.trace.is_some(), "error records keep their span tree");
        let ok = fr.lookup("ok").unwrap();
        assert!(ok.trace.is_none());
        assert_eq!(fr.matching(8, |r| r.outcome == RequestOutcome::Error).len(), 1);
    }));
}
