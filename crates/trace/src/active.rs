//! The thread-local active trace: how instrumentation points in lower
//! layers (sqlkit's plan cache, the runtime's LLM middleware) contribute
//! to the query trace without threading a handle through every signature.
//!
//! Each thread holds a *stack* of traces. The outermost owner of a query
//! ([`push`]) gets everything recorded on this thread until it [`pop`]s;
//! nested owners (per-candidate refinement workers) push their own trace,
//! record into it, pop it, and hand the finished sub-trace back for the
//! parent to [`Trace::absorb`] in a deterministic order.
//!
//! Every free function here is a no-op when the stack is empty — one
//! thread-local read and a branch — which is what keeps always-on
//! instrumentation in the execution hot path effectively free when
//! nothing is tracing (measured by the `engine_trace` bench group).

use crate::model::{QueryTrace, SpanId, Trace, NO_SPAN};
use std::cell::RefCell;

thread_local! {
    static STACK: RefCell<Vec<Trace>> = const { RefCell::new(Vec::new()) };
}

fn with_top<R>(f: impl FnOnce(&mut Trace) -> R) -> Option<R> {
    STACK.with(|stack| stack.borrow_mut().last_mut().map(f))
}

/// Install a fresh trace on this thread; it receives every record until
/// the matching [`pop`].
pub fn push() {
    STACK.with(|stack| stack.borrow_mut().push(Trace::new()));
}

/// [`push`] with an explicit record cap: recording beyond `capacity`
/// drops records (bumping [`QueryTrace::dropped`]) instead of growing.
pub fn push_with_capacity(capacity: usize) {
    STACK.with(|stack| stack.borrow_mut().push(Trace::with_capacity(capacity)));
}

/// Finish and remove this thread's innermost trace.
pub fn pop() -> Option<QueryTrace> {
    STACK.with(|stack| stack.borrow_mut().pop()).map(Trace::finish)
}

/// Install a trace only if none is active. Returns whether this caller
/// became the owner (and must therefore [`pop`] later).
pub fn ensure() -> bool {
    let owner = STACK.with(|stack| stack.borrow().is_empty());
    if owner {
        push();
    }
    owner
}

/// Whether any trace is active on this thread.
pub fn is_active() -> bool {
    STACK.with(|stack| !stack.borrow().is_empty())
}

/// Open a span on the active trace ([`NO_SPAN`] when inactive).
pub fn start(name: &'static str) -> SpanId {
    with_top(|t| t.start(name)).unwrap_or(NO_SPAN)
}

/// Close a span opened by [`start`].
pub fn end(id: SpanId) {
    with_top(|t| t.end(id));
}

/// Attach a deterministic label to a span.
pub fn label(id: SpanId, key: &'static str, value: &str) {
    with_top(|t| t.label(id, key, value));
}

/// Attach a measured timing (milliseconds) to a span.
pub fn timing(id: SpanId, key: &'static str, ms: f64) {
    with_top(|t| t.timing(id, key, ms));
}

/// Record an event on the active trace.
pub fn event(name: &'static str, labels: &[(&'static str, &str)]) {
    with_top(|t| t.event(name, labels));
}

/// Record an event carrying measured timings.
pub fn event_timed(
    name: &'static str,
    labels: &[(&'static str, &str)],
    timings: &[(&'static str, f64)],
) {
    with_top(|t| t.event_timed(name, labels, timings));
}

/// Record a volatile event (see [`Trace::event_volatile`]).
pub fn event_volatile(
    name: &'static str,
    labels: &[(&'static str, &str)],
    timings: &[(&'static str, f64)],
) {
    with_top(|t| t.event_volatile(name, labels, timings));
}

/// Merge a finished sub-trace under the active trace's open span.
pub fn absorb(child: QueryTrace) {
    with_top(|t| t.absorb(child));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_calls_are_noops() {
        assert!(!is_active());
        assert_eq!(start("ghost"), NO_SPAN);
        end(NO_SPAN);
        event("ghost", &[]);
        assert!(pop().is_none());
    }

    #[test]
    fn push_records_until_pop() {
        push();
        assert!(is_active());
        let s = start("work");
        event("step", &[("k", "v")]);
        end(s);
        let q = pop().unwrap();
        assert!(!is_active());
        assert_eq!(q.spans.len(), 1);
        assert_eq!(q.events.len(), 1);
    }

    #[test]
    fn nested_traces_are_independent() {
        push();
        let outer = start("outer");
        push(); // nested owner, e.g. a sequential refinement candidate
        let inner = start("inner");
        end(inner);
        let child = pop().unwrap();
        assert_eq!(child.spans.len(), 1);
        absorb(child);
        end(outer);
        let q = pop().unwrap();
        assert_eq!(q.spans.len(), 2);
        let inner = q.span_named("inner").unwrap();
        let outer = q.span_named("outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
    }

    #[test]
    fn ensure_reports_ownership() {
        assert!(ensure(), "first ensure owns");
        assert!(!ensure(), "second ensure does not");
        assert!(pop().is_some());
        assert!(!is_active());
    }

    #[test]
    fn threads_do_not_share_traces() {
        push();
        let handle = std::thread::spawn(|| {
            assert!(!is_active(), "fresh thread has no trace");
            push();
            start("other-thread");
            pop().unwrap().spans.len()
        });
        assert_eq!(handle.join().unwrap(), 1);
        event("main-thread", &[]);
        let q = pop().unwrap();
        assert_eq!(q.events.len(), 1);
        assert!(q.spans.is_empty());
    }
}
