//! The span/event model and the per-query trace builder.
//!
//! A [`Trace`] is built single-threaded (one per query, or one per
//! refinement worker) so recording is plain `Vec` pushes — no locks, no
//! atomics. Parallel sub-traces are merged back with [`Trace::absorb`],
//! which renumbers logical sequence numbers in absorption order, so the
//! finished [`QueryTrace`] is byte-identical whether the work ran on one
//! thread or eight.
//!
//! Every record carries two kinds of position:
//!
//! - a **logical sequence number** (`seq`), assigned deterministically —
//!   tests and the CI determinism gate pin structure against these;
//! - a **monotonic timestamp** (`*_ns`, nanoseconds from the trace
//!   anchor) — profiling reads these, assertions never do.
//!
//! Labels follow the same split: `labels` hold deterministic facts
//! (stage names, candidate indices, row counts, error kinds) and
//! `timings` hold measured milliseconds. [`QueryTrace::render_logical`]
//! includes only the former; events recorded through the `_volatile`
//! entry points (e.g. plan-cache hit/miss, which depends on process-global
//! warmup) are excluded from the logical view entirely.

use std::time::Instant;

/// Index of a span within its trace. The sentinel [`NO_SPAN`] is returned
/// when no trace is active; every operation on it is a no-op.
pub type SpanId = usize;

/// Sentinel span id returned by recording calls when tracing is inactive.
pub const NO_SPAN: SpanId = usize::MAX;

/// Soft cap on records (spans + events) per trace; recording beyond it
/// drops the record and bumps [`QueryTrace::dropped`]. Keeps a runaway
/// loop from turning the tracer into a memory leak.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A timed, labeled region of work with a parent.
#[derive(Debug, Clone)]
pub struct Span {
    /// This span's id (its index in [`QueryTrace::spans`]).
    pub id: SpanId,
    /// Enclosing span, `None` for roots.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `stage:refinement` or `candidate`. Static so the
    /// recording hot path never allocates for it.
    pub name: &'static str,
    /// Logical sequence number at start (1-based, deterministic).
    pub seq: u64,
    /// Logical sequence number at end (0 while open).
    pub end_seq: u64,
    /// Monotonic start, nanoseconds from the trace anchor.
    pub start_ns: u64,
    /// Monotonic end, nanoseconds from the trace anchor (0 while open).
    pub end_ns: u64,
    /// Deterministic facts about the span (static keys, owned values).
    pub labels: Vec<(&'static str, String)>,
    /// Measured milliseconds; excluded from the logical view.
    pub timings: Vec<(&'static str, f64)>,
}

impl Span {
    /// Wall-clock duration in milliseconds (0 while open).
    pub fn duration_ms(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 / 1e6
    }

    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }
}

/// A point-in-time record attached to the span that was open when it
/// fired (or to the trace root when none was).
#[derive(Debug, Clone)]
pub struct Event {
    /// Enclosing span, `None` when fired outside any span.
    pub span: Option<SpanId>,
    /// Event name, e.g. `vote` or `plan`. Static so the recording hot
    /// path never allocates for it.
    pub name: &'static str,
    /// Logical sequence number (deterministic).
    pub seq: u64,
    /// Monotonic timestamp, nanoseconds from the trace anchor.
    pub at_ns: u64,
    /// Deterministic facts about the event (static keys, owned values).
    pub labels: Vec<(&'static str, String)>,
    /// Measured values (milliseconds unless the key says otherwise);
    /// excluded from the logical view.
    pub timings: Vec<(&'static str, f64)>,
    /// Volatile events depend on process-global state (cache warmth,
    /// queue timing) and are excluded from the logical view.
    pub volatile: bool,
}

impl Event {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }

    /// The value of a timing, if present.
    pub fn timing(&self, key: &str) -> Option<f64> {
        self.timings.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// Compact event record used while the trace is under construction:
/// labels and timings live in shared arenas so the recording hot path
/// never allocates a heap block per event (interleaving tiny live blocks
/// among the query engine's result allocations measurably fragments the
/// heap — see the `engine_trace` bench group). [`Trace::finish`]
/// materialises these into public [`Event`]s off the hot path.
#[derive(Debug)]
struct EventRec {
    span: Option<SpanId>,
    name: &'static str,
    seq: u64,
    at_ns: u64,
    labels: (u32, u32),
    timings: (u32, u32),
    volatile: bool,
}

/// A per-query trace under construction. Single-owner: recording is plain
/// vector pushes with no synchronisation.
#[derive(Debug)]
pub struct Trace {
    anchor: Instant,
    seq: u64,
    spans: Vec<Span>,
    events: Vec<EventRec>,
    label_arena: Vec<(&'static str, String)>,
    timing_arena: Vec<(&'static str, f64)>,
    stack: Vec<SpanId>,
    dropped: u64,
    capacity: usize,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// A fresh trace anchored at "now", with the default record cap.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A fresh trace with an explicit record cap.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            // chk:allow(wall-clock): capture-time epoch for span offsets, not logical trace time
            anchor: Instant::now(),
            seq: 0,
            spans: Vec::new(),
            events: Vec::new(),
            label_arena: Vec::new(),
            timing_arena: Vec::new(),
            stack: Vec::new(),
            dropped: 0,
            capacity: capacity.max(1),
        }
    }

    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    fn at_capacity(&mut self) -> bool {
        if self.spans.len() + self.events.len() >= self.capacity {
            self.dropped += 1;
            true
        } else {
            false
        }
    }

    /// Open a span under the currently open span (or as a root).
    pub fn start(&mut self, name: &'static str) -> SpanId {
        if self.at_capacity() {
            return NO_SPAN;
        }
        self.seq += 1;
        let id = self.spans.len();
        self.spans.push(Span {
            id,
            parent: self.stack.last().copied(),
            name,
            seq: self.seq,
            end_seq: 0,
            start_ns: self.now_ns(),
            end_ns: 0,
            labels: Vec::new(),
            timings: Vec::new(),
        });
        self.stack.push(id);
        id
    }

    /// Close a span (and, defensively, anything still open inside it).
    pub fn end(&mut self, id: SpanId) {
        if id == NO_SPAN || id >= self.spans.len() {
            return;
        }
        let Some(pos) = self.stack.iter().rposition(|s| *s == id) else {
            return; // already closed
        };
        let now = self.now_ns();
        // close the span and any children left open inside it
        for open in self.stack.drain(pos..).rev().collect::<Vec<_>>() {
            self.seq += 1;
            let span = &mut self.spans[open];
            span.end_seq = self.seq;
            span.end_ns = now;
        }
    }

    /// Attach a deterministic label to a span.
    pub fn label(&mut self, id: SpanId, key: &'static str, value: &str) {
        if let Some(span) = self.spans.get_mut(id) {
            span.labels.push((key, value.to_owned()));
        }
    }

    /// Attach a measured timing (milliseconds) to a span.
    pub fn timing(&mut self, id: SpanId, key: &'static str, ms: f64) {
        if let Some(span) = self.spans.get_mut(id) {
            span.timings.push((key, ms));
        }
    }

    /// Record an event under the currently open span.
    pub fn event(&mut self, name: &'static str, labels: &[(&'static str, &str)]) {
        self.push_event(name, labels, &[], false);
    }

    /// Record an event carrying measured timings.
    pub fn event_timed(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        timings: &[(&'static str, f64)],
    ) {
        self.push_event(name, labels, timings, false);
    }

    /// Record a volatile event: kept in the trace and its exports, but
    /// excluded from [`QueryTrace::render_logical`] because its presence
    /// or labels depend on process-global state (cache warmth, queues).
    pub fn event_volatile(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        timings: &[(&'static str, f64)],
    ) {
        self.push_event(name, labels, timings, true);
    }

    fn push_event(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        timings: &[(&'static str, f64)],
        volatile: bool,
    ) {
        if self.at_capacity() {
            return;
        }
        self.seq += 1;
        let l0 = self.label_arena.len() as u32;
        self.label_arena.extend(labels.iter().map(|(k, v)| (*k, (*v).to_owned())));
        let t0 = self.timing_arena.len() as u32;
        self.timing_arena.extend_from_slice(timings);
        self.events.push(EventRec {
            span: self.stack.last().copied(),
            name,
            seq: self.seq,
            at_ns: self.now_ns(),
            labels: (l0, self.label_arena.len() as u32),
            timings: (t0, self.timing_arena.len() as u32),
            volatile,
        });
    }

    /// Merge a finished sub-trace under the currently open span.
    ///
    /// Logical sequence numbers are renumbered to continue this trace's
    /// counter, span ids are re-based, and timestamps are re-anchored.
    /// Absorbing children in a fixed order (candidate index order) makes
    /// the merged trace independent of how many threads produced them.
    pub fn absorb(&mut self, child: QueryTrace) {
        let parent = self.stack.last().copied();
        let base_id = self.spans.len();
        let base_seq = self.seq;
        // Re-anchor: nanoseconds between the two anchors (0 if the child
        // was somehow created first — monotonic clamping, never a panic).
        let offset_ns =
            child.anchor.saturating_duration_since(self.anchor).as_nanos() as u64;
        let mut max_seq = 0u64;
        for mut span in child.spans {
            max_seq = max_seq.max(span.seq).max(span.end_seq);
            span.id += base_id;
            span.parent = match span.parent {
                Some(p) => Some(p + base_id),
                None => parent,
            };
            span.seq += base_seq;
            if span.end_seq > 0 {
                span.end_seq += base_seq;
            }
            span.start_ns += offset_ns;
            if span.end_ns > 0 {
                span.end_ns += offset_ns;
            }
            self.spans.push(span);
        }
        for event in child.events {
            max_seq = max_seq.max(event.seq);
            let l0 = self.label_arena.len() as u32;
            self.label_arena.extend(event.labels);
            let t0 = self.timing_arena.len() as u32;
            self.timing_arena.extend_from_slice(&event.timings);
            self.events.push(EventRec {
                span: match event.span {
                    Some(s) => Some(s + base_id),
                    None => parent,
                },
                name: event.name,
                seq: event.seq + base_seq,
                at_ns: event.at_ns + offset_ns,
                labels: (l0, self.label_arena.len() as u32),
                timings: (t0, self.timing_arena.len() as u32),
                volatile: event.volatile,
            });
        }
        self.seq = base_seq + max_seq;
        self.dropped += child.dropped;
    }

    /// Close anything still open and freeze the trace, materialising the
    /// arena-backed event records into self-contained [`Event`]s.
    pub fn finish(mut self) -> QueryTrace {
        while let Some(&top) = self.stack.last() {
            self.end(top);
        }
        let events = self
            .events
            .into_iter()
            .map(|rec| Event {
                span: rec.span,
                name: rec.name,
                seq: rec.seq,
                at_ns: rec.at_ns,
                labels: self.label_arena[rec.labels.0 as usize..rec.labels.1 as usize].to_vec(),
                timings: self.timing_arena[rec.timings.0 as usize..rec.timings.1 as usize]
                    .to_vec(),
                volatile: rec.volatile,
            })
            .collect();
        QueryTrace { spans: self.spans, events, dropped: self.dropped, anchor: self.anchor }
    }
}

/// A finished, immutable per-query trace.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// All spans, in creation (logical) order.
    pub spans: Vec<Span>,
    /// All events, in creation (logical) order.
    pub events: Vec<Event>,
    /// Records dropped because the trace hit its capacity.
    pub dropped: u64,
    pub(crate) anchor: Instant,
}

impl Default for QueryTrace {
    fn default() -> Self {
        Self::empty()
    }
}

impl QueryTrace {
    /// A trace with no records (the disabled-tracing placeholder).
    pub fn empty() -> Self {
        // chk:allow(wall-clock): placeholder anchor for the disabled-tracing sentinel
        QueryTrace { spans: Vec::new(), events: Vec::new(), dropped: 0, anchor: Instant::now() }
    }

    /// Whether the trace holds no spans and no events.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty()
    }

    /// Root spans (no parent), in logical order.
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Child spans of `id`, in logical order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// All spans with this name, in logical order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// First span with this name.
    pub fn span_named(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All events with this name, in logical order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Events attached to a span (not its descendants), in logical order.
    pub fn events_in(&self, id: SpanId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.span == Some(id))
    }

    /// Whether `descendant` sits under `ancestor` in the span tree.
    pub fn is_descendant(&self, descendant: SpanId, ancestor: SpanId) -> bool {
        let mut cursor = self.spans.get(descendant).and_then(|s| s.parent);
        while let Some(p) = cursor {
            if p == ancestor {
                return true;
            }
            cursor = self.spans.get(p).and_then(|s| s.parent);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_number_logically() {
        let mut t = Trace::new();
        let a = t.start("outer");
        t.label(a, "k", "v");
        let b = t.start("inner");
        t.event("tick", &[("n", "1")]);
        t.end(b);
        t.end(a);
        let q = t.finish();
        assert_eq!(q.spans.len(), 2);
        assert_eq!(q.events.len(), 1);
        let outer = q.span_named("outer").unwrap();
        let inner = q.span_named("inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.seq, 1);
        assert_eq!(inner.seq, 2);
        assert_eq!(q.events[0].seq, 3);
        assert_eq!(inner.end_seq, 4);
        assert_eq!(outer.end_seq, 5);
        assert_eq!(q.events[0].span, Some(inner.id));
        assert!(q.is_descendant(inner.id, outer.id));
        assert!(!q.is_descendant(outer.id, inner.id));
        assert_eq!(outer.label("k"), Some("v"));
    }

    #[test]
    fn end_closes_dangling_children() {
        let mut t = Trace::new();
        let a = t.start("a");
        let _b = t.start("b"); // never explicitly ended
        t.end(a);
        let q = t.finish();
        assert!(q.spans.iter().all(|s| s.end_seq > 0), "{q:?}");
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut t = Trace::new();
        t.start("open");
        let q = t.finish();
        assert!(q.spans[0].end_seq > 0);
        assert!(q.spans[0].end_ns >= q.spans[0].start_ns);
    }

    #[test]
    fn absorb_renumbers_deterministically() {
        // Build two children on "other threads" (order of construction
        // does not matter, only absorption order does).
        let build_child = |tag: &str| {
            let mut c = Trace::new();
            let s = c.start("candidate");
            c.label(s, "idx", tag);
            c.event("execute", &[("rows", "3")]);
            c.end(s);
            c.finish()
        };
        let c1 = build_child("1");
        let c0 = build_child("0");
        let mut parent = Trace::new();
        let refinement = parent.start("refinement");
        parent.absorb(c0);
        parent.absorb(c1);
        parent.end(refinement);
        let q = parent.finish();
        let idxs: Vec<&str> =
            q.spans_named("candidate").map(|s| s.label("idx").unwrap()).collect();
        assert_eq!(idxs, ["0", "1"], "absorption order wins");
        // contiguous, strictly increasing sequence numbers
        let mut seqs: Vec<u64> = q
            .spans
            .iter()
            .flat_map(|s| [s.seq, s.end_seq])
            .chain(q.events.iter().map(|e| e.seq))
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=seqs.len() as u64).collect::<Vec<_>>(), "{seqs:?}");
        // children re-parented under the refinement span
        for c in q.spans_named("candidate") {
            assert_eq!(c.parent, Some(refinement));
        }
    }

    #[test]
    fn capacity_drops_and_counts() {
        let mut t = Trace::with_capacity(3);
        let a = t.start("a");
        t.event("e1", &[]);
        t.event("e2", &[]);
        t.event("e3", &[]); // over capacity
        t.end(a);
        let q = t.finish();
        assert_eq!(q.spans.len() + q.events.len(), 3);
        assert_eq!(q.dropped, 1);
    }

    #[test]
    fn volatile_events_are_marked() {
        let mut t = Trace::new();
        t.event_volatile("plan", &[("outcome", "hit")], &[("ms", 0.1)]);
        let q = t.finish();
        assert!(q.events[0].volatile);
        assert_eq!(q.events[0].timing("ms"), Some(0.1));
    }
}
